"""Runners regenerating the paper's Figures 4–8 (§7).

Figures come back as :class:`TableResult` series (one row per plotted
point) — the repository has no plotting dependency, and the claims under
test are about orderings and trends, which the tabulated series expose.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms import (
    greedy_compinfmax,
    greedy_selfinfmax,
    high_degree_seeds,
    pagerank_seeds,
    random_seeds,
    vanilla_ic_seeds,
)
from repro.api import ComICSession, EngineConfig
from repro.datasets import load_dataset
from repro.experiments.harness import ExperimentScale, TableResult, timed
from repro.graph.generators import power_law_digraph
from repro.graph.weights import weighted_cascade_probabilities
from repro.models.gaps import GAP
from repro.models.spread import estimate_boost, estimate_spread
from repro.rng import derive_seed
from repro.rrset.rr_cim import RRCimGenerator
from repro.rrset.rr_sim import RRSimGenerator
from repro.rrset.rr_sim_plus import RRSimPlusGenerator
from repro.rrset.tim import TIMOptions, general_tim

#: One-way complementary GAPs (submodular SelfInfMax regime) used where
#: the figure isolates RR-set machinery from the sandwich wrapper.
FIG_SIM_GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
#: RR-CIM regime GAPs.
FIG_CIM_GAPS = GAP(q_a=0.1, q_a_given_b=0.9, q_b=0.5, q_b_given_a=1.0)
#: Learned-style close GAPs for the seed-quality curves (Figs. 5-6).
FIG_LEARNED_GAPS = GAP(q_a=0.75, q_a_given_b=0.85, q_b=0.75, q_b_given_a=0.85)


def _mid_tier(graph, scale: ExperimentScale, seed) -> list[int]:
    needed = scale.mid_rank_start + scale.opposite_size
    ranked = vanilla_ic_seeds(graph, needed, options=scale.tim_options, rng=seed)
    return ranked[scale.mid_rank_start:needed]


def figure4_epsilon_effect(
    scale: ExperimentScale = ExperimentScale(),
    *,
    epsilons: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    max_rr_sets: int = 40_000,
) -> TableResult:
    """Figure 4: runtime and seed quality vs epsilon.

    Expectation (paper): runtime falls by orders of magnitude as epsilon
    grows from 0.1 to 1 while the achieved spread/boost stays essentially
    flat.
    """
    name = scale.datasets[0]
    graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
    seeds_b = _mid_tier(graph, scale, derive_seed(scale.seed, 90))
    seeds_a = seeds_b
    # Fresh sessions time each epsilon in isolation — the paper's actual
    # measurement.  A second, sweep-long session runs alongside to report
    # what cross-query pool reuse saves at each point.
    shared = ComICSession(graph)
    rows = []
    for eps in epsilons:
        config = EngineConfig(epsilon=eps, max_rr_sets=max_rr_sets)
        rng = derive_seed(scale.seed, 91, int(eps * 100))
        session = ComICSession(graph)

        _sim_result, sim_time = timed(
            lambda: session.select_seeds(
                "rr-sim", FIG_SIM_GAPS, seeds_b, scale.k, config, rng=rng
            )
        )
        plus_result, plus_time = timed(
            lambda: session.select_seeds(
                "rr-sim+", FIG_SIM_GAPS, seeds_b, scale.k, config, rng=rng
            )
        )
        spread = estimate_spread(
            graph, FIG_SIM_GAPS, plus_result.seeds, seeds_b,
            runs=scale.mc_runs, rng=derive_seed(rng, 1),
        ).mean

        cim_result, cim_time = timed(
            lambda: session.select_seeds(
                "rr-cim", FIG_CIM_GAPS, seeds_a, scale.k, config, rng=rng
            )
        )
        boost = estimate_boost(
            graph, FIG_CIM_GAPS, seeds_a, cim_result.seeds,
            runs=scale.mc_runs, rng=derive_seed(rng, 2),
        ).mean
        _pooled, pooled_time = timed(
            lambda: shared.select_seeds(
                "rr-sim+", FIG_SIM_GAPS, seeds_b, scale.k, config, rng=rng
            )
        )
        rows.append(
            {
                "epsilon": eps,
                "theta": plus_result.theta,
                "rr_sim_time_s": round(sim_time, 3),
                "rr_sim_plus_time_s": round(plus_time, 3),
                "rr_sim_plus_pooled_s": round(pooled_time, 3),
                "sim_spread": round(spread, 1),
                "rr_cim_time_s": round(cim_time, 3),
                "cim_boost": round(boost, 1),
            }
        )
    return TableResult(
        title=f"Figure 4: effect of epsilon on RR-set algorithms ({name})",
        columns=[
            "epsilon", "theta", "rr_sim_time_s", "rr_sim_plus_time_s",
            "rr_sim_plus_pooled_s", "sim_spread", "rr_cim_time_s", "cim_boost",
        ],
        rows=rows,
        notes="runtime should fall sharply with epsilon while quality stays "
        "flat; rr_sim_plus_pooled_s re-runs the same query on a sweep-long "
        "ComICSession, whose cached pool makes every row after the first "
        "near-free",
    )


def _checkpoints(k: int) -> list[int]:
    points = sorted({1, max(k // 2, 1), k})
    return points


def figure5_selfinfmax_spread(
    scale: ExperimentScale = ExperimentScale(),
) -> TableResult:
    """Figure 5: A-spread vs number of A-seeds, RR vs Deg/Page/Random."""
    rows = []
    gaps = FIG_LEARNED_GAPS
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base = derive_seed(scale.seed, 100, d_index) or 0
        seeds_b = _mid_tier(graph, scale, derive_seed(base, 1))
        nu_gaps = gaps.with_b_indifferent_high()
        session = ComICSession(
            graph, config=EngineConfig.from_tim_options(scale.tim_options)
        )
        rr_seeds = session.select_seeds(
            "rr-sim+", nu_gaps, seeds_b, scale.k, rng=derive_seed(base, 2)
        ).seeds
        methods = {
            "RR": rr_seeds,
            "HighDegree": high_degree_seeds(graph, scale.k),
            "PageRank": pagerank_seeds(graph, scale.k),
            "Random": random_seeds(graph, scale.k, rng=derive_seed(base, 3)),
        }
        eval_rng = derive_seed(base, 4)
        for method, seeds in methods.items():
            for k in _checkpoints(scale.k):
                value = estimate_spread(
                    graph, gaps, seeds[:k], seeds_b,
                    runs=scale.mc_runs, rng=eval_rng,
                ).mean
                rows.append(
                    {
                        "dataset": name,
                        "method": method,
                        "num_seeds": k,
                        "a_spread": round(value, 1),
                    }
                )
    return TableResult(
        title="Figure 5: A-spread vs |S_A| for SelfInfMax",
        columns=["dataset", "method", "num_seeds", "a_spread"],
        rows=rows,
        notes="RR = GeneralTIM with RR-SIM+ (plus SA upper bound); curves "
        "should dominate the baselines pointwise",
    )


def figure6_compinfmax_boost(
    scale: ExperimentScale = ExperimentScale(),
) -> TableResult:
    """Figure 6: boost in A-spread vs number of B-seeds."""
    rows = []
    gaps = FIG_LEARNED_GAPS
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base = derive_seed(scale.seed, 110, d_index) or 0
        seeds_a = _mid_tier(graph, scale, derive_seed(base, 1))
        nu_gaps = gaps.with_q_b_given_a_one()
        session = ComICSession(
            graph, config=EngineConfig.from_tim_options(scale.tim_options)
        )
        rr_seeds = session.select_seeds(
            "rr-cim", nu_gaps, seeds_a, scale.k, rng=derive_seed(base, 2)
        ).seeds
        methods = {
            "RR": rr_seeds,
            "HighDegree": high_degree_seeds(graph, scale.k),
            "PageRank": pagerank_seeds(graph, scale.k),
            "Random": random_seeds(graph, scale.k, rng=derive_seed(base, 3)),
        }
        eval_rng = derive_seed(base, 4)
        anchor = estimate_spread(
            graph, gaps, seeds_a, [], runs=scale.mc_runs, rng=eval_rng
        ).mean
        for method, seeds in methods.items():
            for k in _checkpoints(scale.k):
                value = estimate_boost(
                    graph, gaps, seeds_a, seeds[:k],
                    runs=scale.mc_runs, rng=eval_rng,
                ).mean
                rows.append(
                    {
                        "dataset": name,
                        "method": method,
                        "num_seeds": k,
                        "boost": round(value, 2),
                        "sigma_a_no_b": round(anchor, 1),
                    }
                )
    return TableResult(
        title="Figure 6: boost in A-spread vs |S_B| for CompInfMax",
        columns=["dataset", "method", "num_seeds", "boost", "sigma_a_no_b"],
        rows=rows,
        notes="sigma_a_no_b anchors the boost like the paper's "
        "sigma_A(S_A, emptyset) captions",
    )


def figure7a_runtime(
    scale: ExperimentScale = ExperimentScale(),
    *,
    include_greedy: bool = True,
    greedy_pool: int = 25,
    greedy_runs: int = 25,
) -> TableResult:
    """Figure 7(a): running time of Greedy vs the RR-set algorithms.

    The paper's Greedy uses 10K MC iterations over all nodes and takes ~48
    hours; the scaled version restricts the candidate pool and the MC
    budget but preserves the ordering claim (Greedy >> RR)."""
    rows = []
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base = derive_seed(scale.seed, 120, d_index) or 0
        seeds_b = _mid_tier(graph, scale, derive_seed(base, 1))
        seeds_a = seeds_b
        row: dict = {"dataset": name, "nodes": graph.num_nodes}

        _, t = timed(lambda: general_tim(
            RRSimGenerator(graph, FIG_SIM_GAPS, seeds_b), scale.k,
            options=scale.tim_options, rng=derive_seed(base, 2),
        ))
        row["rr_sim_s"] = round(t, 3)
        _, t = timed(lambda: general_tim(
            RRSimPlusGenerator(graph, FIG_SIM_GAPS, seeds_b), scale.k,
            options=scale.tim_options, rng=derive_seed(base, 2),
        ))
        row["rr_sim_plus_s"] = round(t, 3)
        _, t = timed(lambda: general_tim(
            RRCimGenerator(graph, FIG_CIM_GAPS, seeds_a), scale.k,
            options=scale.tim_options, rng=derive_seed(base, 3),
        ))
        row["rr_cim_s"] = round(t, 3)

        if include_greedy:
            pool = high_degree_seeds(graph, greedy_pool)
            _, t = timed(lambda: greedy_selfinfmax(
                graph, FIG_SIM_GAPS, seeds_b, scale.k,
                runs=greedy_runs, rng=derive_seed(base, 4), candidates=pool,
            ))
            row["greedy_sim_s"] = round(t, 3)
            _, t = timed(lambda: greedy_compinfmax(
                graph, FIG_CIM_GAPS, seeds_a, scale.k,
                runs=greedy_runs, rng=derive_seed(base, 5), candidates=pool,
            ))
            row["greedy_cim_s"] = round(t, 3)
        rows.append(row)
    columns = ["dataset", "nodes", "rr_sim_s", "rr_sim_plus_s", "rr_cim_s"]
    if include_greedy:
        columns += ["greedy_sim_s", "greedy_cim_s"]
    return TableResult(
        title="Figure 7(a): running time on the four networks",
        columns=columns,
        rows=rows,
        notes="Greedy restricted to a high-degree candidate pool and small "
        "MC budget; the paper's full Greedy is orders of magnitude slower still",
    )


def figure7b_scalability(
    scale: ExperimentScale = ExperimentScale(),
    *,
    sizes: Sequence[int] = (1000, 2000, 4000),
    theta: int = 1500,
) -> TableResult:
    """Figure 7(b): runtime vs graph size on power-law random graphs.

    Expectation: near-linear growth for both RR-SIM+ and RR-CIM."""
    rows = []
    options = TIMOptions(theta_override=theta)
    for n in sizes:
        graph = weighted_cascade_probabilities(
            power_law_digraph(n, exponent=2.16, average_degree=5.0,
                              rng=derive_seed(scale.seed, 130, n))
        )
        seeds_b = high_degree_seeds(graph, scale.opposite_size)
        base = derive_seed(scale.seed, 131, n)
        _, t_sim = timed(lambda: general_tim(
            RRSimPlusGenerator(graph, FIG_SIM_GAPS, seeds_b), scale.k,
            options=options, rng=base,
        ))
        _, t_cim = timed(lambda: general_tim(
            RRCimGenerator(graph, FIG_CIM_GAPS, seeds_b), scale.k,
            options=options, rng=base,
        ))
        rows.append(
            {
                "nodes": n,
                "edges": graph.num_edges,
                "rr_sim_plus_s": round(t_sim, 3),
                "rr_cim_s": round(t_cim, 3),
            }
        )
    return TableResult(
        title="Figure 7(b): scalability on power-law graphs (exponent 2.16)",
        columns=["nodes", "edges", "rr_sim_plus_s", "rr_cim_s"],
        rows=rows,
        notes=f"theta fixed at {theta} RR-sets per run; expect near-linear time",
    )


#: Figure 8 stress settings: q_{A|∅}=0.3, q_{A|B}=0.8; SIM varies q_{B|∅}
#: with q_{B|A}=0.96; CIM varies q_{B|A} with q_{B|∅}=0.1.
FIG8_SIM = {q_b: GAP(0.3, 0.8, q_b, 0.96) for q_b in (0.1, 0.5, 0.9)}
FIG8_CIM = {q_ba: GAP(0.3, 0.8, 0.1, q_ba) for q_ba in (0.1, 0.5, 0.9)}


def figure8_sa_stress(
    scale: ExperimentScale = ExperimentScale(),
    *,
    greedy_pool: int = 20,
    greedy_runs: int = 20,
) -> TableResult:
    """Figure 8: SA effectiveness under adversarial GAPs.

    Compares the true-objective value of the seed sets found via the upper
    bound (S_nu), lower bound (S_mu, SelfInfMax only) and the greedy on the
    unmodified objective (S_sigma); the paper reports relative errors under
    0.4% — ours should stay small too."""
    name = scale.datasets[0]
    graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
    base = derive_seed(scale.seed, 140) or 0
    seeds_b = _mid_tier(graph, scale, derive_seed(base, 1))
    seeds_a = seeds_b
    pool = high_degree_seeds(graph, greedy_pool)
    rows = []
    for q_b, gaps in FIG8_SIM.items():
        rng = derive_seed(base, 2, int(q_b * 10))
        eval_rng = derive_seed(rng, 1)

        def sigma(seeds):
            return estimate_spread(
                graph, gaps, seeds, seeds_b, runs=scale.mc_runs, rng=eval_rng
            ).mean

        s_nu = general_tim(
            RRSimPlusGenerator(graph, gaps.with_b_indifferent_high(), seeds_b),
            scale.k, options=scale.tim_options, rng=rng,
        ).seeds
        s_mu = general_tim(
            RRSimPlusGenerator(graph, gaps.with_b_indifferent_low(), seeds_b),
            scale.k, options=scale.tim_options, rng=rng,
        ).seeds
        s_sigma = greedy_selfinfmax(
            graph, gaps, seeds_b, scale.k,
            runs=greedy_runs, rng=derive_seed(rng, 2), candidates=pool,
        )
        values = {"sigma": sigma(s_sigma), "nu": sigma(s_nu), "mu": sigma(s_mu)}
        best = max(values.values())
        error = (
            max(abs(values["sigma"] - values["mu"]), abs(values["sigma"] - values["nu"]))
            / values["sigma"] if values["sigma"] > 0 else 0.0
        )
        rows.append(
            {
                "problem": "SelfInfMax",
                "varied_q": q_b,
                "sigma_of_S_sigma": round(values["sigma"], 1),
                "sigma_of_S_mu": round(values["mu"], 1),
                "sigma_of_S_nu": round(values["nu"], 1),
                "sa_relative_error": round(error, 4),
            }
        )
    for q_ba, gaps in FIG8_CIM.items():
        rng = derive_seed(base, 3, int(q_ba * 10))
        eval_rng = derive_seed(rng, 1)

        def boost(seeds):
            return estimate_boost(
                graph, gaps, seeds_a, seeds, runs=scale.mc_runs, rng=eval_rng
            ).mean

        s_nu = general_tim(
            RRCimGenerator(graph, gaps.with_q_b_given_a_one(), seeds_a),
            scale.k, options=scale.tim_options, rng=rng,
        ).seeds
        s_sigma = greedy_compinfmax(
            graph, gaps, seeds_a, scale.k,
            runs=greedy_runs, rng=derive_seed(rng, 2), candidates=pool,
        )
        values = {"sigma": boost(s_sigma), "nu": boost(s_nu)}
        error = (
            abs(values["sigma"] - values["nu"]) / values["sigma"]
            if values["sigma"] > 0 else 0.0
        )
        rows.append(
            {
                "problem": "CompInfMax",
                "varied_q": q_ba,
                "sigma_of_S_sigma": round(values["sigma"], 2),
                "sigma_of_S_mu": None,
                "sigma_of_S_nu": round(values["nu"], 2),
                "sa_relative_error": round(error, 4),
            }
        )
    return TableResult(
        title=f"Figure 8: Sandwich Approximation under stress GAPs ({name})",
        columns=[
            "problem", "varied_q", "sigma_of_S_sigma", "sigma_of_S_mu",
            "sigma_of_S_nu", "sa_relative_error",
        ],
        rows=rows,
        notes="SIM: q_B|A=0.96, q_B|0 varies; CIM: q_B|0=0.1, q_B|A varies",
    )
