"""Tests for the §7 baseline heuristics."""

import numpy as np
import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, cycle_digraph, path_digraph, star_digraph
from repro.algorithms import (
    copying_seeds,
    high_degree_seeds,
    pagerank_scores,
    pagerank_seeds,
    random_seeds,
    vanilla_ic_seeds,
)
from repro.rrset import TIMOptions


class TestHighDegree:
    def test_star_center_first(self):
        assert high_degree_seeds(star_digraph(10), 1) == [0]

    def test_respects_exclusion(self):
        assert high_degree_seeds(star_digraph(10), 1, exclude=[0]) == [1]

    def test_deterministic_tie_break_by_id(self):
        g = cycle_digraph(5)  # all degrees equal
        assert high_degree_seeds(g, 3) == [0, 1, 2]

    def test_k_too_large(self):
        with pytest.raises(SeedSetError):
            high_degree_seeds(path_digraph(3), 4)

    def test_negative_k(self):
        with pytest.raises(SeedSetError):
            high_degree_seeds(path_digraph(3), -1)


class TestPageRank:
    def test_scores_sum_to_one(self):
        scores = pagerank_scores(star_digraph(10))
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_sink_of_star_scores_higher_than_leaves(self):
        # Inward star: centre receives all mass.
        g = star_digraph(10, outward=False)
        scores = pagerank_scores(g)
        assert scores[0] == scores.max()

    def test_symmetric_cycle_uniform(self):
        scores = pagerank_scores(cycle_digraph(6))
        np.testing.assert_allclose(scores, 1.0 / 6.0, atol=1e-9)

    def test_empty_graph(self):
        assert pagerank_scores(DiGraph.from_edges(0, [])).size == 0

    def test_seeds_ranked_by_score(self):
        g = star_digraph(6, outward=False)
        assert pagerank_seeds(g, 1) == [0]
        assert 0 not in pagerank_seeds(g, 2, exclude=[0])


class TestRandom:
    def test_distinct_and_in_range(self):
        seeds = random_seeds(path_digraph(20), 5, rng=0)
        assert len(set(seeds)) == 5
        assert all(0 <= v < 20 for v in seeds)

    def test_deterministic_with_seed(self):
        a = random_seeds(path_digraph(20), 5, rng=3)
        b = random_seeds(path_digraph(20), 5, rng=3)
        assert a == b

    def test_exclusion(self):
        seeds = random_seeds(path_digraph(5), 3, rng=0, exclude=[0, 1])
        assert not {0, 1} & set(seeds)


class TestCopying:
    def test_takes_prefix(self):
        g = path_digraph(10)
        assert copying_seeds(g, 2, [7, 3, 5]) == [7, 3]

    def test_pads_with_random_when_short(self):
        g = path_digraph(10)
        seeds = copying_seeds(g, 4, [7, 3], rng=0)
        assert seeds[:2] == [7, 3]
        assert len(set(seeds)) == 4

    def test_negative_k(self):
        with pytest.raises(SeedSetError):
            copying_seeds(path_digraph(3), -1, [0])


class TestVanillaIC:
    def test_star_center_first(self):
        seeds = vanilla_ic_seeds(
            star_digraph(20), 2,
            options=TIMOptions(theta_override=300), rng=0,
        )
        assert seeds[0] == 0
