"""Seed selection for the k-item Com-IC extension (§8).

The paper leaves optimisation over the ``k * 2^(k-1)``-parameter model as
future work; this module supplies the natural first algorithms:

* :func:`greedy_multi_item_selfinfmax` — pick seeds for one focal item,
  other items' seed sets fixed (the k-item generalisation of
  SelfInfMax), via CELF Monte-Carlo greedy;
* :func:`round_robin_multi_item` — allocate a shared budget across all
  items, one greedy seed at a time in round-robin order, maximising the
  *total* expected adoptions (the host's view, in the spirit of fair
  allocation in Lu et al. [16]).

No approximation guarantee is claimed: even for two items the objective
is submodular only in restricted regimes (§5).  These are the practical
heuristics a campaign would start from.

.. deprecated::
    Both entry points are thin shims over the declarative query API
    (:class:`~repro.api.queries.MultiItemQuery` run on a
    :class:`~repro.api.session.ComICSession` carrying ``multi_item_gaps``);
    the greedy cores live in :mod:`repro.api.solvers`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.multi_item import MultiItemGaps
from repro.rng import SeedLike


def _validate_item(gaps: MultiItemGaps, item: int) -> int:
    if not 0 <= item < gaps.num_items:
        raise SeedSetError(
            f"item must lie in [0, {gaps.num_items - 1}], got {item}"
        )
    return int(item)


def greedy_multi_item_selfinfmax(
    graph: DiGraph,
    gaps: MultiItemGaps,
    item: int,
    fixed_seed_sets: Sequence[Sequence[int]],
    k: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[int]:
    """CELF greedy for the focal ``item`` (deprecated one-shot entry point).

    ``fixed_seed_sets`` must list one seed set per item; the focal item's
    entry is the *initial* seed set it extends (usually empty).  Delegates
    to a throwaway :class:`~repro.api.session.ComICSession`.
    """
    warnings.warn(
        "greedy_multi_item_selfinfmax() is deprecated; use "
        "ComICSession.run(MultiItemQuery(item=...)) from repro.api instead",
        DeprecationWarning,
        stacklevel=2,
    )
    item = _validate_item(gaps, item)
    if len(fixed_seed_sets) != gaps.num_items:
        raise SeedSetError(
            f"expected {gaps.num_items} seed sets, got {len(fixed_seed_sets)}"
        )
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    from repro.api import ComICSession, MultiItemQuery

    session = ComICSession(graph, multi_item_gaps=gaps, rng=rng)
    query = MultiItemQuery(
        budget=k,
        item=item,
        fixed_seed_sets=tuple(
            tuple(int(v) for v in s) for s in fixed_seed_sets
        ),
        runs=runs,
        candidates=(
            tuple(int(v) for v in candidates) if candidates is not None else None
        ),
    )
    return session.run(query).seeds


def round_robin_multi_item(
    graph: DiGraph,
    gaps: MultiItemGaps,
    budget: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[list[int]]:
    """Round-robin budget allocation (deprecated one-shot entry point).

    Item ``t mod k`` receives the ``t``-th seed: the node maximising the
    *total* expected adoptions across items (MC-estimated with a shared
    seed per round).  Returns one seed list per item.  Delegates to a
    throwaway :class:`~repro.api.session.ComICSession`.
    """
    warnings.warn(
        "round_robin_multi_item() is deprecated; use "
        "ComICSession.run(MultiItemQuery(...)) from repro.api instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if budget < 0:
        raise SeedSetError(f"budget must be non-negative, got {budget}")
    from repro.api import ComICSession, MultiItemQuery

    session = ComICSession(graph, multi_item_gaps=gaps, rng=rng)
    query = MultiItemQuery(
        budget=budget,
        runs=runs,
        candidates=(
            tuple(int(v) for v in candidates) if candidates is not None else None
        ),
    )
    result = session.run(query)
    return [list(s) for s in (result.seed_sets or [])]
