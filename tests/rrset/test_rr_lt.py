"""Tests for the classic-LT RR-set generator (Triggering path sampler)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, cycle_digraph, path_digraph, star_digraph
from repro.models import normalize_lt_weights, simulate_lt
from repro.rng import make_rng
from repro.rrset import RRLTGenerator, TIMOptions, vanilla_lt_seeds


@pytest.fixture(scope="module")
def weighted() -> DiGraph:
    gen = make_rng(5)
    edges = []
    for u in range(12):
        for v in range(12):
            if u != v and gen.random() < 0.3:
                edges.append((u, v, float(gen.random())))
    return normalize_lt_weights(DiGraph.from_edges(12, edges))


class TestGeneration:
    def test_invalid_weights_rejected(self):
        graph = DiGraph.from_edges(3, [(0, 2), (1, 2)], default_probability=0.9)
        with pytest.raises(GraphError):
            RRLTGenerator(graph)

    def test_rr_set_is_a_simple_path(self, weighted):
        generator = RRLTGenerator(weighted)
        gen = make_rng(1)
        for _ in range(100):
            rr = generator.generate(rng=gen)
            assert len(set(rr.tolist())) == rr.size  # distinct
            for child, parent in zip(rr[:-1], rr[1:]):
                assert weighted.has_edge(int(parent), int(child))

    def test_root_always_first(self, weighted):
        generator = RRLTGenerator(weighted)
        rr = generator.generate(rng=3, root=7)
        assert rr[0] == 7

    def test_no_in_edges_gives_singleton(self):
        graph = path_digraph(3, probability=1.0)
        generator = RRLTGenerator(graph)
        rr = generator.generate(rng=4, root=0)
        assert rr.tolist() == [0]

    def test_full_weight_chain_walks_to_source(self):
        graph = path_digraph(4, probability=1.0)
        generator = RRLTGenerator(graph)
        rr = generator.generate(rng=5, root=3)
        assert rr.tolist() == [3, 2, 1, 0]

    def test_cycle_terminates(self):
        graph = cycle_digraph(5, probability=1.0)
        generator = RRLTGenerator(graph)
        rr = generator.generate(rng=6, root=0)
        # The reverse walk visits each cycle node at most once.
        assert rr.size <= 5
        assert len(set(rr.tolist())) == rr.size


class TestActivationEquivalence:
    def test_rr_estimate_matches_lt_spread(self, weighted):
        """n * P[S hits a random RR-set] must equal sigma_LT(S)."""
        n = weighted.num_nodes
        seeds = {0, 5}
        generator = RRLTGenerator(weighted)
        gen = make_rng(7)
        draws = 6000
        hits = sum(
            bool(seeds & set(generator.generate(rng=gen).tolist()))
            for _ in range(draws)
        )
        rr_estimate = n * hits / draws
        gen = make_rng(8)
        mc = np.mean([
            float(simulate_lt(weighted, seeds, rng=gen).sum())
            for _ in range(6000)
        ])
        assert rr_estimate == pytest.approx(mc, rel=0.08)


class TestVanillaLT:
    def test_hub_selected_on_star(self):
        graph = star_digraph(25)  # each leaf's sole in-weight is 1 from hub
        seeds = vanilla_lt_seeds(graph, 1, options=TIMOptions(theta_override=800), rng=9)
        assert seeds == [0]

    def test_rank_order_length(self, weighted):
        seeds = vanilla_lt_seeds(
            weighted, 4, options=TIMOptions(theta_override=500), rng=10
        )
        assert len(seeds) == 4
        assert len(set(seeds)) == 4
