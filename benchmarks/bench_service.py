"""Query-daemon benchmark -> BENCH_service.json.

Measures :class:`~repro.service.ComICServer` end to end over HTTP with
concurrent stdlib clients, on an in-process server over a synthetic
power-law graph with a cataloged on-disk pool store:

* **cold** — distinct first-contact queries (each samples a fresh pool);
* **warm** — the same queries repeated: every answer must come from the
  pooled RR-sets with ``rr_sets_sampled == 0`` (the gated warm-hit-rate
  floor) at a latency floor far below cold;
* **coalesce** — K clients barrier-fire one identical cold query; the
  single-flight table must execute exactly once and serve K-1 followers
  the leader's envelope (gated);
* **restart_warm** — a second server process-equivalent (fresh sessions,
  same store) answers a repeat query with zero resampling and identical
  seeds through HTTP (gated);
* **mixed** — N concurrent clients × R requests over the warm key set:
  p50/p99 latency and aggregate QPS.

The JSON schema mirrors ``BENCH_rrset.json``: a ``gate`` block with
``passed``/``failures`` and per-phase records; the script exits non-zero
when a gate fails so CI turns red on a service regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \
        [--output BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

from repro.api import EngineConfig, SelfInfMaxQuery
from repro.graph.generators import power_law_digraph
from repro.graph.weights import weighted_cascade_probabilities
from repro.models.gaps import GAP
from repro.service import CatalogedPoolStore, ComICServer, ServiceClient

SCHEMA_VERSION = 1

GAPS = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)

#: gated floor: fraction of warm-phase requests answered with zero
#: resampling.  Anything below means the pool cache / store / flight-key
#: plumbing silently broke.
WARM_HIT_FLOOR = 0.95


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def latency_summary(samples_s: list[float]) -> dict[str, float]:
    return {
        "requests": len(samples_s),
        "p50_ms": round(percentile(samples_s, 50) * 1e3, 3),
        "p99_ms": round(percentile(samples_s, 99) * 1e3, 3),
        "mean_ms": round(sum(samples_s) / max(len(samples_s), 1) * 1e3, 3),
    }


def build_server(graph, store_dir, config):
    server = ComICServer()
    server.register_graph(
        "bench", graph, GAPS,
        config=config, store=CatalogedPoolStore(store_dir),
    )
    return server


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI budget: smaller graph and fewer requests")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args()

    nodes = args.nodes or (400 if args.quick else 2000)
    n_keys = 4 if args.quick else 8
    coalesce_clients = 6
    mixed_clients = 4 if args.quick else 8
    mixed_requests = 8 if args.quick else 25

    graph = weighted_cascade_probabilities(power_law_digraph(nodes, rng=5))
    config = EngineConfig(engine="imm", max_rr_sets=4000 if args.quick else 20000)
    queries = [
        SelfInfMaxQuery(seeds_b=(2 * i, 2 * i + 1), k=5) for i in range(n_keys)
    ]

    report: dict = {
        "schema_version": SCHEMA_VERSION,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "config": {
            "quick": bool(args.quick),
            "engine": config.engine,
            "max_rr_sets": config.max_rr_sets,
            "distinct_keys": n_keys,
            "coalesce_clients": coalesce_clients,
            "mixed_clients": mixed_clients,
            "mixed_requests_per_client": mixed_requests,
        },
    }

    with tempfile.TemporaryDirectory() as store_dir:
        server = build_server(graph, store_dir, config)
        host, port = server.start()

        # -------------------------------------------------- cold
        cold_lat: list[float] = []
        cold_sampled = 0
        with ServiceClient(host, port, timeout=600.0) as client:
            for i, query in enumerate(queries):
                t0 = time.perf_counter()
                body = client.query("bench", query, rng=100 + i)
                cold_lat.append(time.perf_counter() - t0)
                cold_sampled += body["diagnostics"]["rr_sets_sampled"]
        report["cold"] = {
            **latency_summary(cold_lat),
            "rr_sets_sampled": cold_sampled,
        }

        # -------------------------------------------------- warm
        warm_lat: list[float] = []
        warm_hits = 0
        with ServiceClient(host, port, timeout=600.0) as client:
            for i, query in enumerate(queries):
                t0 = time.perf_counter()
                body = client.query("bench", query, rng=100 + i)
                warm_lat.append(time.perf_counter() - t0)
                if body["diagnostics"]["rr_sets_sampled"] == 0:
                    warm_hits += 1
        warm_hit_rate = warm_hits / len(queries)
        report["warm"] = {
            **latency_summary(warm_lat),
            "hit_rate": warm_hit_rate,
            "hit_rate_floor": WARM_HIT_FLOOR,
            "cold_over_warm_p50": round(
                percentile(cold_lat, 50) / max(percentile(warm_lat, 50), 1e-9),
                2,
            ),
        }

        # -------------------------------------------------- coalesce
        fresh = SelfInfMaxQuery(seeds_b=(401 % nodes, 403 % nodes), k=4)
        flights_before = server.stats.flights
        coalesced_before = server.stats.coalesced
        queries_before = server.stats.queries
        barrier = threading.Barrier(coalesce_clients)
        results: list = [None] * coalesce_clients
        lat: list[float] = [0.0] * coalesce_clients

        def fire(idx: int) -> None:
            with ServiceClient(host, port, timeout=600.0) as c:
                barrier.wait()
                t0 = time.perf_counter()
                results[idx] = c.query("bench", fresh, rng=777)
                lat[idx] = time.perf_counter() - t0

        threads = [
            threading.Thread(target=fire, args=(i,))
            for i in range(coalesce_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        executions = server.stats.queries - queries_before
        coalesced = server.stats.coalesced - coalesced_before
        flights = server.stats.flights - flights_before
        seed_sets = {tuple(r["seeds"]) for r in results if r}
        report["coalesce"] = {
            **latency_summary(lat),
            "clients": coalesce_clients,
            "executions": executions,
            "flights": flights,
            "coalesced": coalesced,
            "identical_envelopes": len(seed_sets) == 1,
        }

        server.close()

        # -------------------------------------------------- restart_warm
        server = build_server(graph, store_dir, config)
        host, port = server.start()
        with ServiceClient(host, port, timeout=600.0) as client:
            t0 = time.perf_counter()
            body = client.query("bench", queries[0], rng=100)
            restart_latency = time.perf_counter() - t0
        report["restart_warm"] = {
            "latency_ms": round(restart_latency * 1e3, 3),
            "rr_sets_sampled": body["diagnostics"]["rr_sets_sampled"],
            "theta_pinned": body["diagnostics"]["rr_sets_sampled"] == 0,
        }

        # -------------------------------------------------- mixed
        mixed_lat: list[float] = []
        mixed_lock = threading.Lock()
        start_barrier = threading.Barrier(mixed_clients)

        def mixed_worker(idx: int) -> None:
            local: list[float] = []
            with ServiceClient(host, port, timeout=600.0) as c:
                start_barrier.wait()
                for r in range(mixed_requests):
                    i = (idx + r) % len(queries)
                    t0 = time.perf_counter()
                    c.query("bench", queries[i], rng=100 + i)
                    local.append(time.perf_counter() - t0)
            with mixed_lock:
                mixed_lat.extend(local)

        threads = [
            threading.Thread(target=mixed_worker, args=(i,))
            for i in range(mixed_clients)
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall0
        report["mixed"] = {
            **latency_summary(mixed_lat),
            "clients": mixed_clients,
            "wall_s": round(wall, 3),
            "qps": round(len(mixed_lat) / max(wall, 1e-9), 1),
        }
        stats_body = server.handle_stats()[1]
        report["server_stats"] = stats_body["server"]
        report["catalog"] = {
            "rows": len(server.handle_catalog("bench")[1]["bench"]["rows"]),
        }
        server.close()

    # ------------------------------------------------------ gate
    failures: list[str] = []
    if warm_hit_rate < WARM_HIT_FLOOR:
        failures.append(
            f"warm.hit_rate {warm_hit_rate:.2f} < floor {WARM_HIT_FLOOR}"
        )
    if report["coalesce"]["executions"] != 1:
        failures.append(
            f"coalesce.executions {report['coalesce']['executions']} != 1"
        )
    if report["coalesce"]["coalesced"] != coalesce_clients - 1:
        failures.append(
            f"coalesce.coalesced {report['coalesce']['coalesced']} != "
            f"{coalesce_clients - 1}"
        )
    if not report["coalesce"]["identical_envelopes"]:
        failures.append("coalesce envelopes diverged")
    if report["restart_warm"]["rr_sets_sampled"] != 0:
        failures.append(
            "restart_warm resampled "
            f"{report['restart_warm']['rr_sets_sampled']} RR-sets (want 0)"
        )
    report["gate"] = {"passed": not failures, "failures": failures}

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    for name in ("cold", "warm", "coalesce", "restart_warm", "mixed"):
        print(f"  {name}: {json.dumps(report[name])}")
    if failures:
        print("GATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"gate passed (warm hit rate {warm_hit_rate:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
