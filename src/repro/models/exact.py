"""Exact adoption probabilities by exhaustive decision-tree enumeration.

For small instances, the Com-IC process makes only a handful of random
decisions (edge tests, NLA tests, reconsiderations, tie-break permutations,
dual-seed coins).  This module enumerates the complete decision tree by
repeatedly running the engine against a
:class:`~repro.models.sources.ReplaySource` and branching whenever the tape
runs out (:class:`~repro.models.sources.DecisionNeeded`).  The result is the
*exact* per-node adoption probability vector, used as the ground-truth
oracle in tests — including the appendix counter-examples where the paper
reports exact values such as ``p_v(T) = 0.027254``.

The tree grows exponentially; callers must keep graphs tiny (a guard raises
:class:`~repro.errors.ConvergenceError` beyond ``max_paths`` leaves).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.models.comic import simulate
from repro.models.gaps import GAP
from repro.models.sources import DecisionNeeded, ReplaySource


def exact_adoption_probabilities(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    max_paths: int = 500_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(P[v A-adopted], P[v B-adopted])`` vectors for every node.

    Enumerates every realisation of the diffusion's randomness, weighting
    each leaf by the product of its decision probabilities.
    """
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    n = graph.num_nodes
    prob_a = np.zeros(n, dtype=np.float64)
    prob_b = np.zeros(n, dtype=np.float64)
    total_mass = 0.0
    leaves = 0

    stack: list[tuple[int, ...]] = [()]
    while stack:
        tape = stack.pop()
        source = ReplaySource(tape)
        try:
            outcome = simulate(graph, gaps, seeds_a, seeds_b, source=source)
        except DecisionNeeded as branch:
            for option, probability in enumerate(branch.probabilities):
                if probability > 0.0:
                    stack.append(tape + (option,))
            continue
        leaves += 1
        if leaves > max_paths:
            raise ConvergenceError(
                f"decision tree exceeded {max_paths} leaves; "
                "exact enumeration is only feasible on tiny graphs"
            )
        mass = math.prod(source.trace) if source.trace else 1.0
        total_mass += mass
        prob_a += mass * outcome.a_adopted
        prob_b += mass * outcome.b_adopted

    if not math.isclose(total_mass, 1.0, rel_tol=0.0, abs_tol=1e-9):
        raise ConvergenceError(
            f"decision-path probabilities sum to {total_mass}, expected 1.0 "
            "(engine consumed randomness inconsistently)"
        )
    return prob_a, prob_b


def exact_spread(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    max_paths: int = 500_000,
) -> tuple[float, float]:
    """Exact ``(sigma_A, sigma_B)`` — expected adopter counts (Problem 1/2
    objectives) by full enumeration."""
    prob_a, prob_b = exact_adoption_probabilities(
        graph, gaps, seeds_a, seeds_b, max_paths=max_paths
    )
    return float(prob_a.sum()), float(prob_b.sum())
