"""repro.service — the Com-IC query daemon.

A long-lived service in front of :class:`~repro.api.session.ComICSession`:
:class:`ComICServer` owns one session per registered graph behind a
stdlib-only HTTP/1.1 JSON front, coalescing identical in-flight queries
(single-flight) and answering repeats from pooled RR-sets at warm speed;
:class:`CatalogedPoolStore` adds a SQLite catalog (per-pool rows, WAL,
hit/load counters) and LRU disk-quota GC to the persistent pool store;
:class:`ServiceClient` is the matching stdlib client.

Run one with ``python -m repro.service``; operator guide in
``docs/service.md``.
"""

from repro.service.catalog import CatalogedPoolStore, PoolCatalog
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import ComICServer, ServerStats, ServiceError

__all__ = [
    "CatalogedPoolStore",
    "ComICServer",
    "PoolCatalog",
    "ServerStats",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
]
