"""Unit tests for the exact enumeration oracle."""

import pytest

from repro.errors import ConvergenceError
from repro.graph import DiGraph, path_digraph
from repro.models import GAP, exact_adoption_probabilities, exact_spread


class TestExactOracle:
    def test_deterministic_path(self):
        sa, sb = exact_spread(path_digraph(4), GAP.classic_ic(), [0], [])
        assert sa == pytest.approx(4.0)
        assert sb == pytest.approx(0.0)

    def test_bernoulli_chain(self):
        # sigma_A = 1 + q + q^2 on a 3-path with q = 0.5 edge-certain.
        gaps = GAP(q_a=0.5, q_a_given_b=0.5, q_b=0.0, q_b_given_a=0.0)
        sa, _ = exact_spread(path_digraph(3), gaps, [0], [])
        assert sa == pytest.approx(1.75)

    def test_edge_probability_chain(self):
        # Edge prob 0.5, q = 1: same 1 + p + p^2 value through edge coins.
        g = path_digraph(3, probability=0.5)
        sa, _ = exact_spread(g, GAP.classic_ic(), [0], [])
        assert sa == pytest.approx(1.75)

    def test_complementary_boost(self):
        # With q_a=0.2, q_{A|B}=0.9 and B certain everywhere, each path node
        # adopts A with probability 0.9 per hop.
        g = path_digraph(3)
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=1.0, q_b_given_a=1.0)
        pa, pb = exact_adoption_probabilities(g, gaps, [0], [0])
        assert pa.tolist() == pytest.approx([1.0, 0.9, 0.81])
        assert pb.tolist() == pytest.approx([1.0, 1.0, 1.0])

    def test_two_informers_tie_break_enumerated(self):
        # Node 2 hears A and B simultaneously under pure competition: each
        # order is equally likely, so P[A adopted] = 0.5.
        g = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        pa, pb = exact_adoption_probabilities(g, GAP.pure_competition(), [0], [1])
        assert pa[2] == pytest.approx(0.5)
        assert pb[2] == pytest.approx(0.5)

    def test_dual_seed_coin_enumerated(self):
        # A node seeded with both items under pure competition adopts both
        # (seeding bypasses the NLA) - check mass accounting stays exact.
        g = path_digraph(2)
        pa, pb = exact_adoption_probabilities(g, GAP.pure_competition(), [0], [0])
        assert pa[0] == 1.0 and pb[0] == 1.0
        # Node 1 hears A and B from node 0 in node 0's adoption order,
        # which the tau coin decides: each item wins half the time.
        assert pa[1] == pytest.approx(0.5)
        assert pb[1] == pytest.approx(0.5)

    def test_guard_on_large_instances(self):
        g = path_digraph(30, probability=0.5)
        with pytest.raises(ConvergenceError, match="leaves"):
            exact_spread(g, GAP.independent(0.5, 0.5), [0], [0], max_paths=50)

    def test_matches_monte_carlo(self):
        g = DiGraph.from_edges(
            4, [(0, 1, 0.7), (1, 2, 0.6), (0, 2, 0.4), (2, 3, 0.9)]
        )
        gaps = GAP(q_a=0.4, q_a_given_b=0.8, q_b=0.6, q_b_given_a=0.9)
        sa, sb = exact_spread(g, gaps, [0], [1])
        from repro.models import estimate_spread

        est = estimate_spread(g, gaps, [0], [1], runs=6000, rng=0)
        assert est.mean == pytest.approx(sa, abs=4 * est.stderr + 0.02)
