"""`GraphDelta`: declarative edge mutations over an immutable :class:`DiGraph`.

Graphs in this library are immutable — every algorithm may share one
freely — so "the network changed" is expressed as data, not mutation: a
:class:`GraphDelta` is a frozen, JSON-round-trippable batch of edge
additions, removals and reweights, and :meth:`DiGraph.apply_delta`
produces a *new* graph (new fingerprint) plus a :class:`DeltaEffect`
describing exactly what changed in edge-id terms.

The effect record is what makes incremental RR-pool repair possible
(:mod:`repro.rrset.repair`): edge ids are positions in the
``(src, dst)``-sorted canonical edge arrays, so inserting or removing
edges *shifts* the ids of untouched edges — ``DeltaEffect.old_to_new_edge``
carries the full remapping, and ``changed_old_edges`` / ``added_edges``
identify the edges whose coin outcomes an RR set may no longer trust.

Same API conventions as the query dataclasses (:mod:`repro.api.queries`):
frozen, validated in ``__post_init__`` with typed errors
(:class:`~repro.errors.DeltaError`, never bare ``ValueError``), and
``GraphDelta.from_json(d.to_json()) == d``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import DeltaError
from repro.graph.digraph import DiGraph

__all__ = ["GraphDelta", "DeltaEffect", "apply_delta"]


def _edge_pairs(name: str, edges: Iterable) -> tuple[tuple[int, int], ...]:
    """Normalise an iterable of ``(u, v)`` pairs; typed errors."""
    if isinstance(edges, (str, bytes)):
        raise DeltaError(f"{name} must be an iterable of (u, v) pairs")
    out = []
    for item in edges:
        try:
            u, v = item
            out.append((int(u), int(v)))
        except (TypeError, ValueError) as exc:
            raise DeltaError(
                f"{name} entries must be (u, v) pairs of node ids, got {item!r}"
            ) from exc
    return tuple(out)


def _edge_triples(
    name: str, edges: Iterable
) -> tuple[tuple[int, int, float], ...]:
    """Normalise an iterable of ``(u, v, prob)`` triples; typed errors."""
    if isinstance(edges, (str, bytes)):
        raise DeltaError(f"{name} must be an iterable of (u, v, prob) triples")
    out = []
    for item in edges:
        try:
            u, v, p = item
            triple = (int(u), int(v), float(p))
        except (TypeError, ValueError) as exc:
            raise DeltaError(
                f"{name} entries must be (u, v, prob) triples, got {item!r}"
            ) from exc
        if not 0.0 <= triple[2] <= 1.0:
            raise DeltaError(
                f"{name} probability must lie in [0, 1], got {triple[2]} "
                f"for edge ({triple[0]}, {triple[1]})"
            )
        out.append(triple)
    return tuple(out)


@dataclass(frozen=True)
class GraphDelta:
    """One batch of edge mutations: add / remove / reweight.

    ``add`` holds ``(u, v, prob)`` triples of new edges, ``remove``
    ``(u, v)`` pairs of edges to delete, ``reweight`` ``(u, v, prob)``
    triples replacing existing probabilities.  A delta never changes the
    node count.  Each edge may appear in at most one batch (editing and
    removing the same edge in one delta is ambiguous and rejected).

    Round-trips losslessly through JSON::

        GraphDelta.from_json(delta.to_json()) == delta
    """

    add: tuple[tuple[int, int, float], ...] = ()
    remove: tuple[tuple[int, int], ...] = ()
    reweight: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add", _edge_triples("add", self.add))
        object.__setattr__(self, "remove", _edge_pairs("remove", self.remove))
        object.__setattr__(
            self, "reweight", _edge_triples("reweight", self.reweight)
        )
        seen: dict[tuple[int, int], str] = {}
        for batch_name, pairs in (
            ("add", [(u, v) for u, v, _ in self.add]),
            ("remove", list(self.remove)),
            ("reweight", [(u, v) for u, v, _ in self.reweight]),
        ):
            for pair in pairs:
                if pair[0] == pair[1]:
                    raise DeltaError(
                        f"self-loop ({pair[0]}, {pair[1]}) in {batch_name} "
                        "(self-loops are disallowed)"
                    )
                if pair in seen:
                    raise DeltaError(
                        f"edge {pair} appears in both {seen[pair]!r} and "
                        f"{batch_name!r}; each edge may be edited once per delta"
                    )
                seen[pair] = batch_name

    def __bool__(self) -> bool:
        return bool(self.add or self.remove or self.reweight)

    @property
    def num_edits(self) -> int:
        """Total number of edge edits in the delta."""
        return len(self.add) + len(self.remove) + len(self.reweight)

    # ------------------------------------------------------------------
    # Serialisation (same conventions as the query dataclasses)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-JSON-types dict tagged ``kind: graph_delta``."""
        return {
            "kind": "graph_delta",
            "add": [list(e) for e in self.add],
            "remove": [list(e) for e in self.remove],
            "reweight": [list(e) for e in self.reweight],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphDelta":
        """Rebuild from :meth:`to_dict` output (tag optional but checked)."""
        if not isinstance(data, Mapping):
            raise DeltaError(
                f"delta payload must be a mapping, got {type(data).__name__}"
            )
        data = dict(data)
        tag = data.pop("kind", "graph_delta")
        if tag != "graph_delta":
            raise DeltaError(f"payload is a {tag!r} object, not 'graph_delta'")
        field_names = {f.name for f in fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise DeltaError(f"unknown GraphDelta fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "GraphDelta":
        """Inverse of :meth:`to_json` (``from_json(to_json(d)) == d``)."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise DeltaError(f"unreadable delta payload: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def churn(self, graph: DiGraph) -> float:
        """Edited-edge fraction of ``graph`` (``edits / max(m, 1)``)."""
        return self.num_edits / max(graph.num_edges, 1)

    def apply(self, graph: DiGraph) -> "DeltaEffect":
        """Apply to ``graph``; returns the new graph + change record."""
        return apply_delta(graph, self)


@dataclass(frozen=True)
class DeltaEffect:
    """The resolved outcome of applying one :class:`GraphDelta`.

    Everything an incremental pool repair needs: the new graph, the old
    edge ids whose probability changed or whose edge vanished
    (``changed_old_edges``), the endpoints of brand-new edges
    (``added_src`` / ``added_dst``), and the old→new edge-id remapping
    (``old_to_new_edge``; removed edges map to ``-1``).  Edge ids shift
    because both graphs keep their edges ``(src, dst)``-sorted.
    """

    delta: GraphDelta
    old_graph: DiGraph
    graph: DiGraph
    #: old edge ids removed or reweighted (sorted, unique).
    changed_old_edges: np.ndarray
    #: endpoints of edges that exist only in the new graph.
    added_src: np.ndarray
    added_dst: np.ndarray
    #: length-``m_old`` map old edge id -> new edge id (``-1`` = removed).
    old_to_new_edge: np.ndarray

    @property
    def node_count_stable(self) -> bool:
        return self.old_graph.num_nodes == self.graph.num_nodes

    def changed_target_mask(self) -> np.ndarray:
        """Boolean node mask: targets of every changed or added edge.

        This is the *implicit* touch test: a reverse search only tests an
        edge ``(u, v)`` while visiting ``v``, so an RR set whose member
        nodes avoid every changed edge's target never observed the change.
        """
        mask = np.zeros(self.old_graph.num_nodes, dtype=bool)
        if self.changed_old_edges.size:
            mask[self.old_graph.edge_targets[self.changed_old_edges]] = True
        if self.added_dst.size:
            mask[self.added_dst] = True
        return mask


def apply_delta(graph: DiGraph, delta: GraphDelta) -> DeltaEffect:
    """Apply ``delta`` to ``graph``, producing a :class:`DeltaEffect`.

    Validation is strict (typed :class:`~repro.errors.DeltaError`):
    removing or reweighting an edge that does not exist, adding one that
    already does, or referencing nodes outside ``[0, n)`` all reject the
    whole delta — a partially-applied delta would desynchronise every
    fingerprint-keyed artifact downstream.
    """
    if not isinstance(graph, DiGraph):
        raise DeltaError(f"graph must be a DiGraph, got {type(graph).__name__}")
    if not isinstance(delta, GraphDelta):
        raise DeltaError(
            f"delta must be a GraphDelta, got {type(delta).__name__}"
        )
    n = graph.num_nodes
    m = graph.num_edges
    for u, v in [(u, v) for u, v, _ in delta.add] + list(delta.remove) + [
        (u, v) for u, v, _ in delta.reweight
    ]:
        if not (0 <= u < n and 0 <= v < n):
            raise DeltaError(
                f"edge ({u}, {v}) references nodes outside [0, {n - 1}] "
                "(deltas never change the node count)"
            )
    src = graph.edge_sources
    dst = graph.edge_targets
    prob = graph.edge_probabilities
    # Edges are (src, dst)-sorted, so src * n + dst is a sorted key array
    # and every lookup is a binary search.
    keys = src * n + dst

    def locate(pairs: list[tuple[int, int]], verb: str) -> np.ndarray:
        if not pairs:
            return np.empty(0, dtype=np.int64)
        want = np.asarray([u * n + v for u, v in pairs], dtype=np.int64)
        pos = np.searchsorted(keys, want)
        ok = (pos < m) & (keys[np.minimum(pos, max(m - 1, 0))] == want)
        if not np.all(ok):
            bad = pairs[int(np.flatnonzero(~ok)[0])]
            raise DeltaError(f"cannot {verb} edge {bad}: it does not exist")
        return pos

    remove_pos = locate(list(delta.remove), "remove")
    reweight_pos = locate([(u, v) for u, v, _ in delta.reweight], "reweight")

    if delta.add:
        add_keys = np.asarray(
            [u * n + v for u, v, _ in delta.add], dtype=np.int64
        )
        pos = np.searchsorted(keys, add_keys)
        exists = (pos < m) & (keys[np.minimum(pos, max(m - 1, 0))] == add_keys)
        if np.any(exists):
            u, v, _ = delta.add[int(np.flatnonzero(exists)[0])]
            raise DeltaError(f"cannot add edge ({u}, {v}): it already exists")

    new_prob = prob.copy()
    if reweight_pos.size:
        new_prob[reweight_pos] = [p for _, _, p in delta.reweight]
    keep = np.ones(m, dtype=bool)
    keep[remove_pos] = False

    add_src = np.asarray([u for u, _, _ in delta.add], dtype=np.int64)
    add_dst = np.asarray([v for _, v, _ in delta.add], dtype=np.int64)
    add_prob = np.asarray([p for _, _, p in delta.add], dtype=np.float64)

    new_graph = DiGraph.from_arrays(
        n,
        np.concatenate([src[keep], add_src]),
        np.concatenate([dst[keep], add_dst]),
        np.concatenate([new_prob[keep], add_prob]),
    )
    # Old id -> new id: kept old edges keep their (src, dst) key, and the
    # new graph's keys are sorted too, so one searchsorted resolves them.
    old_to_new = np.full(m, -1, dtype=np.int64)
    if np.any(keep):
        new_keys = new_graph.edge_sources * n + new_graph.edge_targets
        old_to_new[keep] = np.searchsorted(new_keys, keys[keep])
    changed = np.unique(np.concatenate([remove_pos, reweight_pos]))
    return DeltaEffect(
        delta=delta,
        old_graph=graph,
        graph=new_graph,
        changed_old_edges=changed,
        added_src=add_src,
        added_dst=add_dst,
        old_to_new_edge=old_to_new,
    )
