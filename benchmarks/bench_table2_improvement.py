"""Benchmark: Table 2 — improvement over baselines, mid-tier opposite seeds.

Shape check (paper): GeneralTIM >= Copying for SelfInfMax in every cell,
usually by a wide margin, and >= VanillaIC in most cells.
"""

from repro.experiments import table2_improvement


def bench_table2_improvement(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: table2_improvement(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "table2_improvement_midtier")
    sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
    assert all(r["impr_vs_copying_pct"] > -5.0 for r in sim_rows)
