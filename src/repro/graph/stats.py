"""Graph summary statistics and reachability utilities.

:func:`graph_stats` reproduces the columns of the paper's Table 1 (node and
edge counts, average and maximum out-degree).  The strongly-connected-
component decomposition is used to mimic the paper's preprocessing of
Flixster ("we extract a strongly connected component").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.digraph import DiGraph, induced_subgraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph (paper Table 1 columns)."""

    num_nodes: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    avg_in_degree: float
    max_in_degree: int

    def as_row(self) -> dict[str, float]:
        """Render as a flat dict (used by the reporting layer)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_out_degree": round(self.avg_out_degree, 2),
            "max_out_degree": self.max_out_degree,
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_nodes
    out_deg = graph.out_degrees
    in_deg = graph.in_degrees
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        avg_out_degree=float(out_deg.mean()) if n else 0.0,
        max_out_degree=int(out_deg.max()) if n else 0,
        avg_in_degree=float(in_deg.mean()) if n else 0.0,
        max_in_degree=int(in_deg.max()) if n else 0,
    )


def reachable_from(graph: DiGraph, sources: Iterable[int]) -> np.ndarray:
    """Nodes reachable from ``sources`` by directed paths (including sources).

    Plain BFS ignoring edge probabilities; returns a sorted id array.
    """
    visited = np.zeros(graph.num_nodes, dtype=bool)
    frontier = [int(s) for s in sources]
    for s in frontier:
        if not 0 <= s < graph.num_nodes:
            raise ValueError(f"source {s} out of range")
        visited[s] = True
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.out_neighbors(u):
                if not visited[v]:
                    visited[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return np.flatnonzero(visited)


def strongly_connected_components(graph: DiGraph) -> list[np.ndarray]:
    """Tarjan's SCC algorithm (iterative), components in reverse topological order."""
    n = graph.num_nodes
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[np.ndarray] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Iterative Tarjan: work items are (node, iterator position).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, child_pos = work.pop()
            if child_pos == 0:
                index[v] = counter
                lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            neighbors = graph.out_neighbors(v)
            for pos in range(child_pos, neighbors.size):
                w = int(neighbors[pos])
                if index[w] == -1:
                    work.append((v, pos + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if recurse:
                continue
            if lowlink[v] == index[v]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(np.asarray(sorted(component), dtype=np.int64))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


def largest_scc(graph: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """Induced subgraph on the largest strongly connected component.

    Returns ``(subgraph, old_ids)`` as :func:`~repro.graph.digraph.induced_subgraph`.
    """
    components = strongly_connected_components(graph)
    if not components:
        return graph, np.empty(0, dtype=np.int64)
    biggest = max(components, key=len)
    return induced_subgraph(graph, biggest)


def out_degree_distribution(graph: DiGraph) -> np.ndarray:
    """Histogram of out-degrees: ``dist[d]`` = number of nodes with
    out-degree ``d``.

    The Table-1 stand-ins are validated against the paper's heavy-tailed
    shapes with this (power-law graphs show a long right tail; ER graphs
    concentrate around the mean).
    """
    degrees = graph.out_degrees
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def degree_tail_ratio(graph: DiGraph) -> float:
    """``max out-degree / average out-degree`` — a one-number tail gauge.

    The paper's datasets sit between ~13 (Flixster) and ~260 (Douban-Book);
    Erdős–Rényi graphs land near 2–4.  Used to sanity-check that synthetic
    stand-ins reproduce the published degree heterogeneity.
    """
    degrees = graph.out_degrees
    if degrees.size == 0 or graph.num_edges == 0:
        return 0.0
    return float(degrees.max()) / float(degrees.mean())


def reciprocity(graph: DiGraph) -> float:
    """Fraction of edges whose reverse edge also exists.

    Flixster/Last.fm links are undirected in the raw data and directed
    both ways by the paper (reciprocity 1.0); Douban's follower edges are
    one-way.  Returns 0.0 for edgeless graphs.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    n = graph.num_nodes
    forward = set(
        (int(u), int(v))
        for u, v in zip(graph.edge_sources, graph.edge_targets)
    )
    mutual = sum(1 for (u, v) in forward if (v, u) in forward)
    return mutual / m
