"""Tests of the declarative query API (repro.api)."""
