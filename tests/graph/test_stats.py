"""Unit tests for graph statistics and reachability."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    cycle_digraph,
    graph_stats,
    largest_scc,
    path_digraph,
    reachable_from,
    star_digraph,
    strongly_connected_components,
)


class TestGraphStats:
    def test_table1_columns(self):
        g = star_digraph(5)  # center 0 -> 4 leaves
        stats = graph_stats(g)
        assert stats.num_nodes == 5
        assert stats.num_edges == 4
        assert stats.avg_out_degree == pytest.approx(0.8)
        assert stats.max_out_degree == 4
        assert stats.max_in_degree == 1

    def test_empty_graph(self):
        stats = graph_stats(DiGraph.from_edges(0, []))
        assert stats.num_nodes == 0
        assert stats.avg_out_degree == 0.0

    def test_as_row(self):
        row = graph_stats(star_digraph(5)).as_row()
        assert row["nodes"] == 5
        assert row["max_out_degree"] == 4


class TestReachability:
    def test_path(self):
        g = path_digraph(5)
        assert reachable_from(g, [2]).tolist() == [2, 3, 4]

    def test_multiple_sources(self):
        g = path_digraph(5)
        assert reachable_from(g, [0, 3]).tolist() == [0, 1, 2, 3, 4]

    def test_includes_sources_only_for_isolated(self):
        g = DiGraph.from_edges(3, [])
        assert reachable_from(g, [1]).tolist() == [1]

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            reachable_from(path_digraph(3), [5])


class TestSCC:
    def test_cycle_is_one_component(self):
        comps = strongly_connected_components(cycle_digraph(4))
        assert len(comps) == 1
        assert comps[0].tolist() == [0, 1, 2, 3]

    def test_path_is_singletons(self):
        comps = strongly_connected_components(path_digraph(4))
        assert len(comps) == 4
        assert sorted(c.tolist()[0] for c in comps) == [0, 1, 2, 3]

    def test_two_cycles_with_bridge(self):
        # 0<->1 cycle, 2<->3 cycle, bridge 1->2.
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)])
        comps = strongly_connected_components(g)
        sets = sorted(tuple(c.tolist()) for c in comps)
        assert sets == [(0, 1), (2, 3)]

    def test_reverse_topological_order(self):
        # Tarjan emits sinks first: component {2,3} is downstream of {0,1}.
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)])
        comps = strongly_connected_components(g)
        assert comps[0].tolist() == [2, 3]

    def test_largest_scc(self):
        g = DiGraph.from_edges(
            5, [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)]
        )
        sub, old_ids = largest_scc(g)
        assert sub.num_nodes == 3
        assert sorted(old_ids.tolist()) == [2, 3, 4]
        assert sub.num_edges == 3

    def test_empty_graph(self):
        g = DiGraph.from_edges(0, [])
        assert strongly_connected_components(g) == []
        sub, ids = largest_scc(g)
        assert sub.num_nodes == 0
