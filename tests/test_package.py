"""Top-level package surface tests."""

import pytest

import repro
from repro.errors import (
    ActionLogError,
    ConvergenceError,
    EdgeProbabilityError,
    EstimationError,
    ExperimentError,
    GapError,
    GraphError,
    RegimeError,
    ReproError,
    SeedSetError,
)


class TestVersion:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_api_present(self):
        assert callable(repro.simulate)
        assert callable(repro.solve_selfinfmax)
        assert callable(repro.solve_compinfmax)
        assert callable(repro.general_tim)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            GraphError,
            EdgeProbabilityError,
            GapError,
            RegimeError,
            SeedSetError,
            ConvergenceError,
            ActionLogError,
            EstimationError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_specialisations(self):
        assert issubclass(EdgeProbabilityError, GraphError)
        assert issubclass(RegimeError, GapError)

    def test_catchable_as_base(self):
        from repro.graph import DiGraph

        with pytest.raises(ReproError):
            DiGraph.from_edges(1, [(0, 5, 1.0)])


class TestSubpackageSurfaces:
    """Every subpackage's __all__ must resolve — guards export drift."""

    @pytest.mark.parametrize("module_name", [
        "repro.graph",
        "repro.models",
        "repro.rrset",
        "repro.algorithms",
        "repro.learning",
        "repro.analysis",
        "repro.datasets",
        "repro.experiments",
    ])
    def test_all_exports_resolve(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__all__, module_name
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    def test_no_duplicate_exports(self):
        import importlib

        for module_name in (
            "repro.models", "repro.rrset", "repro.algorithms",
            "repro.learning", "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            assert len(module.__all__) == len(set(module.__all__)), module_name
