"""Tests for the Sandwich Approximation strategy (Theorem 9)."""

import pytest

from repro.algorithms import SandwichResult, sandwich_select


class TestSandwichSelect:
    def test_picks_best_under_true_objective(self):
        candidates = {"mu": [1, 2], "nu": [3, 4], "sigma": [5]}
        values = {(1, 2): 10.0, (3, 4): 25.0, (5,): 7.0}
        result = sandwich_select(candidates, lambda s: values[tuple(s)])
        assert result.winner == "nu"
        assert result.seeds == [3, 4]
        assert result.value == 25.0
        assert result.evaluations == {"mu": 10.0, "nu": 25.0, "sigma": 7.0}

    def test_tie_prefers_first_candidate(self):
        candidates = {"mu": [1], "nu": [2]}
        result = sandwich_select(candidates, lambda s: 5.0)
        assert result.winner == "mu"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sandwich_select({}, lambda s: 0.0)

    def test_candidates_recorded(self):
        result = sandwich_select({"nu": [9]}, lambda s: 1.0)
        assert result.candidates == {"nu": [9]}


class TestApproximationRatioBound:
    def test_ratio_formula(self):
        result = SandwichResult(
            winner="nu", seeds=[1], value=8.0, evaluations={"nu": 8.0}
        )
        # sigma(S_nu) / nu(S_nu) = 8 / 10.
        assert result.approximation_ratio_bound(10.0) == pytest.approx(0.8)

    def test_ratio_capped_at_one(self):
        result = SandwichResult(
            winner="nu", seeds=[1], value=12.0, evaluations={"nu": 12.0}
        )
        # MC noise can make sigma(S_nu) exceed the nu estimate; cap at 1.
        assert result.approximation_ratio_bound(10.0) == 1.0

    def test_degenerate_bound(self):
        result = SandwichResult(
            winner="nu", seeds=[1], value=0.0, evaluations={"nu": 0.0}
        )
        assert result.approximation_ratio_bound(0.0) == 1.0


class TestTheorem9Arithmetic:
    def test_guarantee_holds_on_enumerable_instance(self):
        """Build a tiny non-submodular objective sandwiched by submodular
        bounds and check the Theorem 9 inequality numerically."""
        import itertools

        universe = [0, 1, 2]
        k = 2

        def nu(s):  # modular (hence submodular) upper bound
            return 2.0 * len(s)

        def mu(s):  # modular lower bound
            return float(len(s))

        def sigma(s):  # non-submodular: complementary pair {0, 1}
            base = float(len(s))
            if 0 in s and 1 in s:
                base += 1.0
            return base

        for subset in itertools.chain.from_iterable(
            itertools.combinations(universe, r) for r in range(3)
        ):
            assert mu(set(subset)) <= sigma(set(subset)) <= nu(set(subset))

        best = max(
            (set(c) for c in itertools.combinations(universe, k)), key=sigma
        )
        # Greedy on nu / mu can return any size-k set (all equal); take the
        # adversarially worst: {0, 2}.
        s_nu = {0, 2}
        s_mu = {0, 2}
        result = sandwich_select({"nu": list(s_nu), "mu": list(s_mu)}, sigma)
        factor = max(sigma(s_nu) / nu(s_nu), mu(best) / sigma(best))
        assert result.value >= factor * (1 - 1 / 2.718281828) * sigma(best) - 1e-9
