"""Influence blocking under mutual competition (paper Appendix B.4).

For competitive products (Q-), cross-monotonicity reverses: adding B-seeds
*decreases* sigma_A (Theorem 3).  The appendix notes that the associated
quantity — how much a B-seed set suppresses A's spread —

    suppression(S_B) = sigma_A(S_A, ∅) - sigma_A(S_A, S_B)   >= 0 in Q-

is the objective of influence *blocking* maximization ([5, 13]), framed
there through cross-submodularity of the decrease.  The paper leaves the
problem out of scope; this module implements the objective and a CELF
greedy blocker so the appendix discussion is executable (no approximation
guarantee is claimed — the appendix's Example 5 shows per-world
submodularity can fail in Q-).  Under one-way competition the query
layer additionally answers :class:`~repro.api.queries.BlockingQuery`
with pooled RR-Block suppression sets (:mod:`repro.rrset.rr_block`),
orders of magnitude faster than the MC CELF path; the estimator here
remains the Monte-Carlo ground truth both routes are checked against.

.. deprecated::
    :func:`greedy_blocking` is a thin shim over the declarative query API
    (:class:`~repro.api.queries.BlockingQuery` run on a
    :class:`~repro.api.session.ComICSession`); the CELF core lives in
    :mod:`repro.api.solvers`.  :func:`estimate_suppression` remains the
    canonical objective estimator.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional, Sequence

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.comic import simulate
from repro.models.gaps import GAP
from repro.models.sources import WorldSource
from repro.models.spread import SpreadEstimate, _summarize
from repro.rng import SeedLike, make_rng

import numpy as np


def estimate_suppression(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
    paired: bool = True,
) -> SpreadEstimate:
    """Estimate ``sigma_A(S_A, ∅) - sigma_A(S_A, S_B)`` by Monte Carlo.

    With ``paired=True`` both cascades of a run share one possible world
    (common random numbers), as in
    :func:`~repro.models.spread.estimate_boost`.  Positive values mean
    ``S_B`` blocks A; under Q- the expectation is non-negative
    (cross-monotonicity, Theorem 3).
    """
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        if paired:
            world = WorldSource(gen)
            without_b = simulate(graph, gaps, seeds_a, [], source=world)
            with_b = simulate(graph, gaps, seeds_a, seeds_b, source=world)
        else:
            without_b = simulate(graph, gaps, seeds_a, [], rng=gen)
            with_b = simulate(graph, gaps, seeds_a, seeds_b, rng=gen)
        values[i] = without_b.num_a_adopted - with_b.num_a_adopted
    return _summarize(values)


def greedy_blocking(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    k: int,
    *,
    runs: int = 200,
    rng: SeedLike = None,
    candidates: Optional[Iterable[int]] = None,
) -> list[int]:
    """CELF greedy for influence blocking (deprecated one-shot entry point).

    Requires mutual competition (the objective can be negative otherwise).
    The greedy is a heuristic here — see the module docstring.  Delegates
    to a throwaway :class:`~repro.api.session.ComICSession`.
    """
    warnings.warn(
        "greedy_blocking() is deprecated; use "
        "ComICSession.run(BlockingQuery(...)) from repro.api instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    from repro.api import BlockingQuery, ComICSession

    session = ComICSession(graph, gaps, rng=rng)
    query = BlockingQuery(
        seeds_a=tuple(int(s) for s in seeds_a),
        k=k,
        runs=runs,
        candidates=(
            tuple(int(v) for v in candidates) if candidates is not None else None
        ),
    )
    return session.run(query).seeds
