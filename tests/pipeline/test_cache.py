"""StageCache and input fingerprints: content identity, forgiving loads."""

import json

import numpy as np

from repro.learning import ActionLog
from repro.pipeline import StageCache, fingerprint_episodes, fingerprint_log


def small_log(user=1):
    log = ActionLog()
    log.record(user, "a", "inform", 1.0)
    log.record(user, "a", "rate", 2.0)
    return log


class TestFingerprints:
    def test_log_fingerprint_is_content_addressed(self):
        assert fingerprint_log(small_log()) == fingerprint_log(small_log())
        assert fingerprint_log(small_log(1)) != fingerprint_log(small_log(2))

    def test_log_fingerprint_distinguishes_int_and_str_ids(self):
        assert fingerprint_log(small_log(1)) != fingerprint_log(small_log("1"))

    def test_episode_fingerprint_tracks_content(self):
        eps = [np.array([0, 3, -1], dtype=np.int64)]
        same = [np.array([0, 3, -1], dtype=np.int64)]
        other = [np.array([0, 4, -1], dtype=np.int64)]
        assert fingerprint_episodes(eps) == fingerprint_episodes(same)
        assert fingerprint_episodes(eps) != fingerprint_episodes(other)
        assert fingerprint_episodes(eps) != fingerprint_episodes(eps + same)


class TestStageCache:
    KEY = {"stage": "fit_edges", "graph": "abc", "knob": 3}

    def test_round_trip(self, tmp_path):
        cache = StageCache(tmp_path)
        arrays = {"probabilities": np.linspace(0, 1, 7)}
        extra = {"iterations": 4, "converged": True}
        cache.save(self.KEY, arrays, extra)
        hit = cache.load(self.KEY)
        assert hit is not None
        loaded, loaded_extra = hit
        np.testing.assert_array_equal(
            loaded["probabilities"], arrays["probabilities"]
        )
        assert loaded_extra == extra

    def test_miss_on_absent_entry(self, tmp_path):
        assert StageCache(tmp_path).load(self.KEY) is None

    def test_miss_on_key_mismatch(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.save(self.KEY, {}, {})
        # Forge a digest collision: rename the entry to another key's
        # digest; the stored key no longer matches and must be a miss.
        other = {**self.KEY, "knob": 4}
        cache.entry_dir(self.KEY).rename(cache.entry_dir(other))
        assert cache.load(other) is None

    def test_miss_on_corrupt_array_bytes(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.save(self.KEY, {"probabilities": np.ones(5)}, {})
        npy = cache.entry_dir(self.KEY) / "probabilities.npy"
        raw = bytearray(npy.read_bytes())
        raw[-3] ^= 0xFF
        npy.write_bytes(bytes(raw))
        assert cache.load(self.KEY) is None

    def test_miss_on_corrupt_meta(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.save(self.KEY, {}, {})
        (cache.entry_dir(self.KEY) / "meta.json").write_text("{not json")
        assert cache.load(self.KEY) is None

    def test_save_replaces_existing_entry(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.save(self.KEY, {"x": np.zeros(2)}, {"v": 1})
        cache.save(self.KEY, {"x": np.ones(2)}, {"v": 2})
        arrays, extra = cache.load(self.KEY)
        np.testing.assert_array_equal(arrays["x"], np.ones(2))
        assert extra == {"v": 2}
        # no staging droppings left behind
        assert not list(tmp_path.glob(".staging-*"))

    def test_meta_is_human_readable_json(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.save(self.KEY, {"x": np.zeros(3)}, {"note": "hi"})
        meta = json.loads(
            (cache.entry_dir(self.KEY) / "meta.json").read_text()
        )
        assert meta["key"]["stage"] == "fit_edges"
        assert meta["columns"]["x"]["shape"] == [3]
