"""Tests for experiment presets and scale arithmetic."""

import pytest

from repro.experiments.harness import FULL_SCALE, ExperimentScale
from repro.experiments.tables import (
    CIM_SETTINGS,
    PAPER_LEARNED_PAIRS,
    SIM_SETTINGS,
    SIM_STRESS,
    CIM_STRESS,
)
from repro.experiments.figures import FIG8_CIM, FIG8_SIM


class TestPresets:
    def test_full_scale_covers_all_datasets(self):
        assert set(FULL_SCALE.datasets) == {
            "douban-book", "douban-movie", "flixster", "lastfm"
        }

    def test_full_scale_larger_than_default(self):
        default = ExperimentScale()
        assert FULL_SCALE.scale > default.scale
        assert FULL_SCALE.k > default.k
        assert FULL_SCALE.mc_runs > default.mc_runs


class TestGapSettings:
    def test_sim_settings_match_section_7_1(self):
        assert set(SIM_SETTINGS) == {0.1, 0.3, 0.5}
        for q_a, gaps in SIM_SETTINGS.items():
            assert gaps.q_a == q_a
            assert gaps.q_a_given_b == gaps.q_b_given_a == 0.75
            assert gaps.q_b == 0.5
            assert gaps.is_mutually_complementary

    def test_cim_settings_match_section_7_1(self):
        assert set(CIM_SETTINGS) == {0.1, 0.5, 0.8}
        for q_b, gaps in CIM_SETTINGS.items():
            assert gaps.q_b == q_b
            assert gaps.q_a == 0.1
            assert gaps.q_a_given_b == gaps.q_b_given_a == 0.9
            assert gaps.is_mutually_complementary

    def test_stress_settings_shapes(self):
        for gaps in SIM_STRESS.values():
            assert gaps.q_b_given_a == 1.0
            assert (gaps.q_a, gaps.q_a_given_b) == (0.3, 0.8)
        for gaps in CIM_STRESS.values():
            assert gaps.q_b == 0.1
        for gaps in FIG8_SIM.values():
            assert gaps.q_b_given_a == 0.96
        for gaps in FIG8_CIM.values():
            assert gaps.q_b == 0.1

    def test_learned_pairs_are_paper_values(self):
        flixster = dict(
            (a, gaps) for a, _b, gaps in PAPER_LEARNED_PAIRS["flixster"]
        )
        monster = flixster["Monster Inc."]
        assert monster.as_tuple() == (0.88, 0.92, 0.92, 0.96)
        assert len(PAPER_LEARNED_PAIRS) == 3
        assert all(len(pairs) == 4 for pairs in PAPER_LEARNED_PAIRS.values())
