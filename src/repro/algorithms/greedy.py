"""Monte-Carlo greedy with CELF lazy evaluation — the paper's "Greedy".

Kempe et al.'s greedy algorithm [15] evaluates marginal spread gains by
simulation; CELF (Leskovec et al.) exploits submodularity to skip
re-evaluations whose stale upper bound already loses.  The paper runs this
with 10K-iteration MC as the quality yardstick (§7.3); it is orders of
magnitude slower than GeneralTIM, which Fig. 7(a) (and our reproduction)
quantifies.  In non-submodular GAP regimes CELF's pruning becomes
heuristic, exactly as the paper's use of Greedy+SA does.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.spread import estimate_boost, estimate_spread
from repro.rng import SeedLike, derive_seed, make_rng

#: Objective: maps a seed list to an estimated objective value.
Objective = Callable[[Sequence[int]], float]


def celf_greedy(
    candidates: Iterable[int],
    k: int,
    objective: Objective,
    *,
    base_value: Optional[float] = None,
) -> tuple[list[int], list[float]]:
    """Greedy maximisation of ``objective`` with CELF lazy re-evaluation.

    Returns ``(seeds, objective_trace)`` where ``objective_trace[i]`` is the
    objective value after selecting ``i + 1`` seeds.  ``objective`` is
    re-invoked on candidate unions; it should be deterministic-ish (fixed
    MC seed) for the lazy pruning to behave.
    """
    pool = [int(v) for v in candidates]
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    if k > len(pool):
        raise SeedSetError(f"cannot select {k} seeds from {len(pool)} candidates")
    current_value = objective([]) if base_value is None else float(base_value)
    seeds: list[int] = []
    trace: list[float] = []
    # Max-heap of (-gain, node, evaluated_at_round).
    heap: list[tuple[float, int, int]] = []
    for v in pool:
        gain = objective([v]) - current_value
        heapq.heappush(heap, (-gain, v, 0))
    for round_no in range(1, k + 1):
        while True:
            neg_gain, v, evaluated_at = heapq.heappop(heap)
            if evaluated_at == round_no:
                break
            fresh_gain = objective(seeds + [v]) - current_value
            heapq.heappush(heap, (-fresh_gain, v, round_no))
        seeds.append(v)
        current_value += -neg_gain
        trace.append(current_value)
    return seeds, trace


#: Joint objective for CELF++: ``(seed_list, u, w) -> (f(S + [u]), f(S + [w, u]))``.
#: The whole point of CELF++ is that both values come from *one* pass over
#: the Monte-Carlo samples; callers that cannot share work may fall back to
#: two plain objective calls.
JointObjective = Callable[[Sequence[int], int, int], tuple[float, float]]


def celf_plus_plus_greedy(
    candidates: Iterable[int],
    k: int,
    objective: Objective,
    *,
    joint_objective: Optional[JointObjective] = None,
    base_value: Optional[float] = None,
) -> tuple[list[int], list[float], int]:
    """CELF++ (Goyal, Lu & Lakshmanan, WWW 2011): skip one re-evaluation
    per pick in the common case.

    While re-evaluating a node ``u``, CELF++ also records ``u``'s marginal
    gain assuming the round's current front-runner ``w`` is picked.  If
    ``w`` *is* picked, ``u``'s cached look-ahead is exact for the next
    round and the usual CELF re-evaluation is skipped.  The look-ahead pair
    is obtained through ``joint_objective`` — one shared MC pass in the
    intended use; the default fallback issues two plain calls, preserving
    correctness (identical picks to CELF) if not the savings.

    Returns ``(seeds, objective_trace, re_evaluations)``; the counter —
    heap entries that needed a fresh evaluation — is what the ablation
    bench compares against plain CELF.
    """
    pool = [int(v) for v in candidates]
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    if k > len(pool):
        raise SeedSetError(f"cannot select {k} seeds from {len(pool)} candidates")

    def default_joint(seed_list: Sequence[int], u: int, w: int) -> tuple[float, float]:
        return objective(list(seed_list) + [u]), objective(list(seed_list) + [w, u])

    joint = joint_objective if joint_objective is not None else default_joint
    current_value = objective([]) if base_value is None else float(base_value)
    seeds: list[int] = []
    trace: list[float] = []
    re_evaluations = 0
    # Entries: (-gain, node, evaluated_at_round, front_at_eval, look_ahead_gain)
    # where look_ahead_gain is the node's marginal gain w.r.t.
    # seeds + [front_at_eval] at evaluation time (None when no front).
    heap: list[tuple[float, int, int, Optional[int], Optional[float]]] = []
    for v in pool:
        gain = objective([v]) - current_value
        heapq.heappush(heap, (-gain, v, 0, None, None))

    last_picked: Optional[int] = None
    for round_no in range(1, k + 1):
        while True:
            neg_gain, v, evaluated_at, front_at_eval, look_ahead = heapq.heappop(heap)
            if evaluated_at == round_no:
                break
            if (
                front_at_eval is not None
                and front_at_eval == last_picked
                and evaluated_at == round_no - 1
                and look_ahead is not None
            ):
                # CELF++ shortcut: the look-ahead was computed against
                # exactly the seed set we now have.
                heapq.heappush(heap, (-look_ahead, v, round_no, None, None))
                continue
            re_evaluations += 1
            front = heap[0][1] if heap else None
            if front is None or front == v:
                fresh = objective(seeds + [v])
                heapq.heappush(
                    heap, (-(fresh - current_value), v, round_no, None, None)
                )
                continue
            fresh, with_front = joint(seeds, v, front)
            # `front` is never an already-picked seed (picked entries leave
            # the heap for good), so its value must be queried directly.
            front_value = objective(seeds + [front])
            heapq.heappush(
                heap,
                (
                    -(fresh - current_value), v, round_no,
                    front, with_front - front_value,
                ),
            )
        seeds.append(v)
        last_picked = v
        current_value += -neg_gain
        trace.append(current_value)
    return seeds, trace, re_evaluations


def greedy_selfinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_b: Sequence[int],
    k: int,
    *,
    runs: int = 200,
    rng: SeedLike = None,
    candidates: Optional[Iterable[int]] = None,
) -> list[int]:
    """MC-greedy for SelfInfMax: maximise ``sigma_A(S_A, S_B)`` over A-seeds.

    ``runs`` controls MC accuracy (the paper uses 10K; scale down for
    experimentation).  A fixed per-call seed makes the objective a
    deterministic function of its argument, taming CELF.
    """
    gen = make_rng(rng)
    mc_seed = int(gen.integers(0, 2**31 - 1))
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))

    def objective(seed_list: Sequence[int]) -> float:
        return estimate_spread(
            graph, gaps, seed_list, seeds_b, runs=runs,
            rng=derive_seed(mc_seed, len(seed_list), *map(int, seed_list)),
        ).mean

    seeds, _trace = celf_greedy(pool, k, objective)
    return seeds


def greedy_compinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    k: int,
    *,
    runs: int = 200,
    rng: SeedLike = None,
    candidates: Optional[Iterable[int]] = None,
) -> list[int]:
    """MC-greedy for CompInfMax: maximise the boost over B-seeds."""
    gen = make_rng(rng)
    mc_seed = int(gen.integers(0, 2**31 - 1))
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))

    def objective(seed_list: Sequence[int]) -> float:
        if not seed_list:
            return 0.0
        return estimate_boost(
            graph, gaps, seeds_a, seed_list, runs=runs,
            rng=derive_seed(mc_seed, len(seed_list), *map(int, seed_list)),
        ).mean

    seeds, _trace = celf_greedy(pool, k, objective, base_value=0.0)
    return seeds
