"""Synthetic action-log generation from ground-truth GAPs.

The paper learns GAPs from proprietary Flixster/Douban rating logs; this
module is the offline stand-in (DESIGN.md substitution table).  For each
item pair it simulates a population of users through the *node-level
automaton itself*:

* a user is exposed to each item independently at a uniform random time;
* on exposure to X the NLA fires: adopt with ``q_{X|∅}`` (or ``q_{X|Y}``
  if the other item was already adopted), else suspend/reject;
* adopting one item while suspended on the other triggers reconsideration
  with the paper's ``rho``.

Every exposure is logged as an *inform* event and every adoption as a
*rate* event (epsilon after its trigger, so orderings are strict).  Because
the generator is the NLA, the §7.2 estimator must recover the ground-truth
GAPs within its confidence intervals — the recovery test the paper's real
data cannot provide.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.errors import ActionLogError
from repro.learning.action_log import INFORM, RATE, ActionLog
from repro.models.gaps import GAP
from repro.rng import SeedLike, spawn_rngs

#: Offset between an event and the rating it triggers.
_RATE_DELAY = 1e-6


def _simulate_user(
    log: ActionLog,
    user: Hashable,
    item_a: Hashable,
    item_b: Hashable,
    gaps: GAP,
    t_a: float | None,
    t_b: float | None,
    rng,
) -> None:
    """Run one user's NLA over its exposure timeline and log the events."""
    timeline: list[tuple[float, str]] = []
    if t_a is not None:
        timeline.append((t_a, "a"))
    if t_b is not None:
        timeline.append((t_b, "b"))
    timeline.sort()
    adopted = {"a": False, "b": False}
    suspended = {"a": False, "b": False}
    items = {"a": item_a, "b": item_b}
    q_uncond = {"a": gaps.q_a, "b": gaps.q_b}
    q_cond = {"a": gaps.q_a_given_b, "b": gaps.q_b_given_a}
    rho = {"a": gaps.rho_a, "b": gaps.rho_b}

    for time, which in timeline:
        other = "b" if which == "a" else "a"
        log.record(user, items[which], INFORM, time)
        q = q_cond[which] if adopted[other] else q_uncond[which]
        if rng.random() < q:
            adopted[which] = True
            log.record(user, items[which], RATE, time + _RATE_DELAY)
            if suspended[other] and rng.random() < rho[other]:
                adopted[other] = True
                log.record(user, items[other], RATE, time + 2 * _RATE_DELAY)
                suspended[other] = False
        elif not adopted[other]:
            suspended[which] = True
        # else: rejected — terminal either way for this two-event timeline.


def generate_synthetic_log(
    item_pairs: Sequence[tuple[Hashable, Hashable, GAP]],
    *,
    num_users: int = 5000,
    exposure_a: float = 0.8,
    exposure_b: float = 0.8,
    rng: SeedLike = None,
) -> ActionLog:
    """Generate an action log for the given ``(item_a, item_b, gaps)`` pairs.

    Each pair gets its own disjoint user population of ``num_users`` users
    (user ids are ``(pair_index, i)``), exposed to A and B independently
    with the given probabilities at uniform times in [0, 1].

    Each pair simulates from its own child stream spawned from ``rng``
    (the RR-layer convention), so a pair's log is the same regardless of
    where it sits in ``item_pairs``.
    """
    if not 0.0 <= exposure_a <= 1.0 or not 0.0 <= exposure_b <= 1.0:
        raise ActionLogError("exposure probabilities must lie in [0, 1]")
    if num_users < 1:
        raise ActionLogError(f"num_users must be positive, got {num_users}")
    streams = spawn_rngs(rng, len(item_pairs))
    log = ActionLog()
    for pair_index, (item_a, item_b, gaps) in enumerate(item_pairs):
        if item_a == item_b:
            raise ActionLogError(f"pair {pair_index}: items must differ")
        gen = streams[pair_index]
        for i in range(num_users):
            t_a = float(gen.random()) if gen.random() < exposure_a else None
            t_b = float(gen.random()) if gen.random() < exposure_b else None
            if t_a is None and t_b is None:
                continue
            _simulate_user(
                log, (pair_index, i), item_a, item_b, gaps, t_a, t_b, gen
            )
    return log
