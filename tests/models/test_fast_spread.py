"""Validation of the vectorised one-way-complementarity estimator."""

import numpy as np
import pytest

from repro.errors import RegimeError, SeedSetError
from repro.graph import DiGraph, path_digraph, power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP, estimate_spread, exact_spread
from repro.models.fast_spread import fast_estimate_spread_one_way, sample_one_way_outcome
from repro.rng import make_rng


class TestRegime:
    def test_rejects_two_way_complementarity(self):
        with pytest.raises(RegimeError):
            fast_estimate_spread_one_way(
                path_digraph(3), GAP(0.3, 0.8, 0.5, 0.9), [0], [1]
            )

    def test_rejects_competition(self):
        with pytest.raises(RegimeError):
            fast_estimate_spread_one_way(
                path_digraph(3), GAP(0.8, 0.3, 0.5, 0.5), [0], [1]
            )

    def test_rejects_bad_item(self):
        with pytest.raises(ValueError):
            fast_estimate_spread_one_way(
                path_digraph(3), GAP(0.3, 0.8, 0.5, 0.5), [0], [1], item="c"
            )

    def test_rejects_bad_seed(self):
        with pytest.raises(SeedSetError):
            fast_estimate_spread_one_way(
                path_digraph(3), GAP(0.3, 0.8, 0.5, 0.5), [9], [1]
            )


class TestCorrectness:
    @pytest.mark.parametrize(
        "gaps",
        [
            GAP(0.3, 0.8, 0.5, 0.5),
            GAP(0.0, 1.0, 0.7, 0.7),
            GAP(0.6, 0.6, 0.4, 0.4),  # full indifference
        ],
    )
    def test_matches_exact_oracle(self, gaps):
        graph = DiGraph.from_edges(
            5,
            [(0, 1, 0.7), (0, 2, 0.5), (1, 3, 0.8), (2, 3, 0.6), (3, 4, 0.9)],
        )
        runs = 5000
        exact_a, exact_b = exact_spread(graph, gaps, [0], [2])
        est_a = fast_estimate_spread_one_way(
            graph, gaps, [0], [2], runs=runs, rng=0
        )
        est_b = fast_estimate_spread_one_way(
            graph, gaps, [0], [2], runs=runs, rng=1, item="b"
        )
        assert est_a.mean == pytest.approx(exact_a, abs=5 * est_a.stderr + 1e-9)
        assert est_b.mean == pytest.approx(exact_b, abs=5 * est_b.stderr + 1e-9)

    def test_matches_general_engine_on_network(self):
        graph = weighted_cascade_probabilities(power_law_digraph(200, rng=4))
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        seeds_a, seeds_b = [0, 1, 2], [3, 4]
        fast = fast_estimate_spread_one_way(
            graph, gaps, seeds_a, seeds_b, runs=1500, rng=5
        )
        slow = estimate_spread(graph, gaps, seeds_a, seeds_b, runs=1500, rng=6)
        tolerance = 5 * (fast.stderr + slow.stderr)
        assert fast.mean == pytest.approx(slow.mean, abs=tolerance)

    def test_dual_seeds_and_overlap(self):
        graph = path_digraph(4, probability=0.8)
        gaps = GAP(0.2, 0.9, 0.6, 0.6)
        exact_a, _ = exact_spread(graph, gaps, [0], [0])
        est = fast_estimate_spread_one_way(graph, gaps, [0], [0], runs=5000, rng=7)
        assert est.mean == pytest.approx(exact_a, abs=5 * est.stderr + 1e-9)

    def test_edge_coin_shared_between_items(self):
        """One liveness coin per edge: on a p=0.5 path seeded at the head
        with both items (full indifference, q=1), the two adopter sets must
        coincide in every sampled world."""
        graph = path_digraph(4, probability=0.5)
        gaps = GAP.independent(1.0, 1.0)
        gen = make_rng(8)
        seeds = np.array([0])
        for _ in range(200):
            a_adopted, b_adopted = sample_one_way_outcome(
                graph, gaps, seeds, seeds, gen
            )
            assert np.array_equal(a_adopted, b_adopted)

    def test_empty_seeds(self):
        graph = path_digraph(3)
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        est = fast_estimate_spread_one_way(graph, gaps, [], [], runs=20, rng=9)
        assert est.mean == 0.0
