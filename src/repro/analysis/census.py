"""Joint-state census of a finished Com-IC cascade.

The Com-IC NLA leaves every node in one of four states per item; Appendix
A.1 of the paper proves five joint states are unreachable from the initial
(idle, idle) configuration.  :func:`joint_state_census` counts the final
population per joint state and :func:`unreachable_state_violations`
asserts the appendix claim on real outcomes (our model tests use it as an
executable invariant).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.models.comic import DiffusionOutcome
from repro.models.states import ItemState, UNREACHABLE_JOINT_STATES

JointState = Tuple[ItemState, ItemState]


def joint_state_census(outcome: DiffusionOutcome) -> Dict[JointState, int]:
    """Count nodes per final joint (A-state, B-state).

    All 16 combinations are present as keys (zero counts included), which
    keeps downstream aggregation code free of ``get`` defaults.
    """
    census: Dict[JointState, int] = {
        (sa, sb): 0 for sa in ItemState for sb in ItemState
    }
    state_a = np.asarray(outcome.state_a)
    state_b = np.asarray(outcome.state_b)
    # 4x4 contingency table in one pass.
    joint = state_a.astype(np.int64) * 4 + state_b.astype(np.int64)
    counts = np.bincount(joint, minlength=16)
    for code in range(16):
        census[(ItemState(code // 4), ItemState(code % 4))] = int(counts[code])
    return census


def unreachable_state_violations(outcome: DiffusionOutcome) -> Dict[JointState, int]:
    """Nodes found in states that Appendix A.1 proves unreachable.

    Returns the (should-be-empty) subset of the census covering the five
    unreachable joint states; any non-zero entry indicates a model bug.
    """
    census = joint_state_census(outcome)
    return {
        joint: census[joint]
        for joint in UNREACHABLE_JOINT_STATES
        if census[joint] > 0
    }


def cascade_depth(outcome: DiffusionOutcome, *, item: str = "a") -> int:
    """Latest adoption step of ``item`` (0 when only seeds adopted, -1 when
    nobody adopted it at all)."""
    if item not in ("a", "b"):
        raise ValueError(f"item must be 'a' or 'b', got {item!r}")
    times = outcome.adopted_a_at if item == "a" else outcome.adopted_b_at
    adopted = times[times >= 0]
    if adopted.size == 0:
        return -1
    return int(adopted.max())
