"""RR-set-based objective estimation (the other use of Definition 2).

Activation equivalence states ``sigma(S) = n * P[S hits a random RR-set]``
— which estimates the objective *without running forward cascades*: draw
RR-sets, count intersections.  Unlike Monte-Carlo simulation the cost is
independent of ``|S|``, and one RR-set pool can evaluate many candidate
seed sets, which is exactly how TIM/IMM's greedy sees the objective.  For
RR-SIM/RR-CIM generators the estimated quantity is the SelfInfMax spread
/ CompInfMax boost of the corresponding regime.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.models.spread import SpreadEstimate
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator


def rr_estimate_objective(
    generator: RRSetGenerator,
    seeds: Iterable[int],
    *,
    samples: int = 10_000,
    rng: SeedLike = None,
) -> SpreadEstimate:
    """Estimate the generator's objective at ``seeds`` from fresh RR-sets.

    Returns a :class:`~repro.models.spread.SpreadEstimate` whose ``std``
    is the binomial per-sample deviation scaled by ``n`` (so
    ``stderr`` keeps its usual meaning).
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    gen = make_rng(rng)
    seed_set = {int(v) for v in seeds}
    n = generator.graph.num_nodes
    hits = 0
    for _ in range(samples):
        rr = generator.generate(rng=gen)
        if seed_set.intersection(rr.tolist()):
            hits += 1
    fraction = hits / samples
    mean = n * fraction
    std = n * math.sqrt(fraction * (1.0 - fraction))
    return SpreadEstimate(mean=mean, std=std, runs=samples)


def rr_estimate_many(
    generator: RRSetGenerator,
    seed_sets: Sequence[Iterable[int]],
    *,
    samples: int = 10_000,
    rng: SeedLike = None,
) -> list[SpreadEstimate]:
    """Evaluate several candidate seed sets against *one* shared RR pool.

    Sharing the pool makes the estimates positively correlated — ideal for
    ranking candidates (the TIM-style use) because the common sampling
    noise cancels in comparisons.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    gen = make_rng(rng)
    candidates = [{int(v) for v in s} for s in seed_sets]
    n = generator.graph.num_nodes
    hits = [0] * len(candidates)
    for _ in range(samples):
        rr = set(generator.generate(rng=gen).tolist())
        for index, seed_set in enumerate(candidates):
            if seed_set & rr:
                hits[index] += 1
    results = []
    for count in hits:
        fraction = count / samples
        results.append(SpreadEstimate(
            mean=n * fraction,
            std=n * math.sqrt(fraction * (1.0 - fraction)),
            runs=samples,
        ))
    return results
