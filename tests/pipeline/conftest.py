"""Shared fixtures: one small synthetic world, cold + warm pipeline runs.

The expensive part (EM over episodes, the stage-3 query) runs once per
session; tests that only *read* the outcome (runner assertions, debug-DB
contents, the docs SQL cookbook) share the ``pipeline_runs`` fixture
instead of re-running the pipeline.
"""

import pytest

from repro.api import EngineConfig, SelfInfMaxQuery
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.learning import generate_ic_episodes, generate_synthetic_log
from repro.models import GAP
from repro.pipeline import PipelineConfig, run_pipeline

#: strictly mutually complementary so the fitted GAP stays inside the
#: SelfInfMax regime (Q+) despite estimation noise at small sample sizes.
TRUTH = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.65)


def make_config(**overrides) -> PipelineConfig:
    """The suite's baseline config; override per test."""
    base = dict(
        item_a="a",
        item_b="b",
        edge_backend="em",
        em_max_iterations=25,
        em_initial=0.1,
        queries=(SelfInfMaxQuery(seeds_b=(0,), k=2, evaluation_runs=40),),
        engine=EngineConfig(max_rr_sets=2000),
        seed=11,
    )
    base.update(overrides)
    return PipelineConfig(**base)


@pytest.fixture(scope="session")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(80, rng=3))


@pytest.fixture(scope="session")
def log():
    return generate_synthetic_log([("a", "b", TRUTH)], num_users=800, rng=5)


@pytest.fixture(scope="session")
def episodes(graph):
    return generate_ic_episodes(graph, 50, seeds_per_episode=2, rng=9)


@pytest.fixture(scope="session")
def pipeline_runs(graph, log, episodes, tmp_path_factory):
    """(workdir, cold result, warm result) for one shared working dir."""
    workdir = tmp_path_factory.mktemp("pipeline-shared")
    config = make_config()
    cold = run_pipeline(
        graph, log, config, episodes=episodes, workdir=workdir, truth=TRUTH
    )
    warm = run_pipeline(
        graph, log, config, episodes=episodes, workdir=workdir, truth=TRUTH
    )
    return workdir, cold, warm
