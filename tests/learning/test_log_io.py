"""Tests for action-log and episode persistence."""

import numpy as np
import pytest

from repro.errors import ActionLogError, EstimationError
from repro.graph import path_digraph
from repro.learning import (
    ActionLog,
    generate_ic_episodes,
    load_action_log,
    load_episodes,
    save_action_log,
    save_episodes,
)


def sample_log() -> ActionLog:
    log = ActionLog()
    log.record(1, "movie-a", "inform", 1.0)
    log.record(1, "movie-a", "rate", 2.0)
    log.record(2, "movie-a", "rate", 3.0)        # rate without prior inform
    log.record(2, "movie-b", "inform", 4.0)      # inform never rated
    log.record(1, "movie-a", "rate", 9.0)        # late duplicate, absorbed
    return log


class TestActionLogRoundTrip:
    def test_queries_preserved(self, tmp_path):
        log = sample_log()
        path = tmp_path / "log.tsv"
        save_action_log(log, path, comment="fixture")
        loaded = load_action_log(path)
        assert loaded.users == log.users
        assert loaded.items == log.items
        for user in log.users:
            for item in log.items:
                assert loaded.rate_time(user, item) == log.rate_time(user, item)
                assert loaded.inform_time(user, item) == log.inform_time(user, item)

    def test_integer_identifiers_restored_as_int(self, tmp_path):
        log = sample_log()
        path = tmp_path / "log.tsv"
        save_action_log(log, path)
        loaded = load_action_log(path)
        assert 1 in loaded.users          # int, not "1"
        assert "movie-a" in loaded.items  # str stays str

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text("# header\n\nrate\t1.5\t7\tbook\n", encoding="utf-8")
        loaded = load_action_log(path)
        assert loaded.rate_time(7, "book") == 1.5

    @pytest.mark.parametrize("line", [
        "rate\t1.0\tonly-three",
        "watch\t1.0\tu\ti",
        "rate\tnot-a-time\tu\ti",
    ])
    def test_malformed_lines_rejected(self, tmp_path, line):
        path = tmp_path / "bad.tsv"
        path.write_text(line + "\n", encoding="utf-8")
        with pytest.raises(ActionLogError):
            load_action_log(path)

    def test_tab_in_identifier_rejected(self, tmp_path):
        log = ActionLog()
        log.record("evil\tuser", "item", "rate", 1.0)
        with pytest.raises(ActionLogError):
            save_action_log(log, tmp_path / "x.tsv")


class TestCanonicalEvents:
    def test_rebuild_equivalence(self):
        log = sample_log()
        rebuilt = ActionLog(log.canonical_events())
        assert rebuilt.users == log.users
        assert rebuilt.rate_time(1, "movie-a") == 2.0
        assert rebuilt.inform_time(1, "movie-a") == 1.0

    def test_inform_at_rate_time_not_duplicated(self):
        log = ActionLog()
        log.record(5, "x", "rate", 2.0)
        events = list(log.canonical_events())
        assert len(events) == 1
        assert events[0].action == "rate"


class TestEpisodeRoundTrip:
    def test_round_trip(self, tmp_path):
        graph = path_digraph(5, probability=0.7)
        episodes = generate_ic_episodes(graph, 12, rng=3)
        path = tmp_path / "episodes.npz"
        save_episodes(episodes, path)
        loaded = load_episodes(path)
        assert len(loaded) == 12
        assert all(np.array_equal(a, b) for a, b in zip(episodes, loaded))

    def test_empty_corpus(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_episodes([], path)
        assert load_episodes(path) == []

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(EstimationError):
            save_episodes(
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)],
                tmp_path / "bad.npz",
            )

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(EstimationError):
            load_episodes(path)


class TestLogFormatError:
    """Malformed files raise LogFormatError with the offending line number."""

    def test_wrong_field_count_names_line(self, tmp_path):
        from repro.errors import LogFormatError

        path = tmp_path / "bad.tsv"
        path.write_text(
            "# header\nrate\t1.0\tu\ti\nrate\t2.0\tonly-three\n",
            encoding="utf-8",
        )
        with pytest.raises(LogFormatError) as excinfo:
            load_action_log(path)
        assert excinfo.value.line_no == 3
        assert excinfo.value.path == str(path)
        assert f"{path}:3:" in str(excinfo.value)

    def test_unknown_action_names_line(self, tmp_path):
        from repro.errors import LogFormatError

        path = tmp_path / "bad.tsv"
        path.write_text("watch\t1.0\tu\ti\n", encoding="utf-8")
        with pytest.raises(LogFormatError) as excinfo:
            load_action_log(path)
        assert excinfo.value.line_no == 1

    def test_bad_timestamp_names_line(self, tmp_path):
        from repro.errors import LogFormatError

        path = tmp_path / "bad.tsv"
        path.write_text("rate\tsoon\tu\ti\n", encoding="utf-8")
        with pytest.raises(LogFormatError) as excinfo:
            load_action_log(path)
        assert excinfo.value.line_no == 1 and "timestamp" in str(excinfo.value)

    def test_non_finite_timestamp_wrapped_with_line(self, tmp_path):
        from repro.errors import LogFormatError

        path = tmp_path / "bad.tsv"
        path.write_text("rate\tinf\tu\ti\n", encoding="utf-8")
        with pytest.raises(LogFormatError) as excinfo:
            load_action_log(path)
        assert excinfo.value.line_no == 1

    def test_is_an_action_log_error(self):
        from repro.errors import LogFormatError

        err = LogFormatError("log.tsv", 7, "boom")
        assert isinstance(err, ActionLogError)
        assert (err.path, err.line_no) == ("log.tsv", 7)


class TestIdentifierEdgeCases:
    def test_unicode_identifiers_round_trip(self, tmp_path):
        log = ActionLog()
        log.record("ユーザー", "фильм", "inform", 1.0)
        log.record("ユーザー", "фильм", "rate", 2.0)
        path = tmp_path / "log.tsv"
        save_action_log(log, path)
        loaded = load_action_log(path)
        assert "ユーザー" in loaded.users
        assert loaded.rate_time("ユーザー", "фильм") == 2.0

    def test_mixed_int_and_str_users_round_trip(self, tmp_path):
        log = ActionLog()
        log.record(1, "a", "rate", 1.0)
        log.record("u-3", "a", "rate", 3.0)
        path = tmp_path / "log.tsv"
        save_action_log(log, path)
        loaded = load_action_log(path)
        assert loaded.rate_time(1, "a") == 1.0
        assert loaded.rate_time("u-3", "a") == 3.0
        assert "u-3" in loaded.users and 1 in loaded.users

    @pytest.mark.parametrize("bad", ["new\nline", "carriage\rreturn"])
    def test_newlines_in_identifiers_rejected(self, tmp_path, bad):
        log = ActionLog()
        log.record(bad, "item", "rate", 1.0)
        with pytest.raises(ActionLogError):
            save_action_log(log, tmp_path / "x.tsv")
