"""Tests for the flat RR-set pool (CSR-of-sets storage)."""

import numpy as np
import pytest

from repro.rrset import RRSetPool
from repro.rrset.pool import expand_csr, flatten_members


class TestAppend:
    def test_append_and_getitem(self):
        pool = RRSetPool(10)
        pool.append(np.array([1, 2, 3]))
        pool.append(np.array([7]))
        pool.append(np.array([], dtype=np.int64))
        assert len(pool) == 3
        assert pool[0].tolist() == [1, 2, 3]
        assert pool[1].tolist() == [7]
        assert pool[2].tolist() == []
        assert pool[-1].tolist() == []
        assert pool.total_nodes == 4

    def test_growth_beyond_initial_capacity(self):
        pool = RRSetPool(100, node_capacity=2, set_capacity=1)
        sets = [np.arange(i % 5) for i in range(300)]
        pool.extend(sets)
        assert len(pool) == 300
        for expected, got in zip(sets, pool):
            assert got.tolist() == expected.tolist()

    def test_append_flat_matches_append(self):
        a = RRSetPool(20)
        b = RRSetPool(20)
        sets = [np.array([1, 2]), np.array([], dtype=np.int64), np.array([5, 6, 7])]
        a.extend(sets)
        b.append_flat(np.array([1, 2, 5, 6, 7]), np.array([2, 0, 3]))
        assert a.indptr.tolist() == b.indptr.tolist()
        assert a.nodes.tolist() == b.nodes.tolist()

    def test_append_flat_length_mismatch_rejected(self):
        pool = RRSetPool(5)
        with pytest.raises(ValueError):
            pool.append_flat(np.array([1, 2]), np.array([3]))

    def test_from_sets_round_trip(self):
        sets = [np.array([0, 4]), np.array([2]), np.array([1, 3, 4])]
        pool = RRSetPool.from_sets(5, sets)
        assert [s.tolist() for s in pool.to_list()] == [s.tolist() for s in sets]
        assert all(s.dtype == np.int64 for s in pool.to_list())

    def test_index_out_of_range(self):
        pool = RRSetPool.from_sets(5, [np.array([1])])
        with pytest.raises(IndexError):
            pool[1]
        with pytest.raises(IndexError):
            pool[-2]


class TestKernels:
    def test_coverage_counts(self):
        pool = RRSetPool.from_sets(4, [np.array([0, 1]), np.array([1, 2]), np.array([1])])
        assert pool.coverage_counts().tolist() == [1, 3, 1, 0]

    def test_set_ids_and_lengths(self):
        pool = RRSetPool.from_sets(9, [np.array([0, 1]), np.array([], dtype=int), np.array([8])])
        assert pool.lengths.tolist() == [2, 0, 1]
        assert pool.set_ids().tolist() == [0, 0, 2]

    def test_intersects(self):
        pool = RRSetPool.from_sets(5, [np.array([0, 1]), np.array([2]), np.array([], dtype=int)])
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        assert pool.intersects(mask).tolist() == [False, True, False]

    def test_intersects_shape_validated(self):
        pool = RRSetPool.from_sets(5, [np.array([0])])
        with pytest.raises(ValueError):
            pool.intersects(np.zeros(4, dtype=bool))

    def test_widths(self):
        in_degrees = np.array([3, 1, 0, 2])
        pool = RRSetPool.from_sets(4, [np.array([0, 3]), np.array([2])])
        assert pool.widths(in_degrees).tolist() == [5, 0]

    def test_widths_ranged_matches_full_slice(self):
        in_degrees = np.array([3, 1, 0, 2, 7])
        pool = RRSetPool.from_sets(
            5,
            [np.array([0, 3]), np.array([2]), np.array([], dtype=int),
             np.array([4, 1]), np.array([4])],
        )
        full = pool.widths(in_degrees)
        for start in range(len(pool) + 1):
            for stop in range(start, len(pool) + 1):
                ranged = pool.widths(in_degrees, start=start, stop=stop)
                assert ranged.tolist() == full[start:stop].tolist(), (start, stop)

    def test_widths_range_validated(self):
        pool = RRSetPool.from_sets(3, [np.array([0])])
        with pytest.raises(ValueError):
            pool.widths(np.zeros(3), start=2)
        with pytest.raises(ValueError):
            pool.widths(np.zeros(3), start=-1)

    def test_prefix_view_matches_leading_sets(self):
        sets = [np.array([0, 3]), np.array([2]), np.array([1, 4])]
        pool = RRSetPool.from_sets(5, sets)
        view = pool.prefix(2)
        assert len(view) == 2
        assert view.total_nodes == 3
        assert [s.tolist() for s in view] == [[0, 3], [2]]
        assert view.coverage_counts().tolist() == [1, 0, 1, 1, 0]
        # Zero-copy: the view shares the parent's buffers.
        assert view.nodes.base is pool.nodes.base
        with pytest.raises(ValueError):
            pool.prefix(4)
        with pytest.raises(ValueError):
            pool.prefix(-1)

    def test_prefix_view_is_read_only(self):
        pool = RRSetPool.from_sets(5, [np.array([0, 3]), np.array([2])])
        view = pool.prefix(1)
        with pytest.raises(ValueError, match="read-only prefix view"):
            view.append(np.array([4]))
        with pytest.raises(ValueError, match="read-only prefix view"):
            view.append_flat(np.array([4], dtype=np.int32), np.array([1]))
        # The parent stays writable and uncorrupted.
        pool.append(np.array([4]))
        assert [s.tolist() for s in pool] == [[0, 3], [2], [4]]

    def test_memory_accounting(self):
        pool = RRSetPool(10, node_capacity=100, set_capacity=10)
        pool.append(np.array([1, 2, 3]))
        assert pool.nbytes == 3 * 4 + 2 * 8
        assert pool.capacity_bytes >= pool.nbytes


class TestValidation:
    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            RRSetPool(-1)

    def test_int32_ceiling_enforced(self):
        with pytest.raises(ValueError):
            RRSetPool(2**31)


class TestHelpers:
    def test_expand_csr(self):
        # CSR with rows [0: (a,b)], [1: ()], [2: (c)]
        indptr = np.array([0, 2, 2, 3])
        reps, flat = expand_csr(indptr, np.array([2, 0]))
        assert reps.tolist() == [0, 1, 1]
        assert flat.tolist() == [2, 0, 1]

    def test_expand_csr_empty(self):
        reps, flat = expand_csr(np.array([0, 0]), np.array([0]))
        assert reps.size == 0 and flat.size == 0

    def test_flatten_members(self):
        # Level fragments: level 0 puts node 9 in set 1 and node 3 in set 0;
        # level 1 adds node 4 to set 1.
        nodes, lengths = flatten_members(
            [np.array([9, 3]), np.array([4])],
            [np.array([1, 0]), np.array([1])],
            count=3,
        )
        assert lengths.tolist() == [1, 2, 0]
        assert nodes.tolist() == [3, 9, 4]

    def test_flatten_members_empty(self):
        nodes, lengths = flatten_members([], [], count=2)
        assert nodes.size == 0
        assert lengths.tolist() == [0, 0]


class TestChunkCoinMemo:
    def test_memoisation_across_calls(self):
        from repro.rng import make_rng
        from repro.rrset.pool import ChunkCoinMemo

        gen = make_rng(0)
        memo = ChunkCoinMemo()
        keys = np.arange(50, dtype=np.int64)
        probs = np.full(50, 0.5)
        first = memo.lookup_or_draw(keys, probs, gen)
        # Replays must match the first draw, in any order and any subset.
        replay = memo.lookup_or_draw(keys[::-1].copy(), probs, gen)
        assert replay[::-1].tolist() == first.tolist()
        subset = memo.lookup_or_draw(keys[10:20], probs[10:20], gen)
        assert subset.tolist() == first[10:20].tolist()
        assert memo.size == 50

    def test_duplicate_keys_within_one_call(self):
        from repro.rng import make_rng
        from repro.rrset.pool import ChunkCoinMemo

        gen = make_rng(3)
        memo = ChunkCoinMemo()
        keys = np.array([7, 7, 7, 2, 2, 9], dtype=np.int64)
        out = memo.lookup_or_draw(keys, np.full(6, 0.5), gen)
        assert out[0] == out[1] == out[2]
        assert out[3] == out[4]
        assert memo.size == 3

    def test_record_then_lookup(self):
        from repro.rng import make_rng
        from repro.rrset.pool import ChunkCoinMemo

        gen = make_rng(1)
        memo = ChunkCoinMemo()
        memo.record(np.array([4, 8], dtype=np.int64), np.array([True, False]))
        memo.record(np.array([1], dtype=np.int64), np.array([True]))
        out = memo.lookup_or_draw(
            np.array([1, 4, 8], dtype=np.int64), np.full(3, 0.5), gen
        )
        assert out.tolist() == [True, True, False]
        # A lookup miss after consolidation lands in the overlay and is
        # itself memoised.
        miss = memo.lookup_or_draw(np.array([99], dtype=np.int64), np.array([0.5]), gen)
        again = memo.lookup_or_draw(np.array([99], dtype=np.int64), np.array([0.5]), gen)
        assert miss.tolist() == again.tolist()
        assert memo.size == 4

    def test_probability_extremes(self):
        from repro.rng import make_rng
        from repro.rrset.pool import ChunkCoinMemo

        gen = make_rng(2)
        memo = ChunkCoinMemo()
        keys = np.arange(20, dtype=np.int64)
        probs = np.where(keys % 2 == 0, 1.0, 0.0)
        out = memo.lookup_or_draw(keys, probs, gen)
        assert out.tolist() == (keys % 2 == 0).tolist()


class TestUniqueInverse:
    def test_roundtrip(self):
        from repro.rrset.pool import unique_inverse

        keys = np.array([5, 1, 5, 9, 1, 1], dtype=np.int64)
        unique, inverse = unique_inverse(keys)
        assert unique.tolist() == [1, 5, 9]
        assert unique[inverse].tolist() == keys.tolist()

    def test_empty(self):
        from repro.rrset.pool import unique_inverse

        unique, inverse = unique_inverse(np.empty(0, dtype=np.int64))
        assert unique.size == 0 and inverse.size == 0


class TestFromFlat:
    def test_adopts_arrays_without_copy(self):
        nodes = np.array([1, 2, 0, 4], dtype=np.int32)
        indptr = np.array([0, 2, 2, 4], dtype=np.int64)
        pool = RRSetPool.from_flat(5, nodes, indptr)
        assert len(pool) == 3
        assert [s.tolist() for s in pool] == [[1, 2], [], [0, 4]]
        assert pool.nodes.base is nodes or pool.nodes is nodes

    def test_adopted_pool_grows_by_reallocating(self):
        nodes = np.array([1, 2], dtype=np.int32)
        nodes.setflags(write=False)  # simulates a read-only mmap column
        indptr = np.array([0, 2], dtype=np.int64)
        indptr.setflags(write=False)
        pool = RRSetPool.from_flat(5, nodes, indptr)
        pool.append(np.array([], dtype=np.int64))  # zero-length write guard
        pool.append(np.array([3, 4]))
        assert [s.tolist() for s in pool] == [[1, 2], [], [3, 4]]
        assert nodes.tolist() == [1, 2]  # the adopted column is untouched

    def test_adopted_pool_tolerates_empty_bulk_appends(self):
        """Zero-set appends must no-op even on read-only adopted buffers."""
        nodes = np.array([1, 2], dtype=np.int32)
        nodes.setflags(write=False)
        indptr = np.array([0, 2], dtype=np.int64)
        indptr.setflags(write=False)
        pool = RRSetPool.from_flat(5, nodes, indptr)
        pool.append_flat(
            np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64)
        )
        pool.extend_pool(RRSetPool(5))  # empty shard fold-in
        assert len(pool) == 1 and [s.tolist() for s in pool] == [[1, 2]]

    def test_validation_rejects_bad_csr(self):
        good_nodes = np.array([1], dtype=np.int32)
        with pytest.raises(ValueError, match="int32"):
            RRSetPool.from_flat(
                5, np.array([1], dtype=np.int64), np.array([0, 1], dtype=np.int64)
            )
        with pytest.raises(ValueError, match="run from 0"):
            RRSetPool.from_flat(5, good_nodes, np.array([1, 1], dtype=np.int64))
        with pytest.raises(ValueError, match="non-decreasing"):
            RRSetPool.from_flat(
                5,
                np.array([1, 2], dtype=np.int32),
                np.array([0, 2, 1, 2], dtype=np.int64),
            )
        with pytest.raises(ValueError, match="lie in"):
            RRSetPool.from_flat(
                2, np.array([7], dtype=np.int32), np.array([0, 1], dtype=np.int64)
            )


class TestMergeKernel:
    def rand_pool(self, seed, num_nodes=20, sets=15):
        gen = np.random.default_rng(seed)
        pool = RRSetPool(num_nodes)
        for _ in range(sets):
            pool.append(gen.integers(0, num_nodes, size=int(gen.integers(0, 5))))
        return pool

    def test_merge_equals_sequential_extend(self):
        pools = [self.rand_pool(s) for s in range(4)]
        merged = RRSetPool.merge(pools)
        sequential = RRSetPool(20)
        for pool in pools:
            for rr_set in pool:
                sequential.append(rr_set)
        assert np.array_equal(merged.nodes, sequential.nodes)
        assert np.array_equal(merged.indptr, sequential.indptr)
        assert len(merged) == sum(len(p) for p in pools)

    def test_generator_shards_merge_like_one_batch(self):
        """Fixed RNG: merging shard pools == topping up one pool."""
        from repro.graph import power_law_digraph, weighted_cascade_probabilities
        from repro.rrset import RRICGenerator

        graph = weighted_cascade_probabilities(power_law_digraph(120, rng=4))
        generator = RRICGenerator(graph)
        shard_seeds = [11, 22, 33]
        shards = [
            generator.generate_batch(40, rng=np.random.default_rng(s))
            for s in shard_seeds
        ]
        merged = RRSetPool.merge(shards)
        sequential = RRSetPool(graph.num_nodes)
        for s in shard_seeds:
            generator.generate_batch(
                40, rng=np.random.default_rng(s), out=sequential
            )
        assert np.array_equal(merged.nodes, sequential.nodes)
        assert np.array_equal(merged.indptr, sequential.indptr)

    def test_merge_includes_empty_and_prefix_pools(self):
        pool = self.rand_pool(7)
        merged = RRSetPool.merge([RRSetPool(20), pool.prefix(3), pool])
        assert len(merged) == 3 + len(pool)
        assert [s.tolist() for s in merged][:3] == [
            s.tolist() for s in pool.prefix(3)
        ]

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError, match="node universe"):
            RRSetPool.merge([RRSetPool(5), RRSetPool(6)])
        with pytest.raises(ValueError, match="node universe"):
            RRSetPool(5).extend_pool(RRSetPool(6))
        with pytest.raises(ValueError, match="at least one"):
            RRSetPool.merge([])

    def test_extend_pool_into_warm_pool(self):
        base = self.rand_pool(1)
        extra = self.rand_pool(2)
        expect = [s.tolist() for s in base] + [s.tolist() for s in extra]
        base.extend_pool(extra)
        assert [s.tolist() for s in base] == expect
        assert base.indptr[0] == 0
