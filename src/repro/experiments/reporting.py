"""Plain-text rendering of regenerated tables and figures."""

from __future__ import annotations

import os
from typing import Iterable, Union

from repro.experiments.harness import TableResult

PathLike = Union[str, os.PathLike]


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(result: TableResult) -> str:
    """Render a :class:`TableResult` as a GitHub-style markdown table."""
    header = [str(c) for c in result.columns]
    body = [[_format_cell(row.get(c)) for c in result.columns] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def fmt_row(cells: list[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [f"### {result.title}", ""]
    lines.append(fmt_row(header))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(r) for r in body)
    if result.notes:
        lines.extend(["", f"_{result.notes}_"])
    lines.append("")
    return "\n".join(lines)


def save_results(results: Iterable[TableResult], path: PathLike) -> None:
    """Write rendered tables to a markdown file."""
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(render_table(result))
            handle.write("\n")


def render_series(
    x: Iterable[float],
    series: dict[str, Iterable[float]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
) -> str:
    """Render one or more y-series against a shared x-axis as ASCII art.

    A dependency-free stand-in for the paper's figure plots: each series
    gets a marker character; points are binned onto a ``width x height``
    character grid with the y-range annotated.  Intended for terminal
    inspection of figure runners, not publication graphics.
    """
    xs = [float(v) for v in x]
    data = {name: [float(v) for v in ys] for name, ys in series.items()}
    if not xs or not data:
        raise ValueError("render_series needs at least one x and one series")
    for name, ys in data.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")

    markers = "*o+x#@%&"
    all_y = [v for ys in data.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(data.items()):
        marker = markers[index % len(markers)]
        for xv, yv in zip(xs, ys):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.3g}" + " " * max(width - 12, 1) + f"{x_hi:>.3g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(data)
    )
    lines.append(f"{x_label}: {legend}")
    return "\n".join(lines)
