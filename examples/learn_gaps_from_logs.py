"""Learning GAPs from user action logs (paper §7.2).

Generates a timestamped rating log for three item pairs with known
ground-truth GAPs — mimicking Flixster's "want to see"/"not interested"
exposure signals — then runs the paper's counting estimator and prints the
learned values with 95% confidence intervals next to the truth.

Run:  python examples/learn_gaps_from_logs.py
"""

from repro.learning import generate_synthetic_log, learn_gap_pair
from repro.models import GAP

PAIRS = [
    # The paper's Table 5 headline pair.
    ("Monster Inc.", "Shrek", GAP(0.88, 0.92, 0.92, 0.96)),
    # A strongly complementary pair (phone & watch).
    ("iPhone", "Apple Watch", GAP(0.70, 0.78, 0.30, 0.85)),
    # A competitive pair: adopting one suppresses the other.
    ("Console X", "Console Y", GAP(0.60, 0.25, 0.55, 0.20)),
]


def main() -> None:
    log = generate_synthetic_log(PAIRS, num_users=30_000, rng=99)
    print(f"action log: {log.num_events} events, "
          f"{len(log.users)} users, {len(log.items)} items\n")

    header = f"{'pair':28s} {'GAP':12s} {'learned':>16s} {'truth':>7s}"
    print(header)
    print("-" * len(header))
    for item_a, item_b, truth in PAIRS:
        learned = learn_gap_pair(log, item_a, item_b)
        pair_label = f"{item_a} / {item_b}"
        for attr, label in [
            ("q_a", "q_A|0"), ("q_a_given_b", "q_A|B"),
            ("q_b", "q_B|0"), ("q_b_given_a", "q_B|A"),
        ]:
            value = getattr(learned.gap, attr)
            half = learned.halfwidths[attr]
            true_value = getattr(truth, attr)
            print(
                f"{pair_label:28s} {label:12s} "
                f"{value:10.3f} ±{half:.3f} {true_value:7.2f}"
            )
            pair_label = ""
        relation = truth.relationship_of_b_toward_a().value
        print(f"{'':28s} (B {relation} A; recovered within 2x CI: "
              f"{learned.contains_truth(truth, slack=2.0)})\n")


if __name__ == "__main__":
    main()
