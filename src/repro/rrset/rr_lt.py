"""RR-sets for the classic Linear Threshold model (Triggering view, [15, 24]).

Kempe et al. prove LT equivalent to the Triggering model in which every
node independently selects *at most one* in-neighbour — edge ``(u, v)``
with probability ``w(u, v)``, nobody with the residual ``1 - sum_u w`` —
and activation is reachability over selected edges.  A random RR-set of a
root ``v`` is therefore a reverse *path*: follow ``v``'s selected
in-neighbour, then its selection, and so on until a node selects nobody or
the walk closes a cycle.  This is TIM's LT sampler [24]; plugged into
:func:`~repro.rrset.tim.general_tim` / :func:`~repro.rrset.imm.general_imm`
it yields a VanillaLT baseline, the LT counterpart of §7's VanillaIC.

Batched fast path
-----------------

:meth:`RRLTGenerator.generate_batch` advances the reverse walks of a whole
chunk of roots in lockstep: one uniform draw per live walk per step, then
a *vectorized multi-range binary search* over a precomputed per-edge
cumulative-weight array (each head node's in-CSR segment is its selection
distribution) resolves every walk's selected in-neighbour simultaneously —
the bulk counterpart of the oracle's per-step ``searchsorted``.  Walks
retire on childless nodes, on the residual ``1 - sum w`` mass, or on a
closed cycle, exactly like :meth:`generate`; frequency tests assert the
distributions agree.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.lt import _check_lt_instance
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool, flatten_members
from repro.rrset.sweep import make_flags


class RRLTGenerator(RRSetGenerator):
    """Random RR-set sampler for single-item LT.

    Edge probabilities are LT weights; per-node incoming sums must not
    exceed 1 (:func:`~repro.models.lt.normalize_lt_weights`).
    """

    # Each walk step draws against the full in-segment distribution of a
    # chain member, so the edges a set depends on are exactly the
    # in-edges of its members: repair needs only the root column.
    touch_mode = "implicit"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        _check_lt_instance(graph)
        self._cum_in: Optional[np.ndarray] = None

    def _in_cumweights(self) -> np.ndarray:
        """Per-edge cumulative LT weight within its head's in-CSR segment.

        ``cum[j]`` is the inclusive prefix sum of ``in_prob`` over the
        segment of the node that edge ``j`` enters — each segment is the
        selection distribution the triggering draw searches.  Computed
        once per generator and shared by every batch.
        """
        if self._cum_in is None:
            in_indptr, _src, in_prob, _eid = self._graph.csr_in()
            total = np.concatenate(([0.0], np.cumsum(in_prob)))
            base = np.repeat(total[in_indptr[:-1]], np.diff(in_indptr))
            self._cum_in = total[1:] - base
        return self._cum_in

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None
    ) -> np.ndarray:
        gen = make_rng(rng)
        graph = self._graph
        if root is None:
            root = int(gen.integers(0, graph.num_nodes))
        visited = {int(root)}
        chain = [int(root)]
        current = int(root)
        while True:
            sources, weights, _eids = graph.in_edges(current)
            if sources.size == 0:
                break
            draw = float(gen.random())
            cumulative = np.cumsum(weights)
            idx = int(np.searchsorted(cumulative, draw, side="right"))
            if idx >= sources.size:
                break  # the residual mass: nobody triggers `current`
            selected = int(sources[idx])
            if selected in visited:
                break  # cycle closed; reachability gains nothing new
            visited.add(selected)
            chain.append(selected)
            current = selected
        return np.asarray(chain, dtype=np.int64)

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring)."""
        gen = make_rng(rng)
        graph = self._graph
        n = graph.num_nodes
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        in_indptr, in_src, _in_prob, _in_eid = graph.csr_in()
        cum = self._in_cumweights()
        backend = self.sweep.resolve_backend(n)
        chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=1, max_members=65536
        )
        for start in range(0, roots.size, chunk):
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            ids = np.arange(b, dtype=np.int64)
            visited = make_flags(b, n, backend)
            visited.mark(ids * n + chunk_roots)
            member_ids = [ids]
            member_nodes = [chunk_roots]
            mem, cur = ids, chunk_roots
            while mem.size:
                seg_lo = in_indptr[cur]
                seg_hi = in_indptr[cur + 1]
                walking = seg_hi > seg_lo  # childless nodes end their walk
                if not walking.all():
                    mem, cur = mem[walking], cur[walking]
                    seg_lo, seg_hi = seg_lo[walking], seg_hi[walking]
                if mem.size == 0:
                    break
                draw = gen.random(mem.size)
                # Multi-range binary search: per walk, the first edge of
                # its node's segment whose cumulative weight exceeds the
                # draw (the oracle's searchsorted side="right").
                lo = seg_lo.copy()
                hi = seg_hi.copy()
                active = lo < hi
                while active.any():
                    mid = (lo[active] + hi[active]) >> 1
                    go_right = cum[mid] <= draw[active]
                    lo[active] = np.where(go_right, mid + 1, lo[active])
                    hi[active] = np.where(go_right, hi[active], mid)
                    active = lo < hi
                chose = lo < seg_hi  # else the residual mass: nobody triggers
                if not chose.any():
                    break
                mem = mem[chose]
                selected = in_src[lo[chose]]
                keys = mem * n + selected
                fresh = ~visited.get(keys)  # a closed cycle ends the walk
                mem, cur, keys = mem[fresh], selected[fresh], keys[fresh]
                visited.mark(keys)
                member_ids.append(mem)
                member_nodes.append(cur)
            nodes, lengths = flatten_members(member_nodes, member_ids, b)
            pool.append_flat(nodes, lengths, roots=chunk_roots)
        return pool


def vanilla_lt_seeds(
    graph: DiGraph,
    k: int,
    *,
    options=None,
    rng: SeedLike = None,
) -> list[int]:
    """VanillaLT: TIM seed selection under classic LT (rank order).

    The LT sibling of
    :func:`~repro.algorithms.baselines.vanilla_ic_seeds`.
    """
    from repro.rrset.tim import TIMOptions, general_tim

    result = general_tim(
        RRLTGenerator(graph), k,
        options=options if options is not None else TIMOptions(),
        rng=rng,
    )
    return result.seeds
