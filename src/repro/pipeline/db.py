"""`PipelineDebugDB`: the per-workdir SQLite record of every pipeline run.

Design requirement (ISSUE 10): **a run must be diagnosable from
``pipeline_debug.sqlite`` alone** — no re-run, no log scraping.  Every
stage therefore writes its inputs (content digests), outputs, timings and
convergence diagnostics here:

* ``runs``          — one row per :func:`~repro.pipeline.run_pipeline`
                      call: config JSON + digest, input fingerprints,
                      start/finish timestamps, status, stage counts;
* ``stages``        — one row per (run, stage): ran/cached/failed, input
                      and output digests, wall time, JSON detail
                      (iterations, converged, backend, sample counts);
* ``em_trace``      — the EM log-likelihood trace, one row per iteration
                      (iteration 0 = initial parameters);
* ``edge_fits``     — the fitted per-edge probabilities and observation
                      counts;
* ``gap_fits``      — the four GAP parameters with CI halfwidths, sample
                      counts, and (when ground truth is supplied)
                      inside-CI verdicts;
* ``query_results`` — stage-3 answers: seeds, estimate, method/engine,
                      RR-sets sampled, degraded flag, wall time.

The storage discipline is the pool catalog's (SNIPPETS §1): WAL journal +
``synchronous=NORMAL`` + ``busy_timeout`` so concurrent readers never
block the writer, thread-local connections, and a schema version pinned
in ``pipeline_meta``.  Timestamps are ISO-8601 UTC.
"""

from __future__ import annotations

import datetime
import json
import os
import sqlite3
import threading
from typing import Any, Iterable, Optional, Union

from repro.errors import PipelineError

__all__ = ["PipelineDebugDB", "DEBUG_DB_FILE", "SCHEMA_VERSION"]


def utc_now_iso() -> str:
    """Current UTC time as ISO-8601 (the pool catalog's timestamp format).

    Duplicated from :mod:`repro.service.catalog` rather than imported:
    the service layer imports the pipeline (daemon endpoints), so the
    pipeline must not import the service layer back.
    """
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.isoformat(timespec="microseconds").replace("+00:00", "Z")

#: debug database file name, inside the pipeline working directory.
DEBUG_DB_FILE = "pipeline_debug.sqlite"

#: bump on schema changes; recorded in ``pipeline_meta``.
SCHEMA_VERSION = 1

PathLike = Union[str, os.PathLike]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id               INTEGER PRIMARY KEY AUTOINCREMENT,
    started_utc          TEXT NOT NULL,
    finished_utc         TEXT,
    status               TEXT NOT NULL,          -- running | ok | failed
    error                TEXT,
    config_json          TEXT NOT NULL,
    config_digest        TEXT NOT NULL,
    graph_fingerprint    TEXT NOT NULL,
    log_fingerprint      TEXT NOT NULL,
    episodes_fingerprint TEXT,
    seed                 INTEGER NOT NULL,
    stages_run           INTEGER NOT NULL DEFAULT 0,
    stages_skipped       INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS stages (
    run_id        INTEGER NOT NULL,
    stage         TEXT NOT NULL,                 -- fit_edges | fit_gap | query
    status        TEXT NOT NULL,                 -- ran | cached | failed
    input_digest  TEXT NOT NULL,
    output_digest TEXT,
    wall_s        REAL,
    started_utc   TEXT NOT NULL,
    finished_utc  TEXT,
    detail        TEXT,                          -- JSON diagnostics
    PRIMARY KEY (run_id, stage)
);
CREATE TABLE IF NOT EXISTS em_trace (
    run_id         INTEGER NOT NULL,
    iteration      INTEGER NOT NULL,             -- 0 = initial parameters
    log_likelihood REAL NOT NULL,
    PRIMARY KEY (run_id, iteration)
);
CREATE TABLE IF NOT EXISTS edge_fits (
    run_id       INTEGER NOT NULL,
    edge_id      INTEGER NOT NULL,
    source       INTEGER NOT NULL,
    target       INTEGER NOT NULL,
    probability  REAL NOT NULL,
    observations INTEGER,
    PRIMARY KEY (run_id, edge_id)
);
CREATE TABLE IF NOT EXISTS gap_fits (
    run_id     INTEGER NOT NULL,
    item_a     TEXT NOT NULL,
    item_b     TEXT NOT NULL,
    parameter  TEXT NOT NULL,      -- q_a | q_a_given_b | q_b | q_b_given_a
    value      REAL NOT NULL,
    halfwidth  REAL NOT NULL,
    ci_lo      REAL NOT NULL,
    ci_hi      REAL NOT NULL,
    samples    INTEGER NOT NULL,
    true_value REAL,               -- NULL without supplied ground truth
    inside_ci  INTEGER,            -- 1/0, NULL without ground truth
    PRIMARY KEY (run_id, parameter)
);
CREATE TABLE IF NOT EXISTS query_results (
    run_id          INTEGER NOT NULL,
    query_index     INTEGER NOT NULL,
    objective       TEXT NOT NULL,
    query_json      TEXT NOT NULL,
    seeds_json      TEXT NOT NULL,
    estimate        REAL,
    method          TEXT NOT NULL,
    engine          TEXT NOT NULL,
    rr_sets_sampled INTEGER,
    degraded        INTEGER NOT NULL,
    wall_s          REAL,
    PRIMARY KEY (run_id, query_index)
);
CREATE TABLE IF NOT EXISTS pipeline_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class PipelineDebugDB:
    """The SQLite debug record of one pipeline working directory.

    Thread-safe via one connection per thread (the pool-catalog idiom);
    process-safe via WAL + ``busy_timeout``.  All writes commit per
    method call, so a crashed run leaves its ``running`` row behind as
    evidence rather than vanishing.
    """

    def __init__(self, path: PathLike, *, busy_timeout_ms: int = 30_000) -> None:
        self._path = str(path)
        self._busy_timeout_ms = int(busy_timeout_ms)
        self._local = threading.local()

    @property
    def path(self) -> str:
        """The database file path."""
        return self._path

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(
                    self._path, timeout=self._busy_timeout_ms / 1000.0
                )
            except sqlite3.OperationalError as exc:
                raise PipelineError(
                    f"cannot open debug database {self._path}: {exc}"
                ) from exc
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self._busy_timeout_ms}")
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO pipeline_meta(key, value) VALUES(?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            conn.commit()
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's connection (others close with their threads)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def schema_version(self) -> int:
        """The schema version pinned in ``pipeline_meta``."""
        row = self._conn().execute(
            "SELECT value FROM pipeline_meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row["value"])

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(
        self,
        *,
        config_json: str,
        config_digest: str,
        graph_fingerprint: str,
        log_fingerprint: str,
        episodes_fingerprint: Optional[str],
        seed: int,
    ) -> int:
        """Insert a ``running`` row; returns its ``run_id``."""
        cur = self._conn().execute(
            """
            INSERT INTO runs (started_utc, status, config_json, config_digest,
                              graph_fingerprint, log_fingerprint,
                              episodes_fingerprint, seed)
            VALUES (?, 'running', ?, ?, ?, ?, ?, ?)
            """,
            (
                utc_now_iso(),
                config_json,
                config_digest,
                graph_fingerprint,
                log_fingerprint,
                episodes_fingerprint,
                seed,
            ),
        )
        self._conn().commit()
        return int(cur.lastrowid)

    def finish_run(
        self,
        run_id: int,
        *,
        status: str,
        error: Optional[str] = None,
        stages_run: int = 0,
        stages_skipped: int = 0,
    ) -> None:
        """Stamp the run's outcome (``ok`` or ``failed``) and stage counts."""
        self._conn().execute(
            """
            UPDATE runs SET finished_utc = ?, status = ?, error = ?,
                            stages_run = ?, stages_skipped = ?
            WHERE run_id = ?
            """,
            (utc_now_iso(), status, error, stages_run, stages_skipped, run_id),
        )
        self._conn().commit()

    # ------------------------------------------------------------------
    # Stage records
    # ------------------------------------------------------------------
    def record_stage(
        self,
        run_id: int,
        stage: str,
        *,
        status: str,
        input_digest: str,
        output_digest: Optional[str],
        wall_s: Optional[float],
        started_utc: str,
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        """Upsert the (run, stage) row; call once per stage attempt."""
        self._conn().execute(
            """
            INSERT OR REPLACE INTO stages
                (run_id, stage, status, input_digest, output_digest,
                 wall_s, started_utc, finished_utc, detail)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                run_id,
                stage,
                status,
                input_digest,
                output_digest,
                wall_s,
                started_utc,
                utc_now_iso(),
                json.dumps(detail, sort_keys=True) if detail is not None else None,
            ),
        )
        self._conn().commit()

    def record_em_trace(self, run_id: int, log_likelihoods: Iterable[float]) -> None:
        """Record the EM log-likelihood trace (iteration 0 = initial)."""
        self._conn().executemany(
            "INSERT OR REPLACE INTO em_trace (run_id, iteration, log_likelihood)"
            " VALUES (?, ?, ?)",
            [(run_id, i, float(ll)) for i, ll in enumerate(log_likelihoods)],
        )
        self._conn().commit()

    def record_edge_fits(
        self,
        run_id: int,
        *,
        sources: Iterable[int],
        targets: Iterable[int],
        probabilities: Iterable[float],
        observations: Optional[Iterable[int]] = None,
    ) -> None:
        """Record the fitted per-edge probabilities (edge id = row order)."""
        obs = list(observations) if observations is not None else None
        rows = [
            (
                run_id,
                eid,
                int(src),
                int(dst),
                float(p),
                int(obs[eid]) if obs is not None else None,
            )
            for eid, (src, dst, p) in enumerate(
                zip(sources, targets, probabilities)
            )
        ]
        self._conn().executemany(
            "INSERT OR REPLACE INTO edge_fits"
            " (run_id, edge_id, source, target, probability, observations)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn().commit()

    def record_gap_fit(
        self,
        run_id: int,
        *,
        item_a: Any,
        item_b: Any,
        parameter: str,
        value: float,
        halfwidth: float,
        ci_lo: float,
        ci_hi: float,
        samples: int,
        true_value: Optional[float] = None,
        inside_ci: Optional[bool] = None,
    ) -> None:
        """Record one GAP parameter's estimate, CI and sample count."""
        self._conn().execute(
            """
            INSERT OR REPLACE INTO gap_fits
                (run_id, item_a, item_b, parameter, value, halfwidth,
                 ci_lo, ci_hi, samples, true_value, inside_ci)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                run_id,
                str(item_a),
                str(item_b),
                parameter,
                float(value),
                float(halfwidth),
                float(ci_lo),
                float(ci_hi),
                int(samples),
                None if true_value is None else float(true_value),
                None if inside_ci is None else int(inside_ci),
            ),
        )
        self._conn().commit()

    def record_query(
        self,
        run_id: int,
        query_index: int,
        *,
        objective: str,
        query_json: str,
        seeds: Iterable[int],
        estimate: Optional[float],
        method: str,
        engine: str,
        rr_sets_sampled: Optional[int],
        degraded: bool,
        wall_s: Optional[float],
    ) -> None:
        """Record one stage-3 query answer."""
        self._conn().execute(
            """
            INSERT OR REPLACE INTO query_results
                (run_id, query_index, objective, query_json, seeds_json,
                 estimate, method, engine, rr_sets_sampled, degraded, wall_s)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                run_id,
                query_index,
                objective,
                query_json,
                json.dumps([int(s) for s in seeds]),
                None if estimate is None else float(estimate),
                method,
                engine,
                None if rr_sets_sampled is None else int(rr_sets_sampled),
                int(bool(degraded)),
                wall_s,
            ),
        )
        self._conn().commit()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runs(self) -> list[dict[str, Any]]:
        """Every run row as a plain dict, newest first."""
        cur = self._conn().execute("SELECT * FROM runs ORDER BY run_id DESC")
        return [dict(row) for row in cur.fetchall()]

    def run(self, run_id: int) -> Optional[dict[str, Any]]:
        """One run row by id, or ``None``."""
        row = self._conn().execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return dict(row) if row is not None else None

    def stages(self, run_id: int) -> list[dict[str, Any]]:
        """The run's stage rows, in execution order."""
        cur = self._conn().execute(
            "SELECT * FROM stages WHERE run_id = ?"
            " ORDER BY started_utc, stage",
            (run_id,),
        )
        return [dict(row) for row in cur.fetchall()]

    def em_trace(self, run_id: int) -> list[tuple[int, float]]:
        """The run's (iteration, log_likelihood) trace, in order."""
        cur = self._conn().execute(
            "SELECT iteration, log_likelihood FROM em_trace"
            " WHERE run_id = ? ORDER BY iteration",
            (run_id,),
        )
        return [(int(r["iteration"]), float(r["log_likelihood"])) for r in cur]

    def gap_fits(self, run_id: int) -> list[dict[str, Any]]:
        """The run's GAP-parameter rows."""
        cur = self._conn().execute(
            "SELECT * FROM gap_fits WHERE run_id = ? ORDER BY parameter",
            (run_id,),
        )
        return [dict(row) for row in cur.fetchall()]

    def query_results(self, run_id: int) -> list[dict[str, Any]]:
        """The run's stage-3 answers, in query order."""
        cur = self._conn().execute(
            "SELECT * FROM query_results WHERE run_id = ? ORDER BY query_index",
            (run_id,),
        )
        return [dict(row) for row in cur.fetchall()]
