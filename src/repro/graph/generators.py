"""Random and deterministic graph generators.

The paper's scalability study (§7.3, Fig. 7b) uses "power-law random graphs
... with a power-law degree exponent of 2.16" and average degree about 5;
:func:`power_law_digraph` reproduces that construction.  The remaining
generators provide Erdős–Rényi graphs and small deterministic fixtures used
throughout the tests (paths, cycles, stars, grids, complete graphs).

All generators return :class:`~repro.graph.digraph.DiGraph` instances whose
edges carry a ``default_probability`` that callers typically overwrite with a
scheme from :mod:`repro.graph.weights`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def erdos_renyi_digraph(
    n: int,
    edge_probability: float,
    *,
    probability: float = 1.0,
    rng: SeedLike = None,
) -> DiGraph:
    """G(n, p) directed random graph (no self-loops).

    ``edge_probability`` is the independent existence probability of each of
    the ``n * (n - 1)`` ordered pairs; ``probability`` is the influence
    probability stamped on every realised edge.
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    gen = make_rng(rng)
    if n <= 1 or edge_probability == 0.0:
        return DiGraph.from_arrays(
            n,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    # Sample the number of edges then their positions among ordered pairs.
    total_pairs = n * (n - 1)
    m = int(gen.binomial(total_pairs, edge_probability))
    pair_idx = gen.choice(total_pairs, size=m, replace=False)
    src = pair_idx // (n - 1)
    offset = pair_idx % (n - 1)
    dst = np.where(offset >= src, offset + 1, offset)
    prob = np.full(m, probability, dtype=np.float64)
    return DiGraph.from_arrays(n, src.astype(np.int64), dst.astype(np.int64), prob)


def _power_law_degrees(
    n: int, exponent: float, average_degree: float, gen: np.random.Generator
) -> np.ndarray:
    """Sample a degree sequence from a truncated discrete power law.

    Degrees follow ``P(d) ∝ d^(-exponent)`` on ``[1, n-1]`` and are then
    rescaled so the empirical mean is close to ``average_degree``.
    """
    support = np.arange(1, n, dtype=np.float64)
    weights = support ** (-exponent)
    weights /= weights.sum()
    degrees = gen.choice(support.astype(np.int64), size=n, p=weights)
    mean = degrees.mean()
    if mean > 0:
        scale = average_degree / mean
        degrees = np.maximum(1, np.round(degrees * scale)).astype(np.int64)
    return np.minimum(degrees, n - 1)


def power_law_digraph(
    n: int,
    *,
    exponent: float = 2.16,
    average_degree: float = 5.0,
    probability: float = 1.0,
    rng: SeedLike = None,
) -> DiGraph:
    """Directed power-law random graph (paper §7.3 scalability workload).

    Out-degrees are drawn from a discrete power law with the given exponent
    (default 2.16 as in [9] and the paper) and rescaled to the requested
    average.  Each node then connects to distinct uniform-random targets;
    because hubs draw many out-edges and targets are uniform, in-degrees are
    comparatively homogeneous, matching the "power-law random graph" model
    of Chen et al. [9].
    """
    if n < 2:
        raise GraphError(f"power_law_digraph needs n >= 2, got {n}")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    gen = make_rng(rng)
    degrees = _power_law_degrees(n, exponent, average_degree, gen)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for u in range(n):
        d = int(degrees[u])
        if d <= 0:
            continue
        targets = gen.choice(n - 1, size=d, replace=False)
        targets = np.where(targets >= u, targets + 1, targets)
        src_parts.append(np.full(d, u, dtype=np.int64))
        dst_parts.append(targets.astype(np.int64))
    src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
    prob = np.full(src.size, probability, dtype=np.float64)
    return DiGraph.from_arrays(n, src, dst, prob)


def path_digraph(n: int, *, probability: float = 1.0, bidirectional: bool = False) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (optionally both directions)."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    edges = [(i, i + 1, probability) for i in range(n - 1)]
    if bidirectional:
        edges += [(i + 1, i, probability) for i in range(n - 1)]
    return DiGraph.from_edges(n, edges)


def cycle_digraph(n: int, *, probability: float = 1.0) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if n < 2:
        raise GraphError(f"cycle needs n >= 2, got {n}")
    edges = [(i, (i + 1) % n, probability) for i in range(n)]
    return DiGraph.from_edges(n, edges)


def star_digraph(n: int, *, probability: float = 1.0, outward: bool = True) -> DiGraph:
    """Star with centre 0; ``outward`` controls the edge direction."""
    if n < 1:
        raise GraphError(f"star needs n >= 1, got {n}")
    if outward:
        edges = [(0, i, probability) for i in range(1, n)]
    else:
        edges = [(i, 0, probability) for i in range(1, n)]
    return DiGraph.from_edges(n, edges)


def complete_digraph(n: int, *, probability: float = 1.0) -> DiGraph:
    """Complete directed graph on ``n`` nodes (all ordered pairs)."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    edges = [(u, v, probability) for u in range(n) for v in range(n) if u != v]
    return DiGraph.from_edges(n, edges)


def grid_digraph(rows: int, cols: int, *, probability: float = 1.0) -> DiGraph:
    """Bidirectional 4-neighbour grid; node ``(r, c)`` has id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                v = r * cols + (c + 1)
                edges.append((u, v, probability))
                edges.append((v, u, probability))
            if r + 1 < rows:
                v = (r + 1) * cols + c
                edges.append((u, v, probability))
                edges.append((v, u, probability))
    return DiGraph.from_edges(rows * cols, edges)
