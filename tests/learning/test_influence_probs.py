"""Tests for the Goyal-style static Bernoulli edge-probability learner."""

import pytest

from repro.errors import EstimationError
from repro.graph import DiGraph
from repro.learning import RATE, ActionLog, learn_influence_probabilities


def log_from(entries) -> ActionLog:
    log = ActionLog()
    for user, item, time in entries:
        log.record(user, item, RATE, time)
    return log


class TestStaticBernoulli:
    def test_basic_ratio(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        # u0 rated items x, y; item x propagated to u1, y did not.
        log = log_from([(0, "x", 1.0), (0, "y", 2.0), (1, "x", 3.0)])
        learned = learn_influence_probabilities(graph, log)
        assert learned.edge_probability(0, 1) == pytest.approx(0.5)

    def test_propagation_requires_strict_order(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        log = log_from([(0, "x", 2.0), (1, "x", 1.0)])  # v rated first
        learned = learn_influence_probabilities(graph, log)
        assert learned.edge_probability(0, 1) == 0.0

    def test_window_cuts_stale_propagation(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        log = log_from([(0, "x", 1.0), (1, "x", 100.0)])
        no_window = learn_influence_probabilities(graph, log)
        assert no_window.edge_probability(0, 1) == pytest.approx(1.0)
        windowed = learn_influence_probabilities(graph, log, window=10.0)
        assert windowed.edge_probability(0, 1) == 0.0

    def test_inactive_source_gets_zero(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.5)])
        log = log_from([(1, "x", 1.0)])
        learned = learn_influence_probabilities(graph, log)
        assert learned.edge_probability(0, 1) == 0.0

    def test_smoothing(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        log = log_from([(0, "x", 1.0)])
        learned = learn_influence_probabilities(graph, log, smoothing=1.0)
        # (0 + 1) / (1 + 2) = 1/3.
        assert learned.edge_probability(0, 1) == pytest.approx(1.0 / 3.0)

    def test_rejects_non_node_users(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        log = log_from([("alice", "x", 1.0)])
        with pytest.raises(EstimationError, match="not a node id"):
            learn_influence_probabilities(graph, log)

    def test_rejects_out_of_range_users(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        log = log_from([(9, "x", 1.0)])
        with pytest.raises(EstimationError, match="out of node range"):
            learn_influence_probabilities(graph, log)

    def test_rejects_bad_window(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        with pytest.raises(EstimationError):
            learn_influence_probabilities(graph, ActionLog(), window=-1.0)

    def test_rejects_bad_smoothing(self):
        graph = DiGraph.from_edges(2, [(0, 1, 0.0)])
        with pytest.raises(EstimationError):
            learn_influence_probabilities(graph, ActionLog(), smoothing=-0.5)
