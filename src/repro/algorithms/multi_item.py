"""Seed selection for the k-item Com-IC extension (§8).

The paper leaves optimisation over the ``k * 2^(k-1)``-parameter model as
future work; this module supplies the natural first algorithms:

* :func:`greedy_multi_item_selfinfmax` — pick seeds for one focal item,
  other items' seed sets fixed (the k-item generalisation of
  SelfInfMax), via CELF Monte-Carlo greedy;
* :func:`round_robin_multi_item` — allocate a shared budget across all
  items, one greedy seed at a time in round-robin order, maximising the
  *total* expected adoptions (the host's view, in the spirit of fair
  allocation in Lu et al. [16]).

No approximation guarantee is claimed: even for two items the objective
is submodular only in restricted regimes (§5).  These are the practical
heuristics a campaign would start from.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.multi_item import (
    MultiItemGaps,
    estimate_multi_item_spread,
)
from repro.rng import SeedLike, derive_seed, make_rng
from repro.algorithms.greedy import celf_greedy


def _validate_item(gaps: MultiItemGaps, item: int) -> int:
    if not 0 <= item < gaps.num_items:
        raise SeedSetError(
            f"item must lie in [0, {gaps.num_items - 1}], got {item}"
        )
    return int(item)


def greedy_multi_item_selfinfmax(
    graph: DiGraph,
    gaps: MultiItemGaps,
    item: int,
    fixed_seed_sets: Sequence[Sequence[int]],
    k: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[int]:
    """CELF greedy for the focal ``item`` with all other seed sets fixed.

    ``fixed_seed_sets`` must list one seed set per item; the focal item's
    entry is the *initial* seed set it extends (usually empty).
    """
    item = _validate_item(gaps, item)
    if len(fixed_seed_sets) != gaps.num_items:
        raise SeedSetError(
            f"expected {gaps.num_items} seed sets, got {len(fixed_seed_sets)}"
        )
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    gen = make_rng(rng)
    eval_seed = int(gen.integers(0, 2**31 - 1))
    base_sets = [list(s) for s in fixed_seed_sets]
    pool = (
        list(candidates)
        if candidates is not None
        else [v for v in range(graph.num_nodes) if v not in set(base_sets[item])]
    )

    def objective(extra: Sequence[int]) -> float:
        trial = [list(s) for s in base_sets]
        trial[item] = base_sets[item] + [int(v) for v in extra]
        spreads = estimate_multi_item_spread(
            graph, gaps, trial, runs=runs,
            rng=derive_seed(eval_seed, len(extra), *map(int, extra)),
        )
        return float(spreads[item])

    seeds, _trace = celf_greedy(pool, k, objective)
    return seeds


def round_robin_multi_item(
    graph: DiGraph,
    gaps: MultiItemGaps,
    budget: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[list[int]]:
    """Allocate ``budget`` seeds across all items, round-robin greedily.

    Item ``t mod k`` receives the ``t``-th seed: the node maximising the
    *total* expected adoptions across items (MC-estimated with a shared
    seed per round).  Returns one seed list per item.
    """
    if budget < 0:
        raise SeedSetError(f"budget must be non-negative, got {budget}")
    gen = make_rng(rng)
    eval_seed = int(gen.integers(0, 2**31 - 1))
    k = gaps.num_items
    seed_sets: list[list[int]] = [[] for _ in range(k)]
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))

    for t in range(budget):
        item = t % k
        taken = set(seed_sets[item])
        best_node, best_total = None, -np.inf
        for v in pool:
            if v in taken:
                continue
            trial = [list(s) for s in seed_sets]
            trial[item].append(v)
            total = float(
                estimate_multi_item_spread(
                    graph, gaps, trial, runs=runs, rng=derive_seed(eval_seed, t, v)
                ).sum()
            )
            if total > best_total:
                best_node, best_total = v, total
        if best_node is None:
            break
        seed_sets[item].append(best_node)
    return seed_sets
