"""Declarative query objects for the four Com-IC optimisation workloads.

Each query is a frozen dataclass that captures *what* to solve — never how
— and round-trips losslessly through JSON (``Query.from_json(q.to_json())
== q``), so queries can be logged, shipped over the wire, and replayed
against any :class:`~repro.api.session.ComICSession` holding the same
network.  The session supplies the graph, default GAPs and engine
configuration; a query may override the GAPs per call (``gaps=``), which
is how sweeps over adoption-probability settings share one session.

The four built-in workloads mirror the paper:

* :class:`SelfInfMaxQuery`  — Problem 1, ``k`` A-seeds given fixed B-seeds;
* :class:`CompInfMaxQuery`  — Problem 2, ``k`` B-seeds boosting fixed A;
* :class:`BlockingQuery`    — Appendix B.4, B-seeds suppressing A (Q-);
* :class:`MultiItemQuery`   — §8 k-item extension (focal or round-robin).

New workloads register their own query type via :mod:`repro.api.registry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping, Optional

from repro.errors import QueryError
from repro.models.gaps import GAP

__all__ = [
    "SelfInfMaxQuery",
    "CompInfMaxQuery",
    "BlockingQuery",
    "MultiItemQuery",
]


def _seed_tuple(name: str, seeds: Iterable[int]) -> tuple[int, ...]:
    if isinstance(seeds, (str, bytes)):
        # A string would silently decompose into per-character "node ids".
        raise QueryError(f"{name} must be an iterable of node ids, got a string")
    try:
        return tuple(int(s) for s in seeds)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"{name} must be an iterable of node ids") from exc


def _gap_to_dict(gaps: Optional[GAP]) -> Optional[dict[str, float]]:
    if gaps is None:
        return None
    return {
        "q_a": gaps.q_a,
        "q_a_given_b": gaps.q_a_given_b,
        "q_b": gaps.q_b,
        "q_b_given_a": gaps.q_b_given_a,
    }


def _gap_from_dict(data: Optional[Mapping[str, float]]) -> Optional[GAP]:
    if data is None:
        return None
    return GAP.from_mapping(data)


class _QueryBase:
    """Shared JSON plumbing; subclasses are frozen dataclasses."""

    #: registry key of the workload; overridden per subclass.
    objective: str = ""

    def to_dict(self) -> dict[str, Any]:
        """A plain-JSON-types dict tagged with the objective name."""
        payload: dict[str, Any] = {"objective": self.objective}
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, GAP):
                value = _gap_to_dict(value)
            elif isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_QueryBase":
        """Rebuild from :meth:`to_dict` output (tag optional but checked)."""
        data = dict(data)
        tag = data.pop("objective", cls.objective)
        if tag != cls.objective:
            raise QueryError(
                f"payload is a {tag!r} query, not {cls.objective!r}"
            )
        field_names = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        unknown = set(data) - field_names
        if unknown:
            raise QueryError(
                f"unknown {cls.__name__} fields: {sorted(unknown)}"
            )
        if "gaps" in data:
            data["gaps"] = _gap_from_dict(data["gaps"])
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            # e.g. a wire payload missing required fields.
            raise QueryError(f"invalid {cls.__name__} payload: {exc}") from exc

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "_QueryBase":
        """Inverse of :meth:`to_json` (``from_json(to_json(q)) == q``)."""
        return cls.from_dict(json.loads(payload))


def _check_budget(name: str, value: int) -> None:
    if value < 0:
        raise QueryError(f"{name} must be non-negative, got {value}")


def _check_min(name: str, value: int, minimum: int = 1) -> None:
    if value < minimum:
        raise QueryError(f"{name} must be >= {minimum}, got {value}")


def _check_gaps(gaps: Optional[GAP]) -> None:
    if gaps is not None and not isinstance(gaps, GAP):
        raise QueryError(
            f"gaps must be a GAP (or None for the session default), got "
            f"{type(gaps).__name__}"
        )


#: Solution routes of the blocking / multi-item workloads: ``"auto"``
#: takes the RR-backed path when the GAP regime supports it and falls
#: back to Monte-Carlo CELF otherwise; ``"rr"`` / ``"mc"`` force a route
#: (``"rr"`` raises when the regime is unsupported).
METHODS = ("auto", "rr", "mc")


def _check_method(method: str) -> None:
    if method not in METHODS:
        raise QueryError(
            f"method must be one of {METHODS}, got {method!r}"
        )


@dataclass(frozen=True)
class SelfInfMaxQuery(_QueryBase):
    """Problem 1: pick ``k`` A-seeds maximising ``sigma_A`` given B-seeds.

    ``gaps=None`` uses the session's GAPs.  ``use_rr_sim_plus`` selects
    RR-SIM+ over RR-SIM; ``evaluation_runs`` / ``include_greedy_candidate``
    / ``greedy_runs`` configure the Sandwich comparison exactly as the old
    ``solve_selfinfmax`` keywords did.
    """

    objective = "selfinfmax"

    seeds_b: tuple[int, ...]
    k: int
    gaps: Optional[GAP] = None
    use_rr_sim_plus: bool = True
    evaluation_runs: int = 200
    include_greedy_candidate: bool = False
    greedy_runs: int = 50

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds_b", _seed_tuple("seeds_b", self.seeds_b))
        _check_budget("k", self.k)
        _check_gaps(self.gaps)
        _check_min("evaluation_runs", self.evaluation_runs)
        _check_min("greedy_runs", self.greedy_runs)


@dataclass(frozen=True)
class CompInfMaxQuery(_QueryBase):
    """Problem 2: pick ``k`` B-seeds maximising the boost of fixed A-seeds."""

    objective = "compinfmax"

    seeds_a: tuple[int, ...]
    k: int
    gaps: Optional[GAP] = None
    evaluation_runs: int = 200
    include_greedy_candidate: bool = False
    greedy_runs: int = 50

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds_a", _seed_tuple("seeds_a", self.seeds_a))
        _check_budget("k", self.k)
        _check_gaps(self.gaps)
        _check_min("evaluation_runs", self.evaluation_runs)
        _check_min("greedy_runs", self.greedy_runs)


@dataclass(frozen=True)
class BlockingQuery(_QueryBase):
    """Influence blocking (Q-): ``k`` B-seeds suppressing A's spread.

    ``method`` picks the route: ``"rr"`` runs pooled RR-Block max-coverage
    through the session's tim/imm engine (requires one-way competition,
    ``q_{B|∅} = q_{B|A}``), ``"mc"`` the Monte-Carlo CELF greedy, and
    ``"auto"`` (default) the RR route whenever the regime allows it.
    ``runs`` is the Monte-Carlo budget per CELF evaluation (MC route
    only); ``candidates`` optionally restricts the seed pool (``None`` =
    all nodes).  Nodes already in ``seeds_a`` are always excluded from
    the pool — the greedy never wastes budget re-seeding occupied nodes.
    """

    objective = "blocking"

    seeds_a: tuple[int, ...]
    k: int
    gaps: Optional[GAP] = None
    runs: int = 200
    candidates: Optional[tuple[int, ...]] = None
    method: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds_a", _seed_tuple("seeds_a", self.seeds_a))
        _check_budget("k", self.k)
        _check_gaps(self.gaps)
        _check_min("runs", self.runs)
        _check_method(self.method)
        if self.candidates is not None:
            object.__setattr__(
                self, "candidates", _seed_tuple("candidates", self.candidates)
            )


@dataclass(frozen=True)
class MultiItemQuery(_QueryBase):
    """k-item extension (§8): focal-item greedy or round-robin allocation.

    With ``item`` set, extends that item's seed set by ``budget`` seeds
    while the other items' sets stay fixed (``fixed_seed_sets`` must then
    list one seed tuple per item).  With ``item=None``, allocates
    ``budget`` seeds across all items round-robin, starting from
    ``fixed_seed_sets`` when given (one tuple per item) and from empty
    sets otherwise.  The item model comes from the session
    (``multi_item_gaps``, or the pairwise GAPs lifted via
    ``MultiItemGaps.from_pairwise_gap``).

    ``method`` picks the focal-item route: the focal problem reduces to
    SelfInfMax with the other item's seeds as context, so for two-item
    models in the RR-SIM regime (focal item one-way complemented, its
    fixed seed set empty) ``"rr"`` / eligible ``"auto"`` run pooled
    RR-SIM+ selection through the session's tim/imm engine; ``"mc"`` (and
    every round-robin query) runs the Monte-Carlo greedy.  Candidate
    pools always exclude the focal item's already-fixed seeds.
    """

    objective = "multi_item"

    budget: int
    item: Optional[int] = None
    fixed_seed_sets: Optional[tuple[tuple[int, ...], ...]] = None
    runs: int = 100
    candidates: Optional[tuple[int, ...]] = None
    method: str = "auto"

    def __post_init__(self) -> None:
        _check_budget("budget", self.budget)
        _check_min("runs", self.runs)
        _check_method(self.method)
        if self.item is not None and self.fixed_seed_sets is None:
            raise QueryError("focal-item queries need fixed_seed_sets")
        if self.fixed_seed_sets is not None:
            object.__setattr__(
                self,
                "fixed_seed_sets",
                tuple(
                    _seed_tuple("fixed_seed_sets", s) for s in self.fixed_seed_sets
                ),
            )
        if self.candidates is not None:
            object.__setattr__(
                self, "candidates", _seed_tuple("candidates", self.candidates)
            )
