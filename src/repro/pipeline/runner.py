"""`run_pipeline`: ActionLog + episodes → fitted network → query answers.

The three stages (DESIGN.md §0 / docs/pipeline.md):

1. **fit_edges** — learn per-edge influence probabilities on the graph's
   structure, via Saito EM over cascade episodes (``edge_backend="em"``)
   or Goyal counting over the action log (``"goyal"``);
2. **fit_gap** — estimate the GAP quadruple of ``(item_a, item_b)`` from
   the action log with 95% CIs (:func:`~repro.learning.learn_gap_pair`);
3. **query** — assemble a :class:`~repro.api.session.ComICSession` over
   the fitted graph + learned GAP and answer ``config.queries`` in order.

Stages 1–2 are cached content-addressed under ``workdir/cache`` (see
:mod:`repro.pipeline.cache`): a warm re-run with unchanged inputs skips
them (``StageRecord.status == "cached"``).  Stage 3 always executes — its
amortisation is the session pool cache / store's job.  Every stage writes
its record to ``workdir/pipeline_debug.sqlite``
(:mod:`repro.pipeline.db`), cached stages included, so any run is
diagnosable from the debug DB alone.

Fault sites ``pipeline.fit_edges`` / ``pipeline.fit_gap`` arm before the
respective stage body (``error`` raises
:class:`~repro.faults.InjectedFault` after the stage is recorded
``failed``; ``slow`` sleeps ``delay_s`` first).  Deadlines ride the
engine config: ``config.engine.deadline_s`` bounds each stage-3 query
cooperatively, degrading instead of blocking.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.api.session import ComICSession
from repro.errors import PipelineError
from repro.faults.plan import InjectedFault, fire
from repro.graph.digraph import DiGraph
from repro.learning.action_log import ActionLog
from repro.learning.em_cascades import EMResult, em_learn_probabilities
from repro.learning.estimator import LearnedGap, learn_gap_pair
from repro.learning.influence_probs import learn_influence_probabilities
from repro.models.gaps import GAP
from repro.pipeline.cache import (
    StageCache,
    fingerprint_episodes,
    fingerprint_log,
)
from repro.pipeline.config import PipelineConfig, digest_of
from repro.pipeline.db import DEBUG_DB_FILE, PipelineDebugDB, utc_now_iso
from repro.rng import derive_seed

__all__ = ["PipelineResult", "StageRecord", "run_pipeline"]

PathLike = Union[str, os.PathLike]

_GAP_PARAMS = ("q_a", "q_a_given_b", "q_b", "q_b_given_a")


@dataclass(frozen=True)
class StageRecord:
    """One stage's outcome within a pipeline run."""

    stage: str
    #: ``"ran"`` (computed), ``"cached"`` (stage-cache hit) or ``"failed"``.
    status: str
    wall_s: float
    #: content address of the stage's inputs (its cache key digest).
    input_digest: str
    #: content hash of the stage's outputs (None for failed stages).
    output_digest: Optional[str]
    #: JSON-serialisable diagnostics (iterations, converged, samples, ...).
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Output of :func:`run_pipeline`.

    ``fitted_graph`` carries the stage-1 probabilities, ``learned_gap``
    the stage-2 quadruple (``learned_gap.gap`` is the :class:`GAP`), and
    ``results`` the stage-3 :class:`~repro.api.results.InfluenceResult`
    answers in query order.  ``run_id`` keys this run's rows in the debug
    DB at ``db_path``.
    """

    run_id: int
    config: PipelineConfig
    fitted_graph: DiGraph
    learned_gap: LearnedGap
    results: list[Any]
    stages: list[StageRecord]
    db_path: str
    #: the stage-1 EM diagnostics (None under the "goyal" backend or a
    #: cache hit replayed without them).
    em: Optional[EMResult] = None

    @property
    def stages_run(self) -> int:
        """How many stages actually computed."""
        return sum(1 for s in self.stages if s.status == "ran")

    @property
    def stages_skipped(self) -> int:
        """How many stages the content-addressed cache satisfied."""
        return sum(1 for s in self.stages if s.status == "cached")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready run summary (graph omitted; use the debug DB)."""
        return {
            "run_id": self.run_id,
            "config": self.config.to_dict(),
            "gap": {
                name: getattr(self.learned_gap.gap, name)
                for name in _GAP_PARAMS
            },
            "gap_halfwidths": dict(self.learned_gap.halfwidths),
            "gap_samples": dict(self.learned_gap.samples),
            "stages": [
                {
                    "stage": s.stage,
                    "status": s.status,
                    "wall_s": s.wall_s,
                    "input_digest": s.input_digest,
                    "output_digest": s.output_digest,
                    "detail": s.detail,
                }
                for s in self.stages
            ],
            "stages_run": self.stages_run,
            "stages_skipped": self.stages_skipped,
            "results": [r.to_dict() for r in self.results],
            "db_path": self.db_path,
        }


def _fire_site(site: str) -> None:
    """Arm a pipeline fault site; honours ``error`` and ``slow`` kinds."""
    spec = fire(site)
    if spec is None:
        return
    if spec.kind == "slow":
        time.sleep(spec.delay_s)
    elif spec.kind == "error":
        raise InjectedFault(site, spec.kind)
    # other kinds are meaningless here; firing them is a plan mistake the
    # tests would catch, not something to silently simulate differently.


def _fit_edges(
    graph: DiGraph,
    log: ActionLog,
    episodes: Optional[Sequence[np.ndarray]],
    config: PipelineConfig,
    cache: StageCache,
    *,
    graph_fp: str,
    log_fp: str,
    episodes_fp: Optional[str],
) -> tuple[np.ndarray, Optional[np.ndarray], dict[str, Any], str, str]:
    """Stage-1 body: (probabilities, observations, detail, status, digest)."""
    if config.edge_backend == "em":
        if episodes is None:
            raise PipelineError(
                'edge_backend="em" needs a cascade-episode corpus; pass '
                "episodes= (or switch to the \"goyal\" log-counting backend)"
            )
        key = {
            "stage": "fit_edges",
            "backend": "em",
            "graph": graph_fp,
            "episodes": episodes_fp,
            "max_iterations": config.em_max_iterations,
            "tolerance": config.em_tolerance,
            "initial": config.em_initial,
        }
    else:
        key = {
            "stage": "fit_edges",
            "backend": "goyal",
            "graph": graph_fp,
            "log": log_fp,
            "window": config.goyal_window,
            "smoothing": config.goyal_smoothing,
        }
    input_digest = cache.digest(key)

    hit = cache.load(key)
    if hit is not None:
        arrays, extra = hit
        probabilities = arrays["probabilities"]
        observations = arrays.get("observations")
        return probabilities, observations, dict(extra), "cached", input_digest

    if config.edge_backend == "em":
        result = em_learn_probabilities(
            graph,
            list(episodes),
            max_iterations=config.em_max_iterations,
            tolerance=config.em_tolerance,
            initial=config.em_initial,
        )
        probabilities = result.probabilities
        observations: Optional[np.ndarray] = result.observations
        detail: dict[str, Any] = {
            "backend": "em",
            "iterations": result.iterations,
            "converged": result.converged,
            "episodes": len(episodes),
            "log_likelihoods": [float(x) for x in result.log_likelihoods],
        }
    else:
        fitted = learn_influence_probabilities(
            graph,
            log,
            window=config.goyal_window,
            smoothing=config.goyal_smoothing,
        )
        probabilities = fitted.edge_probabilities
        observations = None
        detail = {"backend": "goyal", "events": len(list(log.canonical_events()))}

    arrays = {"probabilities": np.asarray(probabilities, dtype=np.float64)}
    if observations is not None:
        arrays["observations"] = np.asarray(observations, dtype=np.int64)
    cache.save(key, arrays, detail)
    return probabilities, observations, detail, "ran", input_digest


def _fit_gap(
    log: ActionLog,
    config: PipelineConfig,
    cache: StageCache,
    *,
    log_fp: str,
) -> tuple[LearnedGap, dict[str, Any], str, str]:
    """Stage-2 body: (learned gap, detail, status, input digest)."""
    key = {
        "stage": "fit_gap",
        "log": log_fp,
        "item_a": config.item_a,
        "item_b": config.item_b,
    }
    input_digest = cache.digest(key)
    hit = cache.load(key)
    if hit is not None:
        _arrays, extra = hit
        learned = LearnedGap(
            item_a=config.item_a,
            item_b=config.item_b,
            gap=GAP.from_mapping(extra["gap"]),
            halfwidths=dict(extra["halfwidths"]),
            samples={k: int(v) for k, v in extra["samples"].items()},
        )
        return learned, dict(extra), "cached", input_digest

    learned = learn_gap_pair(log, config.item_a, config.item_b)
    detail = {
        "gap": {name: getattr(learned.gap, name) for name in _GAP_PARAMS},
        "halfwidths": dict(learned.halfwidths),
        "samples": dict(learned.samples),
    }
    cache.save(key, {}, detail)
    return learned, detail, "ran", input_digest


def run_pipeline(
    graph: DiGraph,
    log: ActionLog,
    config: PipelineConfig,
    *,
    episodes: Optional[Sequence[np.ndarray]] = None,
    workdir: PathLike,
    truth: Optional[GAP] = None,
) -> PipelineResult:
    """Run the full log-to-query pipeline and record it in the debug DB.

    ``graph`` provides *structure only* — stage 1 refits its edge
    probabilities.  ``truth`` (a ground-truth :class:`GAP`, available for
    synthetic logs) is optional experiment metadata: when given, the
    debug DB's ``gap_fits`` rows carry per-parameter true values and
    inside-95%-CI verdicts.  On a stage failure the run is stamped
    ``failed`` in the debug DB (the failing stage row included) and the
    exception propagates.
    """
    workdir = Path(workdir)
    try:
        workdir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise PipelineError(f"unusable workdir {workdir}: {exc}") from exc
    cache = StageCache(workdir / "cache")
    db = PipelineDebugDB(workdir / DEBUG_DB_FILE)

    graph_fp = graph.fingerprint()
    log_fp = fingerprint_log(log)
    episodes_fp = (
        fingerprint_episodes(episodes) if episodes is not None else None
    )
    run_id = db.begin_run(
        config_json=config.to_json(),
        config_digest=config.digest(),
        graph_fingerprint=graph_fp,
        log_fingerprint=log_fp,
        episodes_fingerprint=episodes_fp,
        seed=config.seed,
    )

    stages: list[StageRecord] = []

    def _record(record: StageRecord, started_utc: str) -> None:
        stages.append(record)
        db.record_stage(
            run_id,
            record.stage,
            status=record.status,
            input_digest=record.input_digest,
            output_digest=record.output_digest,
            wall_s=record.wall_s,
            started_utc=started_utc,
            detail=record.detail,
        )

    def _fail(stage: str, input_digest: str, started: float,
              started_utc: str, exc: BaseException) -> None:
        _record(
            StageRecord(
                stage=stage,
                status="failed",
                wall_s=time.perf_counter() - started,
                input_digest=input_digest,
                output_digest=None,
                detail={"error": f"{type(exc).__name__}: {exc}"},
            ),
            started_utc,
        )
        db.finish_run(
            run_id,
            status="failed",
            error=f"{stage}: {type(exc).__name__}: {exc}",
            stages_run=sum(1 for s in stages if s.status == "ran"),
            stages_skipped=sum(1 for s in stages if s.status == "cached"),
        )

    # ------------------------------------------------------------------
    # Stage 1: fit edge probabilities
    # ------------------------------------------------------------------
    started_utc = utc_now_iso()
    started = time.perf_counter()
    input_digest = "?"
    try:
        _fire_site("pipeline.fit_edges")
        probabilities, observations, detail, status, input_digest = _fit_edges(
            graph, log, episodes, config, cache,
            graph_fp=graph_fp, log_fp=log_fp, episodes_fp=episodes_fp,
        )
    except BaseException as exc:
        _fail("fit_edges", input_digest, started, started_utc, exc)
        raise
    output_digest = digest_of(
        [float(p) for p in np.asarray(probabilities, dtype=np.float64)]
    )
    _record(
        StageRecord(
            stage="fit_edges",
            status=status,
            wall_s=time.perf_counter() - started,
            input_digest=input_digest,
            output_digest=output_digest,
            detail=detail,
        ),
        started_utc,
    )
    if detail.get("log_likelihoods"):
        db.record_em_trace(run_id, detail["log_likelihoods"])
    fitted_graph = graph.with_probabilities(
        np.asarray(probabilities, dtype=np.float64)
    )
    db.record_edge_fits(
        run_id,
        sources=fitted_graph.edge_sources,
        targets=fitted_graph.edge_targets,
        probabilities=fitted_graph.edge_probabilities,
        observations=observations,
    )
    em_result: Optional[EMResult] = None
    if detail.get("backend") == "em" and observations is not None:
        em_result = EMResult(
            probabilities=np.asarray(probabilities, dtype=np.float64),
            iterations=int(detail.get("iterations", 0)),
            converged=bool(detail.get("converged", False)),
            observations=np.asarray(observations, dtype=np.int64),
            log_likelihoods=tuple(detail.get("log_likelihoods", ())),
        )

    # ------------------------------------------------------------------
    # Stage 2: fit the GAP quadruple
    # ------------------------------------------------------------------
    started_utc = utc_now_iso()
    started = time.perf_counter()
    input_digest = "?"
    try:
        _fire_site("pipeline.fit_gap")
        learned, gap_detail, status, input_digest = _fit_gap(
            log, config, cache, log_fp=log_fp
        )
    except BaseException as exc:
        _fail("fit_gap", input_digest, started, started_utc, exc)
        raise
    _record(
        StageRecord(
            stage="fit_gap",
            status=status,
            wall_s=time.perf_counter() - started,
            input_digest=input_digest,
            output_digest=digest_of(gap_detail["gap"]),
            detail=gap_detail,
        ),
        started_utc,
    )
    for name in _GAP_PARAMS:
        lo, hi = learned.interval(name)
        true_value = getattr(truth, name) if truth is not None else None
        db.record_gap_fit(
            run_id,
            item_a=config.item_a,
            item_b=config.item_b,
            parameter=name,
            value=getattr(learned.gap, name),
            halfwidth=learned.halfwidths[name],
            ci_lo=lo,
            ci_hi=hi,
            samples=learned.samples[name],
            true_value=true_value,
            inside_ci=(
                None if true_value is None else bool(lo <= true_value <= hi)
            ),
        )

    # ------------------------------------------------------------------
    # Stage 3: answer the configured queries on the fitted network
    # ------------------------------------------------------------------
    started_utc = utc_now_iso()
    started = time.perf_counter()
    results: list[Any] = []
    query_key = {
        "stage": "query",
        "graph": graph_fp,
        "edges": output_digest,
        "gap": digest_of(gap_detail["gap"]),
        "queries": [q.to_dict() for q in config.queries],
        "engine": config.engine.to_dict(),
        "seed": config.seed,
    }
    session = ComICSession(
        fitted_graph,
        learned.gap,
        config=config.engine,
        rng=derive_seed(config.seed, 3),
    )
    try:
        for index, query in enumerate(config.queries):
            result = session.run(query)
            results.append(result)
            diagnostics = result.diagnostics
            db.record_query(
                run_id,
                index,
                objective=result.objective,
                query_json=query.to_json(),
                seeds=result.seeds,
                estimate=result.estimate,
                method=result.method,
                engine=result.engine,
                rr_sets_sampled=diagnostics.get("rr_sets_sampled"),
                degraded=bool(diagnostics.get("degraded", False)),
                wall_s=diagnostics.get("wall_s"),
            )
    except BaseException as exc:
        _fail("query", digest_of(query_key), started, started_utc, exc)
        raise
    finally:
        session.close()
    _record(
        StageRecord(
            stage="query",
            status="ran",
            wall_s=time.perf_counter() - started,
            input_digest=digest_of(query_key),
            output_digest=digest_of(
                [[int(s) for s in r.seeds] for r in results]
            ),
            detail={"queries": len(results)},
        ),
        started_utc,
    )

    db.finish_run(
        run_id,
        status="ok",
        stages_run=sum(1 for s in stages if s.status == "ran"),
        stages_skipped=sum(1 for s in stages if s.status == "cached"),
    )
    db.close()
    return PipelineResult(
        run_id=run_id,
        config=config,
        fitted_graph=fitted_graph,
        learned_gap=learned,
        results=results,
        stages=stages,
        db_path=str(workdir / DEBUG_DB_FILE),
        em=em_result,
    )
