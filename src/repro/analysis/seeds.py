"""Seed-set comparison metrics and incremental spread curves.

The experiments of §7 repeatedly compare seed sets produced by different
selectors (RR vs HighDegree vs PageRank vs Random) and plot spread as a
function of the seed budget (Figs. 5–6); these are the reusable
primitives behind such comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.spread import estimate_spread
from repro.rng import SeedLike, derive_seed, make_rng


def seed_jaccard(first: Iterable[int], second: Iterable[int]) -> float:
    """Jaccard similarity of two seed sets (1.0 when both are empty)."""
    a = {int(v) for v in first}
    b = {int(v) for v in second}
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def rank_weighted_overlap(
    first: Sequence[int], second: Sequence[int]
) -> float:
    """Average prefix overlap of two *ranked* seed lists (RBO-style, flat
    weights).

    For each prefix length ``d = 1 .. min(len, len)`` computes the overlap
    fraction ``|first[:d] ∩ second[:d]| / d`` and returns the mean — 1.0
    for identical rankings, 0.0 for disjoint ones.
    """
    first = [int(v) for v in first]
    second = [int(v) for v in second]
    if len(set(first)) != len(first) or len(set(second)) != len(second):
        raise SeedSetError("ranked seed lists must not contain duplicates")
    depth = min(len(first), len(second))
    if depth == 0:
        return 1.0 if not first and not second else 0.0
    total = 0.0
    seen_a: set[int] = set()
    seen_b: set[int] = set()
    overlap = 0
    for d in range(depth):
        a, b = first[d], second[d]
        if a == b:
            overlap += 1
        else:
            if a in seen_b:
                overlap += 1
            if b in seen_a:
                overlap += 1
        seen_a.add(a)
        seen_b.add(b)
        total += overlap / (d + 1)
    return total / depth


@dataclass(frozen=True)
class SpreadCurve:
    """Spread as a function of the seed-budget prefix."""

    #: evaluated budgets, ascending.
    budgets: list[int]
    #: MC mean spread per budget.
    spreads: list[float]
    #: MC standard errors per budget.
    stderrs: list[float]

    def as_rows(self) -> list[dict]:
        """Rows ``{k, spread, stderr}`` for table rendering."""
        return [
            {"k": k, "spread": s, "stderr": e}
            for k, s, e in zip(self.budgets, self.spreads, self.stderrs)
        ]

    def is_monotone(self, *, slack: float = 0.0) -> bool:
        """Whether the curve never drops by more than ``slack``."""
        return all(
            self.spreads[i + 1] >= self.spreads[i] - slack
            for i in range(len(self.spreads) - 1)
        )


def spread_curve(
    graph: DiGraph,
    gaps: GAP,
    ranked_seeds_a: Sequence[int],
    seeds_b: Sequence[int],
    *,
    budgets: Sequence[int] | None = None,
    runs: int = 300,
    rng: SeedLike = None,
) -> SpreadCurve:
    """Estimate ``sigma_A`` for each prefix of a ranked A-seed list.

    ``budgets`` defaults to ``1 .. len(ranked_seeds_a)``.  All budgets share
    a common base RNG stream (budget-salted) so curves from the same call
    are comparable run-to-run.
    """
    ranked = [int(v) for v in ranked_seeds_a]
    if len(set(ranked)) != len(ranked):
        raise SeedSetError("ranked_seeds_a must not contain duplicates")
    if budgets is None:
        budgets = list(range(1, len(ranked) + 1))
    budgets = [int(k) for k in budgets]
    for k in budgets:
        if not 0 <= k <= len(ranked):
            raise SeedSetError(
                f"budget {k} out of range [0, {len(ranked)}]"
            )
    gen = make_rng(rng)
    base = int(gen.integers(0, 2**31 - 1))
    spreads: list[float] = []
    stderrs: list[float] = []
    for k in budgets:
        estimate = estimate_spread(
            graph, gaps, ranked[:k], seeds_b,
            runs=runs, rng=derive_seed(base, k),
        )
        spreads.append(estimate.mean)
        stderrs.append(estimate.stderr)
    return SpreadCurve(budgets=budgets, spreads=spreads, stderrs=stderrs)
