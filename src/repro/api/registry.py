"""Workload registry: objective × engine × RR-regime dispatch.

The registry is the extension point of the query API.  Each workload is an
:class:`ObjectiveSpec` binding a query type to a handler (the function a
:class:`~repro.api.session.ComICSession` calls), the seed-selection
engines it supports, and the RR-set regimes it may sample.  The four paper
workloads are registered at import time; new workloads (future ROADMAP
items: multi-item RR-sets, streaming re-optimisation, ...) call
:func:`register` with their own spec and immediately gain session pooling,
diagnostics and JSON query transport.

A parallel registry maps RR-regime names to generator factories — the
session uses it to build (and key the pool cache of) the right
:class:`~repro.rrset.base.RRSetGenerator` for each query, and
:func:`generator_factory` is the single place an unknown regime can be
rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.rrset.engines import ENGINES
from repro.rrset.rr_block import RRBlockGenerator
from repro.rrset.rr_cim import RRCimGenerator
from repro.rrset.rr_ic import RRICGenerator
from repro.rrset.rr_sim import RRSimGenerator
from repro.rrset.rr_sim_plus import RRSimPlusGenerator

#: handler signature: (session, query, config, rng) -> InfluenceResult.
Handler = Callable[..., Any]

#: engine name used by Monte-Carlo workloads that never sample RR-sets.
MC_ENGINE = "mc"


@dataclass(frozen=True)
class ObjectiveSpec:
    """One registered workload.

    ``engines`` lists the seed-selection engines the workload accepts;
    ``(MC_ENGINE,)`` marks a pure Monte-Carlo workload, which ignores the
    session's RR engine choice.  ``regimes`` documents the RR-set regimes
    the handler may request from :func:`generator_factory`.
    """

    name: str
    query_type: type
    handler: Handler
    engines: tuple[str, ...] = ENGINES
    regimes: tuple[str, ...] = ()

    @property
    def rr_backed(self) -> bool:
        """Whether the workload runs on RR-set seed selection."""
        return self.engines != (MC_ENGINE,)


_REGISTRY: dict[str, ObjectiveSpec] = {}
_BY_QUERY_TYPE: dict[type, ObjectiveSpec] = {}


def register(spec: ObjectiveSpec, *, replace: bool = False) -> None:
    """Add a workload to the registry.

    Re-registering an existing name (or query type) raises unless
    ``replace=True`` — accidental shadowing of a built-in workload is
    almost always a bug.
    """
    previous = _REGISTRY.get(spec.name)
    if not replace and previous is not None:
        raise QueryError(f"objective {spec.name!r} is already registered")
    existing = _BY_QUERY_TYPE.get(spec.query_type)
    if not replace and existing is not None and existing.name != spec.name:
        raise QueryError(
            f"query type {spec.query_type.__name__} is already bound to "
            f"objective {existing.name!r}"
        )
    if previous is not None and previous.query_type is not spec.query_type:
        # Replacing a spec whose query type changed: drop the old binding
        # so the stale handler can no longer be dispatched.
        if _BY_QUERY_TYPE.get(previous.query_type) is previous:
            del _BY_QUERY_TYPE[previous.query_type]
    if replace and existing is not None and existing.name != spec.name:
        # The query type moves to a new objective name: evict the old name
        # too, or it would advertise a workload no query can reach.
        _REGISTRY.pop(existing.name, None)
    _REGISTRY[spec.name] = spec
    _BY_QUERY_TYPE[spec.query_type] = spec


def unregister(name: str) -> None:
    """Remove a workload (tests of extensibility clean up with this)."""
    spec = _REGISTRY.pop(name, None)
    if spec is None:
        raise QueryError(f"unknown objective {name!r}")
    if _BY_QUERY_TYPE.get(spec.query_type) is spec:
        del _BY_QUERY_TYPE[spec.query_type]


def known_objectives() -> tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_spec(name: str) -> ObjectiveSpec:
    """Look a workload up by name; raises for unknown objectives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown objective {name!r}; known: {', '.join(known_objectives())}"
        ) from None


def spec_for_query(query: Any) -> ObjectiveSpec:
    """Resolve the spec of a query instance; raises for unknown types."""
    spec = _BY_QUERY_TYPE.get(type(query))
    if spec is None:
        raise QueryError(
            f"no objective registered for query type "
            f"{type(query).__name__!r}; known: {', '.join(known_objectives())}"
        )
    return spec


def resolve(query: Any, engine: str) -> ObjectiveSpec:
    """Dispatch a query: find its spec and validate the engine choice.

    Monte-Carlo workloads accept any configured engine (they ignore it);
    RR-backed workloads reject engines they do not support.
    """
    spec = spec_for_query(query)
    if spec.rr_backed and engine not in spec.engines:
        raise QueryError(
            f"objective {spec.name!r} does not support engine {engine!r}; "
            f"supported: {spec.engines}"
        )
    return spec


# ----------------------------------------------------------------------
# RR-regime registry
# ----------------------------------------------------------------------

#: factory signature: (graph, gaps, opposite_seeds) -> RRSetGenerator.
GeneratorFactory = Callable[[DiGraph, GAP, tuple[int, ...]], Any]

_GENERATOR_FACTORIES: dict[str, GeneratorFactory] = {
    "rr-ic": lambda graph, gaps, opposite: RRICGenerator(graph),
    "rr-sim": RRSimGenerator,
    "rr-sim+": RRSimPlusGenerator,
    "rr-cim": RRCimGenerator,
    "rr-block": RRBlockGenerator,
}


def known_regimes() -> tuple[str, ...]:
    """Registered RR-set regime names, sorted."""
    return tuple(sorted(_GENERATOR_FACTORIES))


def generator_factory(regime: str) -> GeneratorFactory:
    """The generator factory of one RR-set regime; raises when unknown."""
    try:
        return _GENERATOR_FACTORIES[regime]
    except KeyError:
        raise QueryError(
            f"unknown RR-set regime {regime!r}; known: "
            f"{', '.join(known_regimes())}"
        ) from None


def register_regime(
    regime: str, factory: GeneratorFactory, *, replace: bool = False
) -> None:
    """Add an RR-set regime (e.g. a future RR-LT or multi-item regime)."""
    if not replace and regime in _GENERATOR_FACTORIES:
        raise QueryError(f"RR-set regime {regime!r} is already registered")
    _GENERATOR_FACTORIES[regime] = factory


def unregister_regime(regime: str) -> None:
    """Remove an RR-set regime added via :func:`register_regime`."""
    if _GENERATOR_FACTORIES.pop(regime, None) is None:
        raise QueryError(f"unknown RR-set regime {regime!r}")


# ----------------------------------------------------------------------
# Query transport
# ----------------------------------------------------------------------

def query_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild any registered query from its tagged ``to_dict`` payload."""
    tag = data.get("objective")
    if tag is None:
        raise QueryError("query payload is missing the 'objective' tag")
    return get_spec(tag).query_type.from_dict(data)


def query_from_json(payload: str) -> Any:
    """Rebuild any registered query from its ``to_json`` string."""
    import json

    return query_from_dict(json.loads(payload))


def _register_builtins() -> None:
    """Bind the four paper workloads (deferred import: handlers)."""
    from repro.api import solvers
    from repro.api.queries import (
        BlockingQuery,
        CompInfMaxQuery,
        MultiItemQuery,
        SelfInfMaxQuery,
    )

    register(
        ObjectiveSpec(
            name="selfinfmax",
            query_type=SelfInfMaxQuery,
            handler=solvers.run_selfinfmax,
            engines=ENGINES,
            regimes=("rr-sim", "rr-sim+"),
        )
    )
    register(
        ObjectiveSpec(
            name="compinfmax",
            query_type=CompInfMaxQuery,
            handler=solvers.run_compinfmax,
            engines=ENGINES,
            regimes=("rr-cim",),
        )
    )
    # Blocking and multi-item answer through either route: the RR-backed
    # path (query ``method="rr"``/eligible ``"auto"``) runs the session's
    # tim/imm engines over pooled suppression / RR-SIM sets, the MC path
    # runs the CELF / round-robin greedy directly (engine "mc").
    register(
        ObjectiveSpec(
            name="blocking",
            query_type=BlockingQuery,
            handler=solvers.run_blocking,
            engines=ENGINES,
            regimes=("rr-block",),
        )
    )
    register(
        ObjectiveSpec(
            name="multi_item",
            query_type=MultiItemQuery,
            handler=solvers.run_multi_item,
            engines=ENGINES,
            regimes=("rr-sim+",),
        )
    )


_register_builtins()
