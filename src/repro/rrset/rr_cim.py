"""RR-CIM: RR-set generation for CompInfMax (paper Algorithm 4, §6.3).

Valid regime (Theorem 8): mutual complementarity with ``q_{B|A} = 1``.
Here A and B genuinely interact, so resolving the world requires a richer
forward labeling from the fixed A-seed set (Eq. 4): each touched node gets
one of

* ``A-adopted``   — adopts A from the seeds alone;
* ``A-rejected``  — ``alpha_A > q_{A|B}``: can never adopt A;
* ``A-suspended`` — informed of A by an adopted node but needs B's boost;
* ``A-potential`` — would be informed of A only if some upstream suspended
  node were unlocked by B (information *potentially* flows through
  suspended nodes).

Labels strengthen monotonically (none < potential < suspended < adopted),
so the labeling runs as a worklist fixpoint with re-enqueue on promotion —
this realises the paper's "revisit and promote" remark.

The RR-set of a root ``v`` (empty unless ``v`` is suspended or potential)
is found by a primary backward search over AB-diffusible potential nodes,
collecting suspended nodes (Cases 1–2), launching secondary backward
searches through B-diffusible nodes from AB-diffusible suspended ones
(Case 1), and applying the zig-zag check of Case 4 to potential,
non-AB-diffusible nodes.

Local diffusibility predicates (§6.3)::

    AB-diffusible(v):  alpha_A <= q_{A|∅}  or
                       (q_{A|∅} < alpha_A <= q_{A|B} and alpha_B <= q_{B|∅})
    B-diffusible(v):   alpha_B <= q_{B|∅}  or  v labeled A-adopted
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator

# Forward-labeling labels, ordered by strength (rejected is terminal).
LABEL_REJECTED = -1
LABEL_NONE = 0
LABEL_POTENTIAL = 1
LABEL_SUSPENDED = 2
LABEL_ADOPTED = 3


def check_rr_cim_regime(gaps: GAP) -> None:
    """Raise :class:`RegimeError` unless Theorem 8's conditions hold."""
    if not gaps.is_rr_cim_regime:
        raise RegimeError(
            "RR-CIM requires mutual complementarity with q_{B|A} = 1; "
            f"got {gaps}"
        )


def forward_label_a_status(
    graph: DiGraph,
    world: WorldSource,
    gaps: GAP,
    seeds_a: Iterable[int],
) -> dict[int, int]:
    """Eq. (4) forward labeling from the A-seeds as a monotone fixpoint.

    Returns a sparse label map; untouched nodes are implicitly LABEL_NONE
    (A-idle, unreachable even potentially).
    """
    label: dict[int, int] = {}
    queue: deque[int] = deque()
    for s in seeds_a:
        s = int(s)
        if label.get(s) != LABEL_ADOPTED:
            label[s] = LABEL_ADOPTED
            queue.append(s)
    while queue:
        u = queue.popleft()
        lab_u = label.get(u, LABEL_NONE)
        if lab_u in (LABEL_NONE, LABEL_REJECTED):
            continue  # stale entry demoted before dequeue cannot occur, but be safe
        targets, probs, eids = graph.out_edges(u)
        for idx in range(targets.size):
            v = int(targets[idx])
            current = label.get(v, LABEL_NONE)
            if current in (LABEL_ADOPTED, LABEL_REJECTED):
                continue
            if not world.edge_live(int(eids[idx]), float(probs[idx])):
                continue
            alpha_a = world.alpha(v, ITEM_A)
            if alpha_a >= gaps.q_a_given_b:
                label[v] = LABEL_REJECTED
                continue
            if lab_u == LABEL_ADOPTED:
                candidate = LABEL_ADOPTED if alpha_a < gaps.q_a else LABEL_SUSPENDED
            else:
                candidate = LABEL_POTENTIAL
            if candidate > current:
                label[v] = candidate
                queue.append(v)
    return label


class RRCimGenerator(RRSetGenerator):
    """Random RR-set sampler for CompInfMax (Algorithm 4)."""

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_a: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_cim_regime(gaps)
        self._gaps = gaps
        self._seeds_a = [int(s) for s in seeds_a]
        for s in self._seeds_a:
            if not 0 <= s < graph.num_nodes:
                raise RegimeError(f"A-seed {s} out of range")

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (Q+ with ``q_{B|A} = 1``)."""
        return self._gaps

    @property
    def seeds_a(self) -> list[int]:
        """The fixed A-seed set."""
        return list(self._seeds_a)

    # ------------------------------------------------------------------
    # Diffusibility predicates (local node state in this world)
    # ------------------------------------------------------------------
    def _ab_diffusible(self, world: WorldSource, v: int) -> bool:
        alpha_a = world.alpha(v, ITEM_A)
        if alpha_a < self._gaps.q_a:
            return True
        return alpha_a < self._gaps.q_a_given_b and (
            world.alpha(v, ITEM_B) < self._gaps.q_b
        )

    def _b_diffusible(self, world: WorldSource, v: int, label: dict[int, int]) -> bool:
        if world.alpha(v, ITEM_B) < self._gaps.q_b:
            return True
        # An A-adopted node adopts B on being informed because q_{B|A} = 1.
        return label.get(v, LABEL_NONE) == LABEL_ADOPTED

    # ------------------------------------------------------------------
    # Secondary searches
    # ------------------------------------------------------------------
    def _secondary_backward_b(
        self,
        world: WorldSource,
        label: dict[int, int],
        start: int,
        rr_set: set[int],
    ) -> None:
        """Case 1: every node that can push B to ``start`` joins the RR-set.

        Reverse BFS through B-diffusible nodes; a non-B-diffusible node is
        still added (as a seed it adopts B unconditionally) but not expanded.
        """
        graph = self._graph
        visited = {start}
        queue: deque[int] = deque([start])
        while queue:
            x = queue.popleft()
            sources, probs, eids = graph.in_edges(x)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in visited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                visited.add(w)
                rr_set.add(w)
                if self._b_diffusible(world, w, label):
                    queue.append(w)

    def _case4_zigzag(
        self, world: WorldSource, label: dict[int, int], u: int
    ) -> bool:
        """Case 4: does seeding B at ``u`` unlock a suspended node that
        feeds A (and B) back to ``u``?

        Forward search ``Sf``: B-diffusible nodes reachable from ``u``
        through B-diffusible nodes (these would adopt B when ``u`` is the
        B-seed).  Backward search ``Sb``: nodes that can relay a joint A+B
        wave to ``u`` — A-adopted nodes relay unconditionally (``q_{B|A}=1``)
        and suspended/potential nodes relay when AB-diffusible.  ``u``
        qualifies iff some A-suspended node lies in both.
        """
        graph = self._graph
        forward: set[int] = set()
        fvisited = {u}
        queue: deque[int] = deque([u])
        while queue:
            x = queue.popleft()
            targets, probs, eids = graph.out_edges(x)
            for idx in range(targets.size):
                v = int(targets[idx])
                if v in fvisited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                fvisited.add(v)
                if self._b_diffusible(world, v, label):
                    forward.add(v)
                    queue.append(v)
        if not forward:
            return False
        backward: set[int] = set()
        bvisited = {u}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            sources, probs, eids = graph.in_edges(x)
            for idx in range(sources.size):
                w = int(sources[idx])
                if w in bvisited:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                bvisited.add(w)
                lab_w = label.get(w, LABEL_NONE)
                relays = lab_w == LABEL_ADOPTED or (
                    lab_w in (LABEL_POTENTIAL, LABEL_SUSPENDED)
                    and self._ab_diffusible(world, w)
                )
                if relays:
                    backward.add(w)
                    queue.append(w)
        return any(
            label.get(x, LABEL_NONE) == LABEL_SUSPENDED for x in forward & backward
        )

    # ------------------------------------------------------------------
    # RR-set generation
    # ------------------------------------------------------------------
    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        graph = self._graph
        label = forward_label_a_status(graph, world, self._gaps, self._seeds_a)
        root_label = label.get(root, LABEL_NONE)
        if root_label not in (LABEL_SUSPENDED, LABEL_POTENTIAL):
            # Already adopted, permanently rejected, or unreachable even
            # with B's help: no B-seed changes the root's A status.
            return np.empty(0, dtype=np.int64)

        rr_set: set[int] = set()
        visited = {root}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            lab_u = label.get(u, LABEL_NONE)
            if lab_u == LABEL_SUSPENDED:
                rr_set.add(u)
                if self._ab_diffusible(world, u):
                    # Case 1: remote B-seeds can unlock u.
                    self._secondary_backward_b(world, label, u, rr_set)
                # Case 2 (not AB-diffusible): only u itself as a B-seed works.
            elif lab_u == LABEL_POTENTIAL:
                if self._ab_diffusible(world, u):
                    # Case 3: u transits A+B; continue the primary search.
                    sources, probs, eids = graph.in_edges(u)
                    for idx in range(sources.size):
                        w = int(sources[idx])
                        if w in visited:
                            continue
                        if world.edge_live(int(eids[idx]), float(probs[idx])):
                            visited.add(w)
                            queue.append(w)
                else:
                    # Case 4: u blocks the wave unless seeding B at u
                    # zig-zags through a suspended unlocker.
                    if self._case4_zigzag(world, label, u):
                        rr_set.add(u)
            # Adopted / rejected / untouched nodes end the primary branch.
        return np.fromiter(rr_set, dtype=np.int64, count=len(rr_set))
