"""IMM: martingale-based influence maximization over general RR-sets.

Implements the IMM algorithm of Tang, Shi & Xiao (SIGMOD 2015), which the
paper cites as [23] — the successor of TIM that "significantly reduces the
number of RR-sets generated using martingale analysis".  The paper's §6
notes its RR-set constructions are orthogonal to this improvement and
plug straight in; this module realises that remark: :func:`general_imm`
accepts any :class:`~repro.rrset.base.RRSetGenerator` (RR-IC, RR-SIM,
RR-SIM+ or RR-CIM) and therefore solves classic InfMax, SelfInfMax and
CompInfMax alike with the tighter sample bound.

Algorithm outline (notation of [23]):

1. **Sampling** — for ``i = 1 .. log2(n) - 1`` guess ``x_i = n / 2^i`` as
   the optimum, sample until ``theta_i = lambda' / x_i`` RR-sets exist, and
   run greedy max-coverage on them.  The first guess whose covered fraction
   certifies ``n * F(S) >= (1 + eps') * x_i`` yields the lower bound
   ``LB = n * F(S) / (1 + eps')`` of ``OPT_k`` (a martingale concentration
   argument keeps every check simultaneously valid).
2. **Node selection** — top the collection up to
   ``theta = lambda* / LB`` RR-sets and return the greedy max-coverage
   seeds, a ``(1 - 1/e - eps)``-approximation w.p. ``>= 1 - n^-ell``.

As with :func:`~repro.rrset.tim.general_tim`, pure Python cannot always
afford the theoretical ``theta``, so ``IMMOptions.max_rr_sets`` caps the
sample size (trading the formal guarantee for bounded time the same way a
larger ``eps`` does).  The martingale analysis of [23] permits reusing the
sampling-phase RR-sets for selection provided the bound accounts for it via
the inflated ``ell`` used here (their Remark after Theorem 2); we follow
that practical variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.deadline import Deadline, current_deadline
from repro.errors import SeedSetError
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool
from repro.rrset.tim import (
    _log_n_choose_k,
    cooperative_top_up,
    greedy_max_coverage,
)


@dataclass(frozen=True)
class IMMOptions:
    """Knobs of :func:`general_imm`.

    ``epsilon`` is the approximation slack (the guarantee is
    ``1 - 1/e - epsilon``); ``ell`` sets the failure probability
    ``n^-ell``.  ``max_rr_sets`` bounds the total number of RR-sets ever
    generated; ``min_rr_sets`` floors the first sampling round so tiny
    graphs still average over a usable sample.
    """

    epsilon: float = 0.5
    ell: float = 1.0
    max_rr_sets: int = 50_000
    min_rr_sets: int = 200

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.ell <= 0.0:
            raise ValueError(f"ell must be positive, got {self.ell}")
        if self.max_rr_sets < 1:
            raise ValueError(f"max_rr_sets must be >= 1, got {self.max_rr_sets}")
        if self.min_rr_sets < 1:
            raise ValueError(f"min_rr_sets must be >= 1, got {self.min_rr_sets}")


@dataclass
class IMMResult:
    """Output of :func:`general_imm`."""

    seeds: list[int]
    #: total number of RR-sets used for the final selection.
    theta: int
    #: the certified lower bound on ``OPT_k`` (``nan`` if never certified
    #: before the sample cap was hit).
    lower_bound: float
    #: number of RR-sets covered by ``seeds``.
    coverage: int
    #: ``n * coverage / theta`` — RR-set estimate of the objective.
    estimated_objective: float
    #: number of sampling-phase rounds executed.
    rounds: int = 0
    #: marginal coverage gain of each seed, in selection order.
    marginal_coverage: list[int] = field(default_factory=list)
    #: whether a wall-clock deadline clipped sampling: the seeds were
    #: selected best-effort over fewer RR-sets than the accuracy target.
    degraded: bool = False
    #: human-readable reason when ``degraded`` (machine consumers should
    #: key off the flag, not parse this).
    degraded_reason: Optional[str] = None
    #: whether the adaptive sampling phase was skipped because a
    #: previously-certified ``theta`` (``pinned_theta``) was already
    #: satisfied by the caller's pool — zero RR-sets were sampled.
    pinned: bool = False


def _lambda_prime(n: int, k: int, epsilon_prime: float, ell: float) -> float:
    """``lambda'`` of [23], Eq. between Lemmas 5 and 6."""
    log_terms = _log_n_choose_k(n, k) + ell * math.log(n) + math.log(
        max(math.log2(n), 1.0)
    )
    return (2.0 + 2.0 * epsilon_prime / 3.0) * log_terms * n / (epsilon_prime**2)


def _lambda_star(n: int, k: int, epsilon: float, ell: float) -> float:
    """``lambda*`` of [23], Theorem 1's sample-size constant."""
    alpha = math.sqrt(ell * math.log(n) + math.log(2.0))
    beta = math.sqrt(
        (1.0 - 1.0 / math.e)
        * (_log_n_choose_k(n, k) + ell * math.log(n) + math.log(2.0))
    )
    return 2.0 * n * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2 / (epsilon**2)


def general_imm(
    generator: RRSetGenerator,
    k: int,
    *,
    options: Optional[IMMOptions] = None,
    rng: SeedLike = None,
    pool: Optional[RRSetPool] = None,
    candidates=None,
    deadline: Optional[Deadline] = None,
    pinned_theta: Optional[int] = None,
) -> IMMResult:
    """Run IMM on ``generator`` and return the selected seed set.

    Drop-in alternative to :func:`~repro.rrset.tim.general_tim`; same
    approximation guarantee, usually far fewer RR-sets (the point of [23]).

    ``pool`` opts into cross-run reuse: sampling rounds top up the
    caller-owned pool (the same mechanism IMM already uses internally
    across its own rounds), so a later run on the same pool samples only
    the sets it is missing — including pools warm-started from an
    on-disk :class:`~repro.store.PoolStore` snapshot; and when
    ``generator`` is a :class:`~repro.parallel.ParallelEngine`, each
    top-up arrives as a multi-core sharded batch.  ``IMMResult.theta`` reports the number of
    sets used for selection — cached sets included, capped at this run's
    ``max_rr_sets``.  ``candidates`` restricts the pickable seed nodes
    (applied to every greedy pass; the certified lower bound is then a
    bound on the candidate-restricted optimum, which only increases the
    sample size — conservative).

    ``deadline`` (explicit, or ambient via
    :func:`repro.deadline.current_deadline`) makes every top-up
    cooperative: when the budget expires, selection runs best-effort
    over whatever the pool holds (never fewer than ``min_rr_sets``) and
    the result is stamped ``degraded=True``.

    ``pinned_theta`` is the warm-start fast path: a caller that already
    certified a final theta for the *same* ``(k, epsilon, ell)`` request
    on this very pool (the session persists it in the store manifest)
    passes it here, and when the pool already holds that many sets the
    adaptive sampling phase is skipped entirely — zero RR-sets are drawn
    and the greedy selection (deterministic in the pool) reproduces the
    original answer exactly.  A pin the pool cannot satisfy is ignored
    and the adaptive run proceeds normally.
    """
    if options is None:
        options = IMMOptions()
    if deadline is None:
        deadline = current_deadline()
    graph = generator.graph
    n = graph.num_nodes
    if k < 0 or k > n:
        raise SeedSetError(f"k must lie in [0, {n}], got {k}")
    if n == 0 or k == 0:
        return IMMResult(
            seeds=[], theta=0, lower_bound=float("nan"), coverage=0,
            estimated_objective=0.0,
        )
    if (
        pinned_theta is not None
        and pool is not None
        and options.min_rr_sets <= pinned_theta <= options.max_rr_sets
        and len(pool) >= pinned_theta
    ):
        sel = (
            pool.prefix(options.max_rr_sets)
            if len(pool) > options.max_rr_sets
            else pool
        )
        seeds, covered, gains = greedy_max_coverage(
            sel, n, k, candidates=candidates
        )
        total = len(sel)
        return IMMResult(
            seeds=seeds,
            theta=total,
            lower_bound=float("nan"),
            coverage=covered,
            estimated_objective=n * covered / total if total else 0.0,
            rounds=0,
            marginal_coverage=gains,
            pinned=True,
        )
    gen = make_rng(rng)

    # ell inflated so the union bound over both phases still gives n^-ell
    # overall ([23], start of §3.2).
    ell_eff = options.ell * (1.0 + math.log(2.0) / max(math.log(n), 1.0))
    epsilon_prime = math.sqrt(2.0) * options.epsilon
    lam_prime = _lambda_prime(n, k, epsilon_prime, ell_eff)

    # One flat pool for both phases: each top-up appends the missing sets
    # through the batched engine instead of rebuilding per-round lists.
    rr_sets = pool if pool is not None else RRSetPool(n)

    clipped = False

    def top_up(target: int) -> None:
        nonlocal clipped
        target = min(target, options.max_rr_sets)
        floor = min(options.min_rr_sets, target)
        if not cooperative_top_up(
            generator, target, rr_sets, gen, deadline=deadline, floor=floor
        ):
            clipped = True

    def selection_view() -> RRSetPool:
        # max_rr_sets caps use as well as growth: a warm caller-owned pool
        # larger than this run's cap is consumed only up to the cap.
        if len(rr_sets) > options.max_rr_sets:
            return rr_sets.prefix(options.max_rr_sets)
        return rr_sets

    lower_bound = float("nan")
    rounds = 0
    max_rounds = max(int(math.log2(n)), 1)
    # The greedy is deterministic in the pool, so re-running it on an
    # unchanged pool (warm session cache, or a capped top-up) would
    # reproduce the same answer — skip those passes and reuse the last one.
    greedy_at = -1
    seeds: list[int] = []
    covered = 0
    gains: list[int] = []
    estimate = 0.0
    for i in range(1, max_rounds):
        rounds += 1
        x_i = n / (2.0**i)
        theta_i = int(math.ceil(lam_prime / x_i))
        theta_i = max(theta_i, options.min_rr_sets)
        top_up(theta_i)
        sel = selection_view()
        if len(sel) != greedy_at:
            seeds, covered, gains = greedy_max_coverage(
                sel, n, k, candidates=candidates
            )
            greedy_at = len(sel)
            estimate = n * covered / greedy_at
        if estimate >= (1.0 + epsilon_prime) * x_i:
            lower_bound = estimate / (1.0 + epsilon_prime)
            break
        if clipped or len(rr_sets) >= options.max_rr_sets:
            break

    if math.isnan(lower_bound):
        # Cap hit (or pathological graph) before certification: fall back to
        # the weakest valid bound so theta stays finite; the cap below still
        # bounds the work.
        lower_bound_for_theta = 1.0
    else:
        lower_bound_for_theta = max(lower_bound, 1.0)

    lam_star = _lambda_star(n, k, options.epsilon, ell_eff)
    theta = int(math.ceil(lam_star / lower_bound_for_theta))
    theta = int(np.clip(theta, options.min_rr_sets, options.max_rr_sets))
    if not clipped:
        top_up(theta)
    # Selection runs on everything generated (>= theta when sampling-phase
    # rounds overshot), which only sharpens the estimate — capped at this
    # run's max_rr_sets when reusing a larger caller-owned pool.
    sel = selection_view()
    if len(sel) != greedy_at:
        seeds, covered, gains = greedy_max_coverage(
            sel, n, k, candidates=candidates
        )
    total = len(sel)
    degraded_reason = None
    if clipped:
        degraded_reason = (
            f"deadline of {deadline.budget_s:g}s expired during sampling: "
            f"selected best-effort over {total} of {theta} RR-sets"
        )
    return IMMResult(
        seeds=seeds,
        theta=total,
        lower_bound=lower_bound,
        coverage=covered,
        estimated_objective=n * covered / total if total else 0.0,
        rounds=rounds,
        marginal_coverage=gains,
        degraded=clipped,
        degraded_reason=degraded_reason,
    )
