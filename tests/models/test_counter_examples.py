"""Executable versions of the paper's appendix counter-examples (A.2, B.4).

* Example 1 — self-monotonicity fails when A competes with B but B
  complements A (Figure 9): adding an A-seed lowers ``P[v adopts A]`` from
  1 to ``1 - q + q^2``; verified against the paper's closed form with the
  exact oracle.
* Example 3 — self-submodularity fails under mutual complementarity:
  verified (a) in a fixed possible world realising Figure 11's threshold
  ranges, and (b) averaged over all randomness on a 5-node instance found
  by search (the paper's exact Figure-11 wiring is not fully recoverable
  from the text, so we certify the *claim* rather than its two decimals).
* Example 4 — cross-submodularity fails under mutual complementarity even
  with ``q_{B|A} = q_{B|∅} < 1`` (the appendix's remark): fixed-world and
  averaged variants.
* Example 5 — self-submodularity fails under mutual competition (Q-):
  verified in a fixed possible world of a blocking gadget in the spirit of
  Figure 12 — two A-seeds jointly block B; the relay nodes' thresholds
  kill A feed-through, so only the full seed set lets the long A-path win.

Fixed-world tests use :class:`FrozenWorldSource`; averaged tests use the
exact enumeration oracle.  No Monte-Carlo tolerance anywhere.
"""

import numpy as np
import pytest

from repro.graph import DiGraph
from repro.models import GAP, exact_adoption_probabilities, simulate
from repro.models.possible_world import FrozenWorldSource, PossibleWorld


def world_for(graph: DiGraph, alpha_a: dict, alpha_b: dict) -> PossibleWorld:
    """All edges live; thresholds default to 0 except where specified."""
    n, m = graph.num_nodes, graph.num_edges
    aa = np.zeros(n)
    ab = np.zeros(n)
    for node, value in alpha_a.items():
        aa[node] = value
    for node, value in alpha_b.items():
        ab[node] = value
    return PossibleWorld(
        live=np.ones(m, dtype=bool),
        priority=np.linspace(0.1, 0.9, m),
        alpha_a=aa,
        alpha_b=ab,
        tau_a_first=np.ones(n, dtype=bool),
    )


def figure9_graph():
    """Example 1 gadget: s1 -> v <- w <- u <- y, with s2 -> w."""
    s1, s2, v, w, u, y = range(6)
    edges = [(s1, v, 1.0), (s2, w, 1.0), (y, u, 1.0), (u, w, 1.0), (w, v, 1.0)]
    return DiGraph.from_edges(6, edges), (s1, s2, v, w, u, y)


class TestExample1NonSelfMonotonicity:
    @pytest.mark.parametrize("q", [0.3, 0.5, 0.7])
    def test_paper_values(self, q):
        graph, (s1, s2, v, w, u, y) = figure9_graph()
        gaps = GAP(q_a=q, q_a_given_b=1.0, q_b=1.0, q_b_given_a=0.0)
        pa_small, _ = exact_adoption_probabilities(graph, gaps, [s1], [y])
        pa_large, _ = exact_adoption_probabilities(graph, gaps, [s1, s2], [y])
        # Paper: P[v A-adopted] = 1 with S = {s1}; 1 - q + q^2 with T.
        assert pa_small[v] == pytest.approx(1.0)
        assert pa_large[v] == pytest.approx(1.0 - q + q * q)
        assert pa_large[v] < pa_small[v]  # monotonicity violated


def figure11_graph():
    """Example 3/4 gadget: y -> w -> z -> v chain with x -> w and u -> v."""
    v, z, w, y, u, x = range(6)
    edges = [(y, w, 1.0), (w, z, 1.0), (z, v, 1.0), (x, w, 1.0), (u, v, 1.0)]
    return DiGraph.from_edges(6, edges), (v, z, w, y, u, x)


class TestExample3NonSelfSubmodularity:
    def test_fixed_world_violation(self):
        """Figure 11 threshold ranges: w A-ready but B-boost-gated, z blocks
        A and relays B, v needs the B boost.  Only S_A = T ∪ {u} works."""
        graph, (v, z, w, y, u, x) = figure11_graph()
        gaps = GAP(0.2, 0.9, 0.4, 0.95)
        world = world_for(
            graph,
            alpha_a={w: 0.1, z: 0.95, v: 0.5},  # w<=q_a; z>q_ab; v in (q_a,q_ab]
            alpha_b={w: 0.7, z: 0.1, v: 0.1},   # w in (q_b,q_ba]; z,v <= q_b
        )

        def activated(seeds_a):
            out = simulate(graph, gaps, seeds_a, [y], source=FrozenWorldSource(world))
            return bool(out.a_adopted[v])

        assert not activated([])
        assert not activated([u])
        assert not activated([x])
        assert activated([x, u])

    def test_averaged_violation(self):
        """Averaged over all randomness (search-found instance, Q+)."""
        graph = DiGraph.from_edges(
            5, [(0, 1, 1.0), (1, 3, 1.0), (2, 1, 1.0), (3, 0, 1.0), (3, 4, 1.0)]
        )
        gaps = GAP(0.072, 0.946, 0.203, 0.93)
        assert gaps.is_mutually_complementary
        seeds_b = [0]
        target = 4

        def p(seeds_a):
            pa, _ = exact_adoption_probabilities(graph, gaps, seeds_a, seeds_b)
            return pa[target]

        small_gain = p([1]) - p([])
        large_gain = p([3, 1]) - p([3])
        assert large_gain > small_gain + 1e-6


class TestExample4NonCrossSubmodularity:
    def test_fixed_world_violation(self):
        """Figure 11 with Example 4's ranges; B-seed sets grow."""
        graph, (v, z, w, y, u, x) = figure11_graph()
        gaps = GAP(0.2, 0.9, 0.4, 0.95)
        world = world_for(
            graph,
            alpha_a={w: 0.5, z: 0.1, v: 0.5},   # w,v in (q_a,q_ab]; z <= q_a
            alpha_b={w: 0.1, z: 0.99, v: 0.1},  # w,v <= q_b; z > q_ba
        )

        def activated(seeds_b):
            out = simulate(graph, gaps, [y], seeds_b, source=FrozenWorldSource(world))
            return bool(out.a_adopted[v])

        assert not activated([])
        assert not activated([u])
        assert not activated([x])
        assert activated([x, u])

    def test_averaged_violation_with_indifferent_b(self):
        """Appendix remark: the example applies even when
        ``q_{B|A} = q_{B|∅} < 1``."""
        graph, (v, z, w, y, u, x) = figure11_graph()
        gaps = GAP(0.1, 0.7, 0.3, 0.3)

        def p(seeds_b):
            pa, _ = exact_adoption_probabilities(graph, gaps, [y], seeds_b)
            return pa[v]

        small_gain = p([u]) - p([])
        large_gain = p([x, u]) - p([x])
        assert large_gain > small_gain + 1e-6


def figure12_style_gadget():
    """Example 5 gadget (Q-): long A-path s1 -> c1..c4 -> v; two B-paths
    y -> d_i -> m_i -> r_i -> v; blockers s2 -> m1 and s3 -> m2."""
    names = [
        "s1", "s2", "s3", "y",
        "d1", "m1", "r1", "d2", "m2", "r2",
        "c1", "c2", "c3", "c4", "v",
    ]
    ids = {name: i for i, name in enumerate(names)}
    e = [
        ("s1", "c1"), ("c1", "c2"), ("c2", "c3"), ("c3", "c4"), ("c4", "v"),
        ("y", "d1"), ("d1", "m1"), ("m1", "r1"), ("r1", "v"),
        ("y", "d2"), ("d2", "m2"), ("m2", "r2"), ("r2", "v"),
        ("s2", "m1"), ("s3", "m2"),
    ]
    edges = [(ids[a], ids[b], 1.0) for a, b in e]
    return DiGraph.from_edges(len(names), edges), ids


class TestExample5NonSubmodularityUnderCompetition:
    @pytest.mark.parametrize("q", [0.5, 0.8])
    def test_fixed_world_violation(self, q):
        """In this world the relays r_i cannot adopt A (alpha > q), so a
        lone blocker feeds nothing to v; only the joint blockade lets the
        long A-path through — f jumps from 0 to 1 at the full set."""
        graph, ids = figure12_style_gadget()
        gaps = GAP(q_a=q, q_a_given_b=0.0, q_b=1.0, q_b_given_a=0.0)
        assert gaps.is_mutually_competitive
        world = world_for(
            graph,
            alpha_a={ids["r1"]: 0.99, ids["r2"]: 0.99},  # everything else 0
            alpha_b={},
        )

        def activated(*names):
            out = simulate(
                graph, gaps, [ids[n] for n in names], [ids["y"]],
                source=FrozenWorldSource(world),
            )
            return bool(out.a_adopted[ids["v"]])

        assert not activated("s1")
        assert not activated("s1", "s2")
        assert not activated("s1", "s3")
        assert activated("s1", "s2", "s3")

    def test_blockade_probability_is_superadditive_for_full_block(self):
        """Averaged sanity: the probability that *no* B reaches v (full
        blockade) is superadditive in the blockers, the mechanism driving
        Example 5."""
        graph, ids = figure12_style_gadget()
        q = 0.5
        gaps = GAP(q_a=q, q_a_given_b=0.0, q_b=1.0, q_b_given_a=0.0)

        def p_no_b(*names):
            _, pb = exact_adoption_probabilities(
                graph, gaps, [ids[n] for n in names], [ids["y"]]
            )
            return 1.0 - pb[ids["v"]]

        base = p_no_b("s1")
        one = p_no_b("s1", "s2")
        other = p_no_b("s1", "s3")
        both = p_no_b("s1", "s2", "s3")
        assert base == pytest.approx(0.0)
        # A lone blocker spares v from B only via the q^3 feed-through
        # event (its relayed A reaches v first, which then rejects B)...
        assert one == pytest.approx(q**3)
        assert other == pytest.approx(q**3)
        # ...while jointly the blockers are strictly superadditive: the
        # blockade effect exceeds the sum of the lone-blocker effects.
        assert both > one + other - base + 1e-9
