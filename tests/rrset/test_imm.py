"""Tests for IMM: sample bounds, seed quality, parity with GeneralTIM."""

import math

import numpy as np
import pytest

from repro.errors import SeedSetError
from repro.graph import DiGraph, power_law_digraph, star_digraph
from repro.models import GAP
from repro.rrset import (
    IMMOptions,
    RRCimGenerator,
    RRICGenerator,
    RRSimPlusGenerator,
    TIMOptions,
    general_imm,
    general_tim,
)
from repro.rrset.imm import _lambda_prime, _lambda_star


@pytest.fixture(scope="module")
def small_power_law() -> DiGraph:
    return power_law_digraph(
        300, exponent=2.16, average_degree=5.0, probability=0.15, rng=11
    )


class TestOptions:
    def test_defaults_valid(self):
        IMMOptions()

    @pytest.mark.parametrize("field,value", [
        ("epsilon", 0.0),
        ("epsilon", -0.5),
        ("ell", 0.0),
        ("max_rr_sets", 0),
        ("min_rr_sets", 0),
    ])
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            IMMOptions(**{field: value})


class TestLambdaConstants:
    def test_lambda_prime_shrinks_with_epsilon(self):
        lo = _lambda_prime(1000, 10, math.sqrt(2.0) * 0.1, 1.0)
        hi = _lambda_prime(1000, 10, math.sqrt(2.0) * 1.0, 1.0)
        assert hi < lo

    def test_lambda_star_shrinks_with_epsilon(self):
        lo = _lambda_star(1000, 10, 0.1, 1.0)
        hi = _lambda_star(1000, 10, 1.0, 1.0)
        assert hi < lo
        # 1/eps^2 scaling.
        assert lo / hi == pytest.approx(100.0)

    def test_lambda_star_grows_with_ell(self):
        assert _lambda_star(1000, 10, 0.5, 2.0) > _lambda_star(1000, 10, 0.5, 1.0)


class TestEdgeCases:
    def test_k_zero(self):
        result = general_imm(RRICGenerator(star_digraph(5)), 0, rng=1)
        assert result.seeds == []
        assert result.theta == 0

    def test_k_out_of_range(self):
        gen = RRICGenerator(star_digraph(5))
        with pytest.raises(SeedSetError):
            general_imm(gen, 6)
        with pytest.raises(SeedSetError):
            general_imm(gen, -1)

    def test_k_equals_n(self):
        result = general_imm(
            RRICGenerator(star_digraph(4)), 4,
            options=IMMOptions(max_rr_sets=400), rng=3,
        )
        assert sorted(result.seeds) == [0, 1, 2, 3]


class TestSeedQuality:
    def test_star_hub_selected_first(self):
        result = general_imm(
            RRICGenerator(star_digraph(40)), 1,
            options=IMMOptions(max_rr_sets=2000), rng=5,
        )
        assert result.seeds == [0]
        assert result.estimated_objective > 1.0

    def test_deterministic_given_seed(self, small_power_law):
        gen = RRICGenerator(small_power_law)
        opts = IMMOptions(max_rr_sets=3000)
        r1 = general_imm(gen, 5, options=opts, rng=42)
        r2 = general_imm(gen, 5, options=opts, rng=42)
        assert r1.seeds == r2.seeds
        assert r1.theta == r2.theta

    def test_distinct_seeds(self, small_power_law):
        result = general_imm(
            RRICGenerator(small_power_law), 8,
            options=IMMOptions(max_rr_sets=3000), rng=9,
        )
        assert len(result.seeds) == 8
        assert len(set(result.seeds)) == 8

    def test_marginal_gains_non_increasing(self, small_power_law):
        result = general_imm(
            RRICGenerator(small_power_law), 6,
            options=IMMOptions(max_rr_sets=3000), rng=13,
        )
        gains = result.marginal_coverage
        assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))

    def test_objective_bounded_by_n(self, small_power_law):
        result = general_imm(
            RRICGenerator(small_power_law), 5,
            options=IMMOptions(max_rr_sets=2000), rng=17,
        )
        assert 0.0 < result.estimated_objective <= small_power_law.num_nodes

    def test_lower_bound_certified_on_star(self):
        # On an outward star the hub reaches everything, so the first guess
        # x_1 = n/2 certifies immediately.
        result = general_imm(
            RRICGenerator(star_digraph(64)), 1,
            options=IMMOptions(max_rr_sets=5000), rng=19,
        )
        assert not math.isnan(result.lower_bound)
        assert 1.0 <= result.lower_bound <= 64.0
        assert result.rounds >= 1


class TestParityWithTIM:
    def test_same_top_seed_as_tim(self, small_power_law):
        gen = RRICGenerator(small_power_law)
        imm = general_imm(gen, 3, options=IMMOptions(max_rr_sets=4000), rng=23)
        tim = general_tim(gen, 3, options=TIMOptions(theta_override=4000), rng=23)
        # Both must agree on the single most influential node.
        assert imm.seeds[0] == tim.seeds[0]

    def test_objectives_close(self, small_power_law):
        gen = RRICGenerator(small_power_law)
        imm = general_imm(gen, 5, options=IMMOptions(max_rr_sets=4000), rng=29)
        tim = general_tim(gen, 5, options=TIMOptions(theta_override=4000), rng=29)
        assert imm.estimated_objective == pytest.approx(
            tim.estimated_objective, rel=0.25
        )


class TestComICGenerators:
    """IMM over the paper's comparative RR-set generators."""

    def test_with_rr_sim_plus(self, small_power_law):
        gaps = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
        gen = RRSimPlusGenerator(small_power_law, gaps, seeds_b=[0, 1, 2])
        result = general_imm(gen, 4, options=IMMOptions(max_rr_sets=2500), rng=31)
        assert len(result.seeds) == 4
        assert result.theta <= 2500

    def test_with_rr_cim(self, small_power_law):
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=0.4, q_b_given_a=1.0)
        gen = RRCimGenerator(small_power_law, gaps, seeds_a=[0, 1, 2])
        result = general_imm(gen, 3, options=IMMOptions(max_rr_sets=2000), rng=37)
        assert len(result.seeds) == 3


class TestSampleEfficiency:
    def test_theta_capped(self, small_power_law):
        result = general_imm(
            RRICGenerator(small_power_law), 3,
            options=IMMOptions(max_rr_sets=500), rng=41,
        )
        assert result.theta <= 500

    def test_fewer_sets_with_larger_epsilon(self, small_power_law):
        gen = RRICGenerator(small_power_law)
        tight = general_imm(
            gen, 3, options=IMMOptions(epsilon=0.2, max_rr_sets=200_000), rng=43
        )
        loose = general_imm(
            gen, 3, options=IMMOptions(epsilon=1.0, max_rr_sets=200_000), rng=43
        )
        assert loose.theta < tight.theta
