"""Benchmark: Figure 7 — running time comparison and scalability.

Shape checks (paper):
* (a) MC Greedy is far slower than the RR-set methods;
* (b) runtime grows near-linearly with graph size (we allow generous
  slack: the ratio of per-node cost between the largest and smallest
  graphs must stay within a small constant).
* (c) — beyond the paper — the batched RR-set engine: per-RR-set cost of
  ``generate_batch`` vs the per-root oracle and end-to-end SelfInfMax
  (``general_imm``) wall time before/after, at equal ``eps``.
"""

from repro.experiments import figure7a_runtime, figure7b_scalability
from repro.experiments.harness import TableResult, timed
from repro.graph.generators import power_law_digraph
from repro.models.gaps import GAP
from repro.rrset import IMMOptions, RRICGenerator, RRSimGenerator, general_imm
from repro.rrset.base import RRSetGenerator


def bench_fig7a_runtime(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure7a_runtime(
            bench_scale, include_greedy=True, greedy_pool=15, greedy_runs=15
        ),
        rounds=1, iterations=1,
    )
    save_table(result, "figure7a_runtime")
    for row in result.rows:
        rr_time = min(row["rr_sim_s"], row["rr_sim_plus_s"])
        assert row["greedy_sim_s"] > rr_time, (
            "Greedy should be slower than the RR methods even at toy scale"
        )


def bench_fig7b_scalability(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure7b_scalability(
            bench_scale, sizes=(500, 1000, 2000), theta=1000
        ),
        rounds=1, iterations=1,
    )
    save_table(result, "figure7b_scalability")
    rows = result.rows
    per_node_small = rows[0]["rr_sim_plus_s"] / rows[0]["nodes"]
    per_node_large = rows[-1]["rr_sim_plus_s"] / rows[-1]["nodes"]
    # Near-linear: per-node cost within a 6x envelope across a 4x size range.
    assert per_node_large < 6 * per_node_small + 1e-3


class _OracleRRSim(RRSimGenerator):
    """RR-SIM with the batched fast path disabled (the 'before' engine)."""

    generate_batch = RRSetGenerator.generate_batch


def _figure7c_batched_engine(n: int = 4000, samples: int = 2000, k: int = 4):
    gaps = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.5)
    graph = power_law_digraph(
        n, exponent=2.16, average_degree=8.0, probability=0.2, rng=130
    )
    seeds_b = list(range(10))
    rows = []
    pairs = [
        ("rr_ic", RRICGenerator(graph), None),
        ("rr_sim", RRSimGenerator(graph, gaps, seeds_b),
         _OracleRRSim(graph, gaps, seeds_b)),
    ]
    for name, generator, oracle_engine in pairs:
        _, t_oracle = timed(lambda: generator.generate_many(samples // 4, rng=1))
        _, t_batch = timed(lambda: generator.generate_batch(samples, rng=1))
        row = {
            "generator": name,
            "per_root_us_per_set": round(1e6 * t_oracle / (samples // 4), 2),
            "batched_us_per_set": round(1e6 * t_batch / samples, 2),
            "generation_speedup": round(
                (t_oracle / (samples // 4)) / (t_batch / samples), 2
            ),
        }
        if oracle_engine is not None:
            options = IMMOptions(epsilon=0.5, max_rr_sets=samples)
            result_new, t_new = timed(
                lambda: general_imm(generator, k, options=options, rng=7)
            )
            result_old, t_old = timed(
                lambda: general_imm(oracle_engine, k, options=options, rng=7)
            )
            row.update(
                imm_batched_s=round(t_new, 3),
                imm_oracle_s=round(t_old, 3),
                imm_speedup=round(t_old / max(t_new, 1e-9), 2),
                imm_batched_objective=round(result_new.estimated_objective, 1),
                imm_oracle_objective=round(result_old.estimated_objective, 1),
            )
        rows.append(row)
    return TableResult(
        title="Figure 7(c): batched RR-set engine vs per-root oracle",
        columns=sorted({key for row in rows for key in row}),
        rows=rows,
        notes=f"power-law graph n={n}, {samples} RR-sets, k={k}, eps=0.5",
    )


def bench_fig7c_batched_engine(benchmark, save_table):
    result = benchmark.pedantic(_figure7c_batched_engine, rounds=1, iterations=1)
    save_table(result, "figure7c_batched_engine")
    for row in result.rows:
        assert row["generation_speedup"] > 1.0, (
            "batched generation should beat the per-root oracle"
        )
