"""IMM vs GeneralTIM: two seed-selection engines over the same RR-sets.

The paper's RR-set constructions (RR-SIM+, RR-CIM) are orthogonal to the
seed-selection engine that consumes them.  This example runs both engines
on one SelfInfMax instance and reports sample counts, seed agreement, and
the Monte-Carlo spread of each seed set — the expected outcome is IMM
matching TIM's quality with a fraction of the RR-sets.

Run:  python examples/imm_vs_tim.py
"""

import time

from repro import GAP, estimate_spread
from repro.analysis import seed_jaccard
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.rrset import (
    IMMOptions,
    RRSimPlusGenerator,
    TIMOptions,
    general_imm,
    general_tim,
)


def main() -> None:
    graph = weighted_cascade_probabilities(power_law_digraph(800, rng=21))
    gaps = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
    seeds_b = list(range(5))
    generator = RRSimPlusGenerator(graph, gaps, seeds_b)
    k = 8
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges; k={k}")

    started = time.perf_counter()
    imm = general_imm(
        generator, k, options=IMMOptions(epsilon=0.5, max_rr_sets=30_000), rng=1
    )
    imm_seconds = time.perf_counter() - started

    started = time.perf_counter()
    tim = general_tim(
        generator, k, options=TIMOptions(epsilon=0.5, max_rr_sets=30_000), rng=1
    )
    tim_seconds = time.perf_counter() - started

    print(f"IMM: {imm.theta:>6} RR-sets in {imm_seconds:5.2f}s "
          f"(lower bound on OPT: {imm.lower_bound:.1f}, "
          f"{imm.rounds} sampling rounds)")
    print(f"TIM: {tim.theta:>6} RR-sets in {tim_seconds:5.2f}s "
          f"(KPT estimate: {tim.kpt:.1f})")
    print(f"seed-set Jaccard overlap: {seed_jaccard(imm.seeds, tim.seeds):.2f}")

    for name, result in (("IMM", imm), ("TIM", tim)):
        spread = estimate_spread(
            graph, gaps, result.seeds, seeds_b, runs=400, rng=9
        )
        print(f"sigma_A({name} seeds) = {spread.mean:.1f} ± {spread.stderr:.1f}")


if __name__ == "__main__":
    main()
