"""CompInfMax solver (Problem 2): GeneralTIM + RR-CIM + Sandwich.

Given a fixed A-seed set and mutually complementary GAPs, find ``k``
B-seeds maximising the boost ``sigma_A(S_A, S_B) - sigma_A(S_A, ∅)``:

* when ``q_{B|A} = 1`` the boost is monotone and cross-submodular
  (Theorems 3, 5) and one GeneralTIM run over RR-CIM carries the guarantee
  (Theorem 8);
* otherwise the solver applies the one-sided Sandwich Approximation of
  §6.4: the upper bound ``nu`` raises ``q_{B|A}`` to 1 (Theorem 10), its
  seed set — plus optionally an MC-greedy candidate on the true boost —
  is evaluated under the unmodified GAPs and the best candidate wins.

:func:`theorem2_optimal_b_seeds` implements the provably-optimal special
case of Theorem 2 (``q_{B|∅} = 1`` and ``k >= |S_A|``): copy the A-seeds
and pad arbitrarily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import RegimeError, SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.spread import estimate_boost
from repro.rng import SeedLike, make_rng
from repro.rrset.engines import SelectionResult, run_seed_selection
from repro.rrset.imm import IMMOptions
from repro.rrset.rr_cim import RRCimGenerator
from repro.rrset.tim import TIMOptions
from repro.algorithms.greedy import greedy_compinfmax
from repro.algorithms.sandwich import SandwichResult, sandwich_select


@dataclass
class CompInfMaxResult:
    """Solution of one CompInfMax instance."""

    seeds: list[int]
    #: "submodular" (single TIM/IMM run), "sandwich", or "theorem2".
    method: str
    tim_results: dict[str, SelectionResult] = field(default_factory=dict)
    sandwich: Optional[SandwichResult] = None
    #: MC estimate of the boost at the returned seeds (sandwich path only).
    estimated_boost: Optional[float] = None


def theorem2_optimal_b_seeds(
    graph: DiGraph,
    seeds_a: Sequence[int],
    k: int,
    *,
    rng: SeedLike = None,
) -> list[int]:
    """Optimal B-seeds when ``q_{B|∅} = 1`` and ``k >= |S_A|`` (Theorem 2).

    Returns ``S_A`` plus ``k - |S_A|`` arbitrary (here: random) extra nodes.
    """
    seeds_a = [int(s) for s in dict.fromkeys(int(s) for s in seeds_a)]
    if k < len(seeds_a):
        raise SeedSetError(
            f"Theorem 2 needs k >= |S_A|; got k={k}, |S_A|={len(seeds_a)}"
        )
    gen = make_rng(rng)
    chosen = list(seeds_a)
    remaining = [v for v in range(graph.num_nodes) if v not in set(chosen)]
    extra = k - len(chosen)
    if extra > len(remaining):
        raise SeedSetError(f"cannot select {k} seeds from {graph.num_nodes} nodes")
    if extra:
        picked = gen.choice(len(remaining), size=extra, replace=False)
        chosen.extend(remaining[int(i)] for i in picked)
    return chosen


def solve_compinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    k: int,
    *,
    options: TIMOptions = TIMOptions(),
    rng: SeedLike = None,
    evaluation_runs: int = 200,
    include_greedy_candidate: bool = False,
    greedy_runs: int = 50,
    engine: str = "tim",
    imm_options: Optional[IMMOptions] = None,
) -> CompInfMaxResult:
    """Solve CompInfMax; see the module docstring for the strategy.

    ``engine`` selects the seed-selection algorithm over RR-sets:
    ``"tim"`` (GeneralTIM, [24]) or ``"imm"`` (martingale IMM, [23]).
    """
    if not gaps.is_mutually_complementary:
        raise RegimeError(
            f"CompInfMax is defined for mutually complementary GAPs (Q+); got {gaps}"
        )
    gen = make_rng(rng)
    seeds_a = [int(s) for s in seeds_a]

    if gaps.q_b_given_a == 1.0:
        generator = RRCimGenerator(graph, gaps, seeds_a)
        tim = run_seed_selection(
            generator, k, engine=engine, options=options,
            imm_options=imm_options, rng=gen,
        )
        return CompInfMaxResult(
            seeds=tim.seeds, method="submodular", tim_results={"sigma": tim}
        )

    nu_gaps = gaps.with_q_b_given_a_one()
    tim_nu = run_seed_selection(
        RRCimGenerator(graph, nu_gaps, seeds_a), k,
        engine=engine, options=options, imm_options=imm_options, rng=gen,
    )
    candidates: dict[str, list[int]] = {"nu": tim_nu.seeds}
    if include_greedy_candidate:
        candidates["sigma"] = greedy_compinfmax(
            graph, gaps, seeds_a, k, runs=greedy_runs, rng=gen
        )
    eval_seed = int(gen.integers(0, 2**31 - 1))

    def boost(seed_list: Sequence[int]) -> float:
        if not seed_list:
            return 0.0
        return estimate_boost(
            graph, gaps, seeds_a, seed_list, runs=evaluation_runs, rng=eval_seed
        ).mean

    chosen = sandwich_select(candidates, boost)
    return CompInfMaxResult(
        seeds=chosen.seeds,
        method="sandwich",
        tim_results={"nu": tim_nu},
        sandwich=chosen,
        estimated_boost=chosen.value,
    )
