"""Tests for Monte-Carlo spread and boost estimation."""

import numpy as np
import pytest

from repro.graph import DiGraph, path_digraph
from repro.models import (
    GAP,
    SpreadEstimate,
    estimate_boost,
    estimate_spread,
    estimate_spread_both,
    exact_spread,
)


class TestSpreadEstimate:
    def test_stderr(self):
        est = SpreadEstimate(mean=10.0, std=2.0, runs=400)
        assert est.stderr == pytest.approx(0.1)

    def test_confidence_interval(self):
        est = SpreadEstimate(mean=10.0, std=2.0, runs=400)
        low, high = est.confidence_interval()
        assert low == pytest.approx(10.0 - 1.96 * 0.1)
        assert high == pytest.approx(10.0 + 1.96 * 0.1)

    def test_float_conversion(self):
        assert float(SpreadEstimate(3.5, 0.0, 1)) == 3.5

    def test_zero_runs(self):
        assert SpreadEstimate(0.0, 0.0, 0).stderr == float("inf")


class TestEstimateSpread:
    def test_matches_exact_on_small_graph(self):
        g = path_digraph(3)
        gaps = GAP(q_a=0.5, q_a_given_b=0.5, q_b=0.0, q_b_given_a=0.0)
        exact_a, _ = exact_spread(g, gaps, [0], [])
        est = estimate_spread(g, gaps, [0], [], runs=5000, rng=0)
        assert est.mean == pytest.approx(exact_a, abs=5 * est.stderr)

    def test_item_b(self):
        g = path_digraph(3)
        est = estimate_spread(g, GAP.independent(), [], [0], runs=50, rng=0, item="b")
        assert est.mean == pytest.approx(3.0)

    def test_invalid_item(self):
        with pytest.raises(ValueError):
            estimate_spread(path_digraph(2), GAP.independent(), [0], [], item="c")

    def test_both(self):
        g = path_digraph(4)
        est_a, est_b = estimate_spread_both(
            g, GAP.independent(), [0], [0], runs=50, rng=0
        )
        assert est_a.mean == pytest.approx(4.0)
        assert est_b.mean == pytest.approx(4.0)

    def test_deterministic_with_seed(self):
        g = path_digraph(5, probability=0.5)
        a = estimate_spread(g, GAP.classic_ic(), [0], [], runs=100, rng=42)
        b = estimate_spread(g, GAP.classic_ic(), [0], [], runs=100, rng=42)
        assert a.mean == b.mean


class TestEstimateBoost:
    def test_matches_exact_difference(self):
        g = path_digraph(3)
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=1.0, q_b_given_a=1.0)
        with_b, _ = exact_spread(g, gaps, [0], [0])
        without_b, _ = exact_spread(g, gaps, [0], [])
        est = estimate_boost(g, gaps, [0], [0], runs=4000, rng=0)
        assert est.mean == pytest.approx(with_b - without_b, abs=5 * est.stderr + 1e-9)

    def test_paired_variance_is_lower(self):
        g = path_digraph(6, probability=0.7)
        gaps = GAP(q_a=0.3, q_a_given_b=0.9, q_b=0.8, q_b_given_a=1.0)
        paired = estimate_boost(g, gaps, [0], [0], runs=800, rng=1, paired=True)
        unpaired = estimate_boost(g, gaps, [0], [0], runs=800, rng=1, paired=False)
        assert paired.std < unpaired.std

    def test_zero_boost_without_b_seeds(self):
        g = path_digraph(3)
        gaps = GAP(0.3, 0.9, 0.5, 1.0)
        est = estimate_boost(g, gaps, [0], [], runs=50, rng=0)
        assert est.mean == pytest.approx(0.0)

    def test_boost_nonnegative_in_q_plus(self):
        g = DiGraph.from_edges(4, [(0, 1, 0.8), (1, 2, 0.7), (0, 3, 0.6)])
        gaps = GAP(0.2, 0.9, 0.5, 1.0)
        est = estimate_boost(g, gaps, [0], [2], runs=400, rng=3)
        assert est.mean >= 0.0
