"""repro.store — persistent, validated on-disk RR-set pool snapshots.

RR-pool generation is the dominant cost of every RR-backed query, and a
:class:`~repro.api.session.ComICSession` already amortises it *within* a
process via its pool cache.  This package extends the amortisation
*across* processes: a :class:`PoolStore` saves each pool's flat CSR
columns as mmap-loadable ``.npy`` files plus a JSON
:class:`~repro.store.manifest.PoolManifest` carrying the full cache
identity — the :class:`PoolKey` (regime, GAPs, opposite seeds), the
graph fingerprint, and column checksums — so a second process can warm-
start the same query with **zero** RR-set sampling, and a store can never
silently serve a pool sampled from a different problem.

Typical use goes through the session (``ComICSession(graph, gaps,
store="pools/")``), but the store is a standalone component::

    from repro.store import PoolKey, PoolStore

    store = PoolStore("pools/")
    key = PoolKey.make("rr-sim", gaps, seeds_b)
    store.save(key, pool, graph_fingerprint=graph.fingerprint())
    warm = store.load(key, graph_fingerprint=graph.fingerprint())
"""

from repro.errors import StoreError, StoreIntegrityError
from repro.store.keys import PoolKey
from repro.store.manifest import FORMAT_VERSION, PoolManifest
from repro.store.pool_store import PoolStore, StoreStats

__all__ = [
    "FORMAT_VERSION",
    "PoolKey",
    "PoolManifest",
    "PoolStore",
    "StoreError",
    "StoreIntegrityError",
    "StoreStats",
]
