"""PoolCatalog + CatalogedPoolStore: rows, counters, reconcile, quota GC."""

import os
import sqlite3

import numpy as np
import pytest

from repro.models import GAP
from repro.rrset.pool import RRSetPool
from repro.service.catalog import (
    CATALOG_FILE,
    CatalogedPoolStore,
    PoolCatalog,
)
from repro.store import PoolKey, PoolStore

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "a" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])
KEY2 = PoolKey.make("rr-sim", GAPS, [2, 3])


def make_pool(num_nodes=40, sets=25, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    pool = RRSetPool(num_nodes)
    for _ in range(sets):
        size = int(gen.integers(0, 6))
        pool.append(gen.integers(0, num_nodes, size=size))
    return pool


def entry_disk_bytes(store, digest):
    """Actual column bytes of one installed entry (data files only)."""
    total = 0
    entry = store.root / digest
    for name in ("nodes.npy", "indptr.npy"):
        path = entry / name
        if path.exists():
            total += path.stat().st_size
    return total


@pytest.fixture
def store(tmp_path):
    return CatalogedPoolStore(tmp_path / "pools")


class TestCatalogConnection:
    def test_pragmas_applied(self, store):
        conn = store.catalog._conn()
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30_000
        assert conn.execute("PRAGMA foreign_keys").fetchone()[0] == 1

    def test_database_lives_in_store_root(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        assert (store.root / CATALOG_FILE).exists()

    def test_schema_version_recorded(self, store):
        row = store.catalog._conn().execute(
            "SELECT value FROM catalog_meta WHERE key='schema_version'"
        ).fetchone()
        assert row[0] == "1"

    def test_catalog_database_is_not_an_entry(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        digests = {m.key.digest() for m in store.entries()}
        assert digests == {KEY.digest()}


class TestRowLifecycle:
    def test_save_upserts_full_row(self, store):
        pool = make_pool()
        store.save(KEY, pool, graph_fingerprint=FP)
        row = store.catalog.row(KEY.digest())
        assert row is not None
        assert row["regime"] == "rr-sim"
        assert row["graph_fingerprint"] == FP
        assert row["num_sets"] == len(pool)
        assert row["total_nodes"] == pool.total_nodes
        assert row["nbytes"] == pool.total_nodes * 4 + (len(pool) + 1) * 8
        assert row["saves"] == 1 and row["hits"] == 0 and row["loads"] == 0
        assert row["created_utc"].endswith("Z")

    def test_resave_bumps_saves_and_preserves_created(self, store):
        store.save(KEY, make_pool(sets=10), graph_fingerprint=FP)
        created = store.catalog.row(KEY.digest())["created_utc"]
        store.save(KEY, make_pool(sets=20), graph_fingerprint=FP)
        row = store.catalog.row(KEY.digest())
        assert row["saves"] == 2
        assert row["created_utc"] == created
        assert row["num_sets"] == 20

    def test_load_hit_bumps_counters_and_lru(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        before = store.catalog.row(KEY.digest())["last_used_utc"]
        assert store.load(KEY, graph_fingerprint=FP) is not None
        row = store.catalog.row(KEY.digest())
        assert row["hits"] == 1 and row["loads"] == 1
        assert row["last_used_utc"] >= before

    def test_miss_does_not_create_a_row(self, store):
        assert store.load(KEY2, graph_fingerprint=FP) is None
        assert store.catalog.row(KEY2.digest()) is None

    def test_invalidation_forgets_the_row(self, store, tmp_path):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint="b" * 64) is None
        assert store.stats.invalidations == 1
        assert store.catalog.row(KEY.digest()) is None

    def test_delete_and_clear_forget_rows(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.save(KEY2, make_pool(rng_seed=1), graph_fingerprint=FP)
        store.delete(KEY)
        assert store.catalog.row(KEY.digest()) is None
        store.clear()
        assert store.catalog.rows() == []

    def test_theta_persisted_from_selection_provenance(self, store):
        store.save(
            KEY, make_pool(), graph_fingerprint=FP,
            provenance={"selection": {"engine": "imm", "theta": 321}},
        )
        assert store.catalog.row(KEY.digest())["theta"] == 321


class TestReconcile:
    def test_adopts_entries_written_by_plain_store(self, tmp_path):
        plain = PoolStore(tmp_path / "pools")
        plain.save(KEY, make_pool(), graph_fingerprint=FP)
        cataloged = CatalogedPoolStore(tmp_path / "pools")
        row = cataloged.catalog.row(KEY.digest())
        assert row is not None and row["saves"] == 0

    def test_drops_rows_whose_entries_vanished(self, store, tmp_path):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        PoolStore(store.root).delete(KEY)  # behind the catalog's back
        outcome = store.catalog.reconcile(store)
        assert outcome["dropped"] == 1
        assert store.catalog.rows() == []

    def test_lost_catalog_database_rebuilds(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.catalog.close()
        os.unlink(store.catalog.path)
        rebuilt = CatalogedPoolStore(store.root)
        assert rebuilt.catalog.row(KEY.digest()) is not None


class TestQuotaGC:
    def test_gc_provably_bounds_on_disk_bytes(self, tmp_path):
        """Save pools past the quota; catalog AND disk stay bounded."""
        quota = 10_000
        store = CatalogedPoolStore(tmp_path / "pools", max_store_bytes=quota)
        keys = [
            PoolKey.make("rr-sim", GAPS, [i, i + 1]) for i in range(0, 16, 2)
        ]
        for i, key in enumerate(keys):
            store.save(
                key, make_pool(sets=200, rng_seed=i), graph_fingerprint=FP
            )
            assert store.catalog.total_bytes() <= quota
        assert store.gc_evictions > 0
        # the catalog's accounting matches the surviving directories, and
        # the actual bytes in column files sit under the quota too
        survivors = {row["digest"] for row in store.catalog.rows()}
        on_disk = {m.key.digest() for m in store.entries()}
        assert survivors == on_disk
        actual = sum(entry_disk_bytes(store, digest) for digest in survivors)
        # npy headers add ~128B per column over the catalog's data bytes
        assert actual <= quota + len(survivors) * 256

    def test_eviction_is_lru(self, tmp_path):
        store = CatalogedPoolStore(tmp_path / "pools", max_store_bytes=None)
        store.save(KEY, make_pool(sets=50), graph_fingerprint=FP)
        store.save(KEY2, make_pool(sets=50, rng_seed=1), graph_fingerprint=FP)
        # touch KEY so KEY2 becomes the least recently used
        assert store.load(KEY, graph_fingerprint=FP) is not None
        store._max_store_bytes = store.catalog.row(KEY.digest())["nbytes"]
        evicted = store.enforce_quota()
        assert KEY2.digest() in evicted
        assert store.catalog.row(KEY.digest()) is not None
        assert not (store.root / KEY2.digest()).exists()

    def test_quota_enforced_at_construction(self, tmp_path):
        unbounded = CatalogedPoolStore(tmp_path / "pools")
        unbounded.save(KEY, make_pool(sets=100), graph_fingerprint=FP)
        unbounded.catalog.close()
        bounded = CatalogedPoolStore(tmp_path / "pools", max_store_bytes=1)
        assert bounded.catalog.total_bytes() == 0
        assert bounded.gc_evictions == 1

    def test_unbounded_store_never_evicts(self, store):
        for i in range(5):
            key = PoolKey.make("rr-sim", GAPS, [10 + i])
            store.save(key, make_pool(rng_seed=i), graph_fingerprint=FP)
        assert store.enforce_quota() == []
        assert store.gc_evictions == 0

    def test_negative_quota_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_store_bytes"):
            CatalogedPoolStore(tmp_path / "pools", max_store_bytes=-1)


class TestMultiConnection:
    def test_two_catalogs_share_one_database(self, tmp_path):
        store = CatalogedPoolStore(tmp_path / "pools")
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        other = PoolCatalog(store.catalog.path)
        assert other.row(KEY.digest()) is not None
        assert other.total_bytes() == store.catalog.total_bytes()

    def test_concurrent_writers_interleave_without_error(self, tmp_path):
        store = CatalogedPoolStore(tmp_path / "pools")
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        manifest = store.manifest(KEY)
        other = PoolCatalog(store.catalog.path)
        for _ in range(10):
            other.record_hit(manifest)
            store.catalog.record_hit(manifest)
        assert store.catalog.row(KEY.digest())["hits"] == 20

    def test_sqlite_file_is_wal(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        with sqlite3.connect(store.catalog.path) as conn:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
