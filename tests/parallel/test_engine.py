"""ParallelEngine: sharded generation correctness and selection parity.

Worker processes are real (spawned) even on single-core CI boxes — these
tests assert *correctness* (counts, determinism, top-up semantics,
selection quality parity), never wall-clock speedups, which
``benchmarks/bench_rrset_quick.py`` gates on multi-core runners instead.
One engine per regime is module-scoped so the suite pays each worker
pool's spawn cost once.
"""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.parallel import ParallelEngine
from repro.rrset import (
    RRBlockGenerator,
    RRCimGenerator,
    RRICGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
    TIMOptions,
    general_tim,
)
from repro.rrset.pool import RRSetPool

GAPS_SIM = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
GAPS_CIM = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=1.0)
GAPS_BLOCK = GAP(q_a=0.6, q_a_given_b=0.1, q_b=0.7, q_b_given_a=0.7)
OPPOSITE = [0, 1, 2]


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(300, rng=5))


def regime_generators(graph):
    return {
        "rr-ic": RRICGenerator(graph),
        "rr-sim": RRSimGenerator(graph, GAPS_SIM, OPPOSITE),
        "rr-sim+": RRSimPlusGenerator(graph, GAPS_SIM, OPPOSITE),
        "rr-cim": RRCimGenerator(graph, GAPS_CIM, OPPOSITE),
        "rr-block": RRBlockGenerator(graph, GAPS_BLOCK, OPPOSITE),
    }


@pytest.fixture(scope="module")
def engine(graph):
    eng = ParallelEngine(
        RRSimGenerator(graph, GAPS_SIM, OPPOSITE), 2, min_batch_per_worker=1
    )
    with eng:
        eng.warm_up(settle_s=0.5)
        yield eng


class TestGenerateBatch:
    def test_counts_and_universe(self, engine, graph):
        pool = engine.generate_batch(101, rng=3)
        assert len(pool) == 101
        assert pool.num_nodes == graph.num_nodes
        if pool.total_nodes:
            assert 0 <= int(pool.nodes.min())
            assert int(pool.nodes.max()) < graph.num_nodes

    def test_deterministic_for_a_seed(self, engine):
        a = engine.generate_batch(80, rng=42)
        b = engine.generate_batch(80, rng=42)
        assert np.array_equal(a.nodes, b.nodes)
        assert np.array_equal(a.indptr, b.indptr)

    def test_successive_calls_differ(self, engine):
        gen = np.random.default_rng(7)
        a = engine.generate_batch(80, rng=gen)
        b = engine.generate_batch(80, rng=gen)
        assert not (
            np.array_equal(a.nodes, b.nodes)
            and np.array_equal(a.indptr, b.indptr)
        )

    def test_top_up_appends_to_existing_pool(self, engine):
        pool = engine.generate_batch(40, rng=1)
        kept_nodes = pool.nodes.copy()
        out = engine.generate_batch(60, rng=2, out=pool)
        assert out is pool
        assert len(pool) == 100
        assert np.array_equal(pool.nodes[: kept_nodes.size], kept_nodes)

    def test_pinned_roots_are_sharded_in_order(self, engine, graph):
        roots = np.arange(50, dtype=np.int64) % graph.num_nodes
        pool = engine.generate_batch(0, rng=3, roots=roots)
        assert len(pool) == 50
        oracle_roots_pool = engine.generate_batch(0, rng=3, roots=roots)
        assert np.array_equal(pool.nodes, oracle_roots_pool.nodes)

    def test_oracle_generate_delegates_inprocess(self, engine):
        rr_set = engine.generate(rng=5, root=10)
        expected = engine.inner.generate(rng=5, root=10)
        assert np.array_equal(rr_set, expected)


class TestConstruction:
    def test_single_worker_is_serial_passthrough(self, graph):
        inner = RRICGenerator(graph)
        eng = ParallelEngine(inner, 1)
        serial = inner.generate_batch(30, rng=9)
        wrapped = eng.generate_batch(30, rng=9)
        assert np.array_equal(serial.nodes, wrapped.nodes)
        assert np.array_equal(serial.indptr, wrapped.indptr)

    def test_small_batches_stay_serial(self, graph):
        inner = RRICGenerator(graph)
        eng = ParallelEngine(inner, 2, min_batch_per_worker=1000)
        pool = eng.generate_batch(50, rng=9)  # never spawns workers
        assert len(pool) == 50
        assert eng._executor is None
        serial = inner.generate_batch(50, rng=9)
        assert np.array_equal(serial.nodes, pool.nodes)

    def test_invalid_arguments(self, graph):
        inner = RRICGenerator(graph)
        with pytest.raises(ValueError, match="workers"):
            ParallelEngine(inner, 0)
        with pytest.raises(ValueError, match="min_batch_per_worker"):
            ParallelEngine(inner, 2, min_batch_per_worker=0)
        with pytest.raises(ValueError, match="nest"):
            ParallelEngine(ParallelEngine(inner, 1), 2)

    def test_close_is_idempotent_and_terminal(self, graph):
        eng = ParallelEngine(RRICGenerator(graph), 2, min_batch_per_worker=1)
        eng.generate_batch(10, rng=0)
        eng.close()
        eng.close()  # double-close is a no-op
        assert eng.closed
        # a closed engine refuses to resurrect: stale references (e.g. to
        # an evicted session pool entry) fail with a clear error instead
        # of a BrokenProcessPool from a half-dead executor.
        with pytest.raises(ParallelError, match="closed"):
            eng.generate_batch(10, rng=0)
        with pytest.raises(ParallelError, match="closed"):
            eng.generate(rng=0)
        with pytest.raises(ParallelError, match="closed"):
            eng.warm_up()

    def test_context_manager_closes(self, graph):
        with ParallelEngine(
            RRICGenerator(graph), 2, min_batch_per_worker=1
        ) as eng:
            assert len(eng.generate_batch(10, rng=0)) == 10
        assert eng.closed


class TestSelectionParity:
    """Parallel sampling must not degrade seed quality, in any regime.

    Both engines select on equally-sized fixed-theta pools; quality is
    compared as greedy coverage on one *common* serially-generated
    reference pool, which cancels sampling noise in the yardstick.
    """

    THETA = 600
    K = 5

    @pytest.mark.parametrize(
        "regime", ["rr-ic", "rr-sim", "rr-sim+", "rr-cim", "rr-block"]
    )
    def test_parallel_matches_serial_selection(self, graph, regime):
        inner = regime_generators(graph)[regime]
        options = TIMOptions(theta_override=self.THETA, max_rr_sets=self.THETA)
        serial = general_tim(inner, self.K, options=options, rng=21)
        with ParallelEngine(inner, 2, min_batch_per_worker=1) as eng:
            parallel = general_tim(eng, self.K, options=options, rng=21)
        assert len(parallel.seeds) == len(serial.seeds)
        reference = inner.generate_batch(1500, rng=99)
        cover_serial = _coverage(reference, serial.seeds, graph.num_nodes)
        cover_parallel = _coverage(reference, parallel.seeds, graph.num_nodes)
        # parity within sampling noise; sparse regimes can have near-zero
        # coverage, so allow a small absolute slack as well
        assert cover_parallel >= 0.8 * cover_serial - 5


class TestSessionIntegration:
    def test_workers_config_engages_parallel_engine(self, graph):
        from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery

        config = EngineConfig(engine="imm", max_rr_sets=1200, workers=2)
        session = ComICSession(graph, GAPS_SIM, config=config, rng=3)
        result = session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=3))
        assert len(result.seeds) == 3
        assert result.diagnostics["rr_sets_sampled"] > 0
        (entry,) = session._pools.values()
        assert entry.parallel is not None
        assert entry.parallel.workers == 2
        # serial follow-up on the same pool does not touch the worker pool
        session.run(
            SelfInfMaxQuery(seeds_b=(0, 1), k=4),
            config=EngineConfig(engine="imm", max_rr_sets=1200),
        )
        session.clear_pools()  # shuts the workers down
        assert entry.parallel is None


def _coverage(pool: RRSetPool, seeds, num_nodes: int) -> int:
    mask = np.zeros(num_nodes, dtype=bool)
    mask[list(seeds)] = True
    return int(pool.intersects(mask).sum())
