"""Registry dispatch: error paths and extensibility."""

from dataclasses import dataclass

import pytest

from repro.api import (
    BlockingQuery,
    ComICSession,
    EngineConfig,
    InfluenceResult,
    ObjectiveSpec,
    SelfInfMaxQuery,
    generator_factory,
    get_spec,
    known_objectives,
    known_regimes,
    register,
    register_regime,
    resolve,
    spec_for_query,
    unregister,
    unregister_regime,
)
from repro.api.queries import _QueryBase
from repro.errors import QueryError, RegimeError
from repro.graph import star_digraph
from repro.models import GAP


class TestErrorPaths:
    def test_unknown_objective_by_name(self):
        with pytest.raises(QueryError, match="unknown objective"):
            get_spec("totally-bogus")

    def test_unknown_query_type(self):
        class NotAQuery:
            pass

        with pytest.raises(QueryError, match="no objective registered"):
            spec_for_query(NotAQuery())

    def test_session_rejects_unknown_query_type(self):
        session = ComICSession(star_digraph(5), GAP(0.3, 0.8, 0.5, 0.5))
        with pytest.raises(QueryError, match="no objective registered"):
            session.run(object())

    def test_unknown_engine_rejected_at_config(self):
        with pytest.raises(QueryError, match="unknown engine"):
            EngineConfig(engine="celf")

    def test_unsupported_engine_rejected_at_resolve(self):
        register(
            ObjectiveSpec(
                name="_tim_only",
                query_type=_TimOnlyQuery,
                handler=lambda *a: None,
                engines=("tim",),
            )
        )
        try:
            with pytest.raises(QueryError, match="does not support engine"):
                resolve(_TimOnlyQuery(), "imm")
        finally:
            unregister("_tim_only")

    def test_unknown_regime(self):
        with pytest.raises(QueryError, match="unknown RR-set regime"):
            generator_factory("rr-bogus")

    def test_unknown_regime_via_session(self):
        session = ComICSession(star_digraph(5), GAP(0.3, 0.8, 0.5, 0.5))
        with pytest.raises(QueryError, match="unknown RR-set regime"):
            session.select_seeds(
                "rr-bogus", GAP(0.3, 0.8, 0.5, 0.5), [0], 1
            )

    def test_regime_mismatch_raises_regime_error(self):
        # Non-Q+ GAPs on a SelfInfMax query: the regime guard still fires.
        session = ComICSession(star_digraph(5), GAP(0.8, 0.3, 0.5, 0.5))
        with pytest.raises(RegimeError):
            session.run(SelfInfMaxQuery(seeds_b=(0,), k=1))

    def test_duplicate_registration_rejected(self):
        spec = get_spec("selfinfmax")
        with pytest.raises(QueryError, match="already registered"):
            register(spec)

    def test_unregister_unknown(self):
        with pytest.raises(QueryError, match="unknown objective"):
            unregister("never-registered")

    def test_duplicate_regime_rejected(self):
        with pytest.raises(QueryError, match="already registered"):
            register_regime("rr-sim", lambda *a: None)


@dataclass(frozen=True)
class _TimOnlyQuery(_QueryBase):
    objective = "_tim_only"


@dataclass(frozen=True)
class _HubQuery(_QueryBase):
    """Toy workload: return the star hub, no sampling."""

    objective = "_hub"

    k: int = 1


def _run_hub(session, query, config, rng):
    return InfluenceResult(
        objective=query.objective,
        seeds=[0] * query.k,
        method="toy",
        engine=config.engine,
        estimate=float(session.graph.num_nodes),
        query=query,
    )


class TestExtensibility:
    def test_custom_workload_round_trips_through_session(self):
        register(
            ObjectiveSpec(
                name="_hub", query_type=_HubQuery, handler=_run_hub,
            )
        )
        try:
            assert "_hub" in known_objectives()
            session = ComICSession(star_digraph(7))
            result = session.run(_HubQuery(k=2))
            assert result.seeds == [0, 0]
            assert result.method == "toy"
            assert result.estimate == 7.0
            # Session bookkeeping applies to custom workloads too.
            assert result.diagnostics["rr_sets_sampled"] == 0
            assert session.stats.queries == 1
        finally:
            unregister("_hub")
        assert "_hub" not in known_objectives()

    def test_replace_rebinds_query_type(self):
        """replace=True must not leave a stale query-type binding behind."""

        @dataclass(frozen=True)
        class _HubQueryV2(_QueryBase):
            objective = "_hub"
            k: int = 1

        def _run_hub_v2(session, query, config, rng):
            result = _run_hub(session, query, config, rng)
            result.method = "toy-v2"
            return result

        register(ObjectiveSpec(name="_hub", query_type=_HubQuery,
                               handler=_run_hub))
        try:
            register(
                ObjectiveSpec(name="_hub", query_type=_HubQueryV2,
                              handler=_run_hub_v2),
                replace=True,
            )
            session = ComICSession(star_digraph(4))
            assert session.run(_HubQueryV2()).method == "toy-v2"
            # The replaced query type no longer dispatches anywhere.
            with pytest.raises(QueryError, match="no objective registered"):
                spec_for_query(_HubQuery())
        finally:
            unregister("_hub")
        with pytest.raises(QueryError, match="no objective registered"):
            spec_for_query(_HubQueryV2())

    def test_replace_across_names_evicts_stranded_objective(self):
        """Moving a query type to a new name must not strand the old one."""
        register(ObjectiveSpec(name="_old", query_type=_HubQuery,
                               handler=_run_hub))
        register(
            ObjectiveSpec(name="_new", query_type=_HubQuery,
                          handler=_run_hub),
            replace=True,
        )
        try:
            assert "_old" not in known_objectives()
            assert spec_for_query(_HubQuery()).name == "_new"
        finally:
            unregister("_new")

    def test_custom_regime_registers(self):
        from repro.rrset.rr_ic import RRICGenerator

        register_regime(
            "_rr-toy", lambda graph, gaps, opposite: RRICGenerator(graph)
        )
        try:
            assert "_rr-toy" in known_regimes()
            factory = generator_factory("_rr-toy")
            generator = factory(star_digraph(4), None, ())
            assert generator.graph.num_nodes == 4
        finally:
            unregister_regime("_rr-toy")
        assert "_rr-toy" not in known_regimes()
        with pytest.raises(QueryError, match="unknown RR-set regime"):
            unregister_regime("_rr-toy")
