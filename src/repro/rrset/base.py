"""General RR-set interface (paper Definition 1, §6.1).

For a diffusion model ``M`` with equivalent possible-world model ``M'``,
the RR-set of a root ``v`` in a world ``W`` is::

    R_W(v) = { u : the singleton seed set {u} activates v in W }

A *random* RR-set draws ``W`` from ``M'`` and ``v`` uniformly.  When every
world satisfies

* **(P1)** activation is monotone in the seed set, and
* **(P2)** any activating set contains a singleton activator,

the probability that a seed set ``S`` activates a uniform node equals the
probability that ``S`` intersects a random RR-set (activation equivalence,
Definition 2 / Lemma 5), which is what TIM-style algorithms estimate.

Two sampling paths
------------------

* :meth:`RRSetGenerator.generate` — one root, one lazily-sampled world, a
  per-root Python BFS.  This is the *correctness oracle*: every regime
  implements it, and the batched fast paths are validated against it.
* :meth:`RRSetGenerator.generate_batch` — many roots at once into a flat
  :class:`~repro.rrset.pool.RRSetPool`.  The base implementation just
  loops the oracle; regimes with vectorized kernels override it with
  level-synchronous bulk sweeps that draw whole coin/threshold arrays per
  batch instead of per-edge memoised Python calls.  Generators must stay
  *picklable* (plain graph/GAP/seed attributes, no open resources):
  :class:`~repro.parallel.ParallelEngine` ships a replica to each worker
  process and shards ``generate_batch`` across them, which is also why it
  can itself pose as a generator and drop into TIM/IMM unchanged.  Every paper regime
  now has a fast kernel — RR-IC (:mod:`repro.rrset.rr_ic`), RR-SIM
  (:mod:`repro.rrset.rr_sim`), RR-SIM+ (:mod:`repro.rrset.rr_sim_plus`),
  RR-CIM with its four-label forward pass (:mod:`repro.rrset.rr_cim`),
  classic-LT (:mod:`repro.rrset.rr_lt`) and the blocking suppression-set
  regime (:mod:`repro.rrset.rr_block`) — so TIM / IMM sampling always
  runs batched; only the exotic product-dependent regime
  (:mod:`repro.rrset.rr_sim_product`) still falls back to this oracle
  loop.  CI's ``BENCH_rrset.json`` regression gate fails if any fast-path
  regime's batch-vs-oracle speedup drops below its recorded floor.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng
from repro.rrset.pool import RRSetPool
from repro.rrset.sweep import DEFAULT_SWEEP, SweepConfig


class RRSetGenerator(abc.ABC):
    """A sampler of random RR-sets for one optimisation problem instance.

    Subclasses fix the diffusion model, the GAPs and the opposite seed set;
    :meth:`generate` draws a fresh lazy possible world per call.
    """

    #: How this regime exposes per-member edge-touch information for
    #: delta repair (:mod:`repro.rrset.repair`): ``"recorded"`` kernels
    #: emit explicit sorted edge-id signatures, ``"implicit"`` regimes
    #: test exactly the in-edges of member nodes (so membership alone
    #: decides affectedness), and ``"none"`` regimes cannot be repaired.
    touch_mode: str = "none"

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph
        #: chunk-state policy of the batched kernels (backend selection
        #: and per-chunk state budget); sessions overwrite it from
        #: ``EngineConfig`` after construction.  A frozen dataclass, so
        #: it pickles along with the generator to parallel workers.
        self.sweep: SweepConfig = DEFAULT_SWEEP

    @property
    def graph(self) -> DiGraph:
        """The underlying influence graph."""
        return self._graph

    def random_root(self, rng: SeedLike = None) -> int:
        """Draw a uniform random root node.

        Pass an existing :class:`numpy.random.Generator` to advance one
        shared stream; an int (or ``None``) builds a *fresh* generator per
        call, so repeated calls with the same int repeat the same root.
        """
        return int(self.random_roots(1, rng=rng)[0])

    def random_roots(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` uniform roots in one bulk ``integers`` call."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        gen = make_rng(rng)
        return gen.integers(0, self._graph.num_nodes, size=count, dtype=np.int64)

    @abc.abstractmethod
    def generate(self, *, rng: SeedLike = None, root: Optional[int] = None) -> np.ndarray:
        """Return one random RR-set as a unique node-id array.

        ``root`` fixes the root (tests of activation equivalence need this);
        when ``None`` a uniform root is drawn.  Every call samples an
        independent possible world.
        """

    def generate_many(self, count: int, *, rng: SeedLike = None) -> list[np.ndarray]:
        """Generate ``count`` independent random RR-sets (oracle path).

        All roots are drawn in one bulk call, then each RR-set runs the
        per-root :meth:`generate` oracle against the shared stream.
        """
        gen = make_rng(rng)
        roots = self.random_roots(count, rng=gen)
        return [self.generate(rng=gen, root=int(root)) for root in roots]

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
    ) -> RRSetPool:
        """Generate ``count`` RR-sets into a flat :class:`RRSetPool`.

        ``roots`` pins the root of each set (overriding ``count``); ``out``
        appends to an existing pool (IMM's top-up phase) instead of
        building a new one.  This base implementation is the per-root
        oracle loop; fast-path subclasses override it with vectorized
        batch sweeps of identical output distribution.
        """
        gen = make_rng(rng)
        pool = out if out is not None else RRSetPool(self._graph.num_nodes)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        for root in roots:
            # Root recorded so implicit-touch pools stay repairable even
            # through this fallback; touch signatures are kernel-only.
            pool.append(self.generate(rng=gen, root=int(root)), root=int(root))
        return pool
