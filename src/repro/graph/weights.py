"""Edge influence-probability assignment schemes.

The paper learns probabilities from action logs with the method of Goyal et
al. [12] (see :mod:`repro.learning.influence_probs` for that learner).  The
wider influence-maximization literature that the paper benchmarks against
([9], [10], [24]) calibrates with three standard synthetic schemes, all
provided here:

* **weighted cascade** — ``p(u, v) = 1 / indeg(v)``;
* **trivalency** — ``p(u, v)`` drawn uniformly from ``{0.1, 0.01, 0.001}``;
* **constant** — a single value for every edge.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EdgeProbabilityError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def constant_probabilities(graph: DiGraph, probability: float) -> DiGraph:
    """Stamp the same influence probability on every edge."""
    if not 0.0 <= probability <= 1.0:
        raise EdgeProbabilityError(f"probability must be in [0, 1], got {probability}")
    return graph.with_probabilities(
        np.full(graph.num_edges, probability, dtype=np.float64)
    )


def weighted_cascade_probabilities(graph: DiGraph) -> DiGraph:
    """Weighted-cascade scheme: ``p(u, v) = 1 / indeg(v)``.

    Under this scheme the expected number of live in-edges of every node is
    exactly one, the classical calibration of Kempe et al. [15].
    """
    indeg = graph.in_degrees.astype(np.float64)
    # Every edge target has in-degree >= 1 by construction.
    probs = 1.0 / indeg[graph.edge_targets]
    return graph.with_probabilities(probs)


def trivalency_probabilities(
    graph: DiGraph,
    values: Sequence[float] = (0.1, 0.01, 0.001),
    *,
    rng: SeedLike = None,
) -> DiGraph:
    """Trivalency scheme: each edge gets a uniform draw from ``values``."""
    values_arr = np.asarray(values, dtype=np.float64)
    if values_arr.size == 0:
        raise EdgeProbabilityError("trivalency requires at least one value")
    if np.any((values_arr < 0.0) | (values_arr > 1.0)):
        raise EdgeProbabilityError(f"trivalency values must be in [0, 1], got {values}")
    gen = make_rng(rng)
    choice = gen.integers(0, values_arr.size, size=graph.num_edges)
    return graph.with_probabilities(values_arr[choice])


def uniform_random_probabilities(
    graph: DiGraph,
    low: float = 0.0,
    high: float = 1.0,
    *,
    rng: SeedLike = None,
) -> DiGraph:
    """Each edge gets an independent uniform draw from ``[low, high]``."""
    if not 0.0 <= low <= high <= 1.0:
        raise EdgeProbabilityError(
            f"need 0 <= low <= high <= 1, got low={low}, high={high}"
        )
    gen = make_rng(rng)
    probs = gen.uniform(low, high, size=graph.num_edges)
    return graph.with_probabilities(probs)
