"""repro.pipeline — the end-to-end log-to-query learning pipeline.

Wires the two previously disjoint halves of the library together: the
§7.2 learning layer (:mod:`repro.learning`) feeds the query layer
(:mod:`repro.api`) through three cached, debuggable stages::

    from repro.api import SelfInfMaxQuery
    from repro.pipeline import PipelineConfig, run_pipeline

    config = PipelineConfig(
        item_a="a", item_b="b", edge_backend="em",
        queries=(SelfInfMaxQuery(seeds_b=(0,), k=5),), seed=7,
    )
    result = run_pipeline(
        graph, log, config, episodes=episodes, workdir="runs/demo"
    )
    result.learned_gap.gap, result.results[0].seeds

Stage outputs are cached content-addressed under ``workdir/cache`` (a
warm re-run with unchanged inputs skips stages 1–2), and every run writes
its full record to ``workdir/pipeline_debug.sqlite`` — see
``docs/pipeline.md`` for the operator guide and SQL cookbook.  The
``python -m repro.pipeline`` CLI runs a config file against on-disk
inputs; the daemon exposes the same entry point as
``POST /pipeline/<graph>``.
"""

from repro.pipeline.cache import StageCache, fingerprint_episodes, fingerprint_log
from repro.pipeline.config import EDGE_BACKENDS, PipelineConfig
from repro.pipeline.db import DEBUG_DB_FILE, SCHEMA_VERSION, PipelineDebugDB
from repro.pipeline.runner import PipelineResult, StageRecord, run_pipeline

__all__ = [
    "DEBUG_DB_FILE",
    "EDGE_BACKENDS",
    "PipelineConfig",
    "PipelineDebugDB",
    "PipelineResult",
    "SCHEMA_VERSION",
    "StageCache",
    "StageRecord",
    "fingerprint_episodes",
    "fingerprint_log",
    "run_pipeline",
]
