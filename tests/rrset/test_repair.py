"""Incremental pool repair: equivalence, distribution, and eligibility.

The repair contract (:mod:`repro.rrset.repair`): after a delta, the
repaired pool must be *distributionally indistinguishable* from a pool
sampled fresh on the new graph — members whose sampled world never
tested a changed edge are kept verbatim (coin coupling), the rest are
dropped and resampled under the same roots.
"""

import numpy as np
import pytest

from repro.errors import DeltaError
from repro.graph import (
    DiGraph,
    GraphDelta,
    apply_delta,
    path_digraph,
    power_law_digraph,
    weighted_cascade_probabilities,
)
from repro.models import GAP
from repro.rng import make_rng
from repro.rrset import (
    RRICGenerator,
    RRSetPool,
    RRSimGenerator,
    RRSimPlusGenerator,
)
from repro.rrset.repair import (
    TOUCH_IMPLICIT,
    TOUCH_NONE,
    TOUCH_RECORDED,
    repair_pool,
)
from repro.rrset.rr_lt import RRLTGenerator
from repro.rrset.rr_sim_product import RRSimProductGenerator

GAPS = GAP(0.4, 0.7, 0.5, 0.5)


def tracked_pool(generator, count, *, rng=0):
    pool = RRSetPool(generator.graph.num_nodes, track_touches=True)
    generator.generate_batch(count, rng=rng, out=pool)
    return pool


class TestTouchModes:
    def test_mode_taxonomy(self):
        g = path_digraph(4)
        assert RRICGenerator(g).touch_mode == TOUCH_IMPLICIT
        assert RRLTGenerator(g).touch_mode == TOUCH_IMPLICIT
        assert RRSimGenerator(g, GAPS, (0,)).touch_mode == TOUCH_RECORDED
        assert (
            RRSimPlusGenerator(g, GAPS, (0,)).touch_mode == TOUCH_RECORDED
        )
        assert (
            RRSimProductGenerator(g, g, GAPS, (0,)).touch_mode == TOUCH_NONE
        )


class TestFixedWorldEquivalence:
    """On deterministic graphs (p in {0, 1}) RR sets are functions of the
    graph alone, so repair must reproduce fresh generation *exactly*."""

    def deterministic_graph(self):
        # 0->1->2->3->4 all live, plus a dead shortcut 0->3.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0),
                 (0, 3, 0.0)]
        return DiGraph.from_edges(5, edges)

    def test_reweight_repair_matches_fresh(self):
        g = self.deterministic_graph()
        gen = RRICGenerator(g)
        pool = tracked_pool(gen, 40, rng=1)
        # Kill 1->2: RR sets rooted at/below 2 lose their upstream tail.
        delta = GraphDelta(reweight=((1, 2, 0.0),))
        effect = apply_delta(g, delta)
        new_gen = RRICGenerator(effect.graph)
        roots = np.array(pool.roots, copy=True)
        report = repair_pool(pool, effect, new_gen, rng=7)
        assert report.eligible
        assert report.total == 40
        # deterministic graph: the RR set is a function of its root, so
        # the repaired pool's (root, members) multiset must match a
        # fresh pool generated from the same roots (repair may permute
        # member order: survivors compact, resampled append).
        fresh = new_gen.generate_batch(40, rng=3, roots=roots)
        expected = sorted(
            (int(r), tuple(sorted(fresh[i].tolist())))
            for i, r in enumerate(roots)
        )
        got = sorted(
            (int(pool.roots[i]), tuple(sorted(pool[i].tolist())))
            for i in range(len(pool))
        )
        assert got == expected

    def test_add_repair_matches_fresh(self):
        g = self.deterministic_graph()
        gen = RRICGenerator(g)
        pool = tracked_pool(gen, 40, rng=2)
        delta = GraphDelta(add=((0, 2, 1.0),))
        effect = apply_delta(g, delta)
        new_gen = RRICGenerator(effect.graph)
        roots = np.array(pool.roots, copy=True)
        report = repair_pool(pool, effect, new_gen, rng=8)
        assert report.eligible
        fresh = new_gen.generate_batch(40, rng=4, roots=roots)
        expected = sorted(
            (int(r), tuple(sorted(fresh[i].tolist())))
            for i, r in enumerate(roots)
        )
        got = sorted(
            (int(pool.roots[i]), tuple(sorted(pool[i].tolist())))
            for i in range(len(pool))
        )
        assert got == expected

    def test_untouched_members_kept_verbatim(self):
        g = self.deterministic_graph()
        gen = RRICGenerator(g)
        pool = tracked_pool(gen, 30, rng=5)
        before = {
            i: (int(pool.roots[i]), sorted(pool[i].tolist()))
            for i in range(30)
        }
        # Reweight the already-dead shortcut: only roots 3/4 can ever be
        # affected (its target is 3).
        delta = GraphDelta(reweight=((0, 3, 1.0),))
        effect = apply_delta(g, delta)
        report = repair_pool(pool, effect, RRICGenerator(effect.graph), rng=6)
        assert report.eligible
        unaffected_roots = {0, 1, 2}
        surviving = {
            (root, tuple(members))
            for root, members in before.values()
            if root in unaffected_roots
        }
        now = {
            (int(pool.roots[i]), tuple(sorted(pool[i].tolist())))
            for i in range(len(pool))
        }
        for root, members in before.values():
            if root in unaffected_roots:
                assert (root, tuple(members)) in now


class TestDistribution:
    """Repaired pools must match fresh pools statistically, not just on
    deterministic gadgets."""

    def test_member_size_distribution_parity(self):
        g = weighted_cascade_probabilities(power_law_digraph(120, rng=3))
        gen = RRSimPlusGenerator(g, GAPS, (0, 1))
        pool = tracked_pool(gen, 600, rng=11)
        delta = GraphDelta(
            reweight=tuple(
                (int(g.edge_sources[e]), int(g.edge_targets[e]),
                 min(1.0, float(g.edge_probabilities[e]) * 2.0))
                for e in (0, 5, 9)
            )
        )
        effect = apply_delta(g, delta)
        new_gen = RRSimPlusGenerator(effect.graph, GAPS, (0, 1))
        report = repair_pool(pool, effect, new_gen, rng=12)
        assert report.eligible and report.resampled > 0
        fresh = new_gen.generate_batch(600, rng=13)
        repaired_mean = pool.total_nodes / len(pool)
        fresh_mean = fresh.total_nodes / len(fresh)
        # generous parity band: same regime, same graph, same theta
        assert repaired_mean == pytest.approx(fresh_mean, rel=0.25)

    def test_repair_is_unbiased_on_root_frequencies(self):
        # Roots are preserved by repair; the dropped members' new
        # contents must come from the new graph's RR distribution.
        g = weighted_cascade_probabilities(power_law_digraph(80, rng=4))
        gen = RRICGenerator(g)
        pool = tracked_pool(gen, 400, rng=21)
        roots_before = np.sort(np.array(pool.roots, copy=True))
        delta = GraphDelta(
            remove=((int(g.edge_sources[0]), int(g.edge_targets[0])),)
        )
        effect = apply_delta(g, delta)
        repair_pool(pool, effect, RRICGenerator(effect.graph), rng=22)
        assert np.array_equal(np.sort(pool.roots), roots_before)


class TestEligibility:
    def test_touch_none_generator_falls_back(self):
        g = path_digraph(4)
        gen = RRSimProductGenerator(g, g, GAPS, (0,))
        pool = tracked_pool(gen, 10, rng=0)
        effect = apply_delta(g, GraphDelta(reweight=((0, 1, 0.5),)))
        report = repair_pool(
            pool,
            effect,
            RRSimProductGenerator(effect.graph, effect.graph, GAPS, (0,)),
            rng=1,
        )
        assert not report.eligible
        assert report.fallback_reason == "touch-unsupported"

    def test_untracked_pool_falls_back_for_recorded_mode(self):
        g = path_digraph(4)
        gen = RRSimGenerator(g, GAPS, (0,))
        pool = RRSetPool(g.num_nodes)  # no tracking
        gen.generate_batch(10, rng=0, out=pool)
        effect = apply_delta(g, GraphDelta(reweight=((0, 1, 0.5),)))
        report = repair_pool(
            pool, effect, RRSimGenerator(effect.graph, GAPS, (0,)), rng=1
        )
        assert not report.eligible
        assert report.fallback_reason == "touch-absent"

    def test_untracked_pool_falls_back_for_implicit_mode_too(self):
        # implicit affectedness still needs roots+members; a pool built
        # without tracking has no roots column.
        g = path_digraph(4)
        gen = RRICGenerator(g)
        pool = RRSetPool(g.num_nodes)
        gen.generate_batch(10, rng=0, out=pool)
        effect = apply_delta(g, GraphDelta(reweight=((0, 1, 0.5),)))
        report = repair_pool(
            pool, effect, RRICGenerator(effect.graph), rng=1
        )
        assert not report.eligible
        assert report.fallback_reason == "touch-absent"

    def test_recorded_mode_add_blankets_all_members(self):
        g = weighted_cascade_probabilities(power_law_digraph(60, rng=5))
        gen = RRSimGenerator(g, GAPS, (0,))
        pool = tracked_pool(gen, 50, rng=2)
        effect = apply_delta(g, GraphDelta(add=((0, 59, 0.5),)))
        report = repair_pool(
            pool, effect, RRSimGenerator(effect.graph, GAPS, (0,)), rng=3
        )
        assert report.eligible
        assert report.affected == 50  # conservative blanket on adds

    def test_stale_generator_fingerprint_rejected(self):
        g = path_digraph(4)
        gen = RRICGenerator(g)
        pool = tracked_pool(gen, 5, rng=0)
        effect = apply_delta(g, GraphDelta(reweight=((0, 1, 0.5),)))
        with pytest.raises(DeltaError, match="fingerprint"):
            repair_pool(pool, effect, gen, rng=1)  # old-graph generator

    def test_pool_repair_method_delegates(self):
        g = path_digraph(4)
        pool = tracked_pool(RRICGenerator(g), 10, rng=0)
        effect = apply_delta(g, GraphDelta(reweight=((2, 3, 0.5),)))
        report = pool.repair(effect, RRICGenerator(effect.graph), rng=1)
        assert report.eligible
        assert report.total == 10
