"""Daemon pipeline endpoints: POST /pipeline/<g>, GET /pipeline/<g>/runs."""

import pytest

from repro.learning import save_action_log, save_episodes
from repro.service import ComICServer, ServiceClient, ServiceClientError

from .conftest import TRUTH, make_config

TRUTH_PAYLOAD = {
    "q_a": TRUTH.q_a,
    "q_a_given_b": TRUTH.q_a_given_b,
    "q_b": TRUTH.q_b,
    "q_b_given_a": TRUTH.q_b_given_a,
}


@pytest.fixture(scope="module")
def inputs_on_disk(tmp_path_factory):
    # conftest fixtures are session-scoped function results; persist them
    # once for the whole module the way a daemon operator would.
    from repro.graph import power_law_digraph, weighted_cascade_probabilities
    from repro.learning import generate_ic_episodes, generate_synthetic_log

    root = tmp_path_factory.mktemp("pipeline-inputs")
    graph = weighted_cascade_probabilities(power_law_digraph(80, rng=3))
    log = generate_synthetic_log([("a", "b", TRUTH)], num_users=800, rng=5)
    episodes = generate_ic_episodes(graph, 50, seeds_per_episode=2, rng=9)
    log_path = root / "log.tsv"
    episodes_path = root / "episodes.npz"
    save_action_log(log, log_path)
    save_episodes(episodes, episodes_path)
    return graph, str(log_path), str(episodes_path)


@pytest.fixture
def server(inputs_on_disk, tmp_path):
    graph, _log_path, _episodes_path = inputs_on_disk
    srv = ComICServer(pipeline_dir=tmp_path / "pipelines")
    srv.register_graph("demo", graph, TRUTH)
    yield srv
    srv.close()


def payload(log_file, episodes_file, **overrides):
    body = {
        "config": make_config().to_dict(),
        "log_path": log_file,
        "episodes_path": episodes_file,
        "truth": TRUTH_PAYLOAD,
    }
    body.update(overrides)
    return body


class TestHandlePipeline:
    def test_end_to_end_run(self, server, inputs_on_disk):
        _graph, log_path, episodes_path = inputs_on_disk
        status, body = server.handle_pipeline(
            "demo", payload(log_path, episodes_path)
        )
        assert status == 200
        assert body["stages_run"] == 3
        assert len(body["results"]) == 1
        assert server.stats.pipelines == 1
        # the run landed in the graph's debug DB
        status, runs = server.handle_pipeline_runs("demo")
        assert status == 200
        assert [r["status"] for r in runs["runs"]] == ["ok"]

    def test_warm_rerun_skips_stages(self, server, inputs_on_disk):
        _graph, log_path, episodes_path = inputs_on_disk
        server.handle_pipeline("demo", payload(log_path, episodes_path))
        status, body = server.handle_pipeline(
            "demo", payload(log_path, episodes_path)
        )
        assert status == 200 and body["stages_skipped"] == 2

    def test_unknown_graph_404(self, server, inputs_on_disk):
        _graph, log_path, episodes_path = inputs_on_disk
        status, body = server.handle_pipeline(
            "nope", payload(log_path, episodes_path)
        )
        assert status == 404 and "unknown graph" in body["error"]

    def test_no_pipeline_dir_is_400(self, inputs_on_disk):
        graph, log_path, episodes_path = inputs_on_disk
        srv = ComICServer()  # no pipeline_dir
        srv.register_graph("demo", graph, TRUTH)
        try:
            status, body = srv.handle_pipeline(
                "demo", payload(log_path, episodes_path)
            )
        finally:
            srv.close()
        assert status == 400 and "pipeline_dir" in body["error"]

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"bogus": 1}, "unknown request fields"),
            ({"config": None}, "config"),
            ({"config": {"edge_backend": "magic"}}, "bad config"),
            ({"log_path": None}, "log_path"),
            ({"log_path": "/nonexistent/log.tsv"}, "bad pipeline input"),
            ({"episodes_path": 7}, "episodes_path"),
            ({"truth": {"q_a": 2.0}}, "bad truth"),
        ],
    )
    def test_bad_payloads_are_400(
        self, server, inputs_on_disk, mutation, fragment
    ):
        _graph, log_path, episodes_path = inputs_on_disk
        status, body = server.handle_pipeline(
            "demo", payload(log_path, episodes_path, **mutation)
        )
        assert status == 400, body
        assert fragment in body["error"]

    def test_em_without_episodes_is_400(self, server, inputs_on_disk):
        _graph, log_path, _episodes_path = inputs_on_disk
        body = payload(log_path, None)
        del body["episodes_path"]
        status, response = server.handle_pipeline("demo", body)
        assert status == 400 and "episode" in response["error"]


class TestRunsEndpoint:
    def test_empty_before_any_run(self, server):
        status, body = server.handle_pipeline_runs("demo")
        assert status == 200 and body == {"graph": "demo", "runs": []}


class TestOverHttp:
    def test_client_round_trip(self, server, inputs_on_disk):
        _graph, log_path, episodes_path = inputs_on_disk
        host, port = server.start()
        with ServiceClient(host, port, timeout=300.0) as client:
            body = client.run_pipeline(
                "demo", make_config(), log_path,
                episodes_path=episodes_path, truth=TRUTH_PAYLOAD,
            )
            assert body["stages_run"] == 3
            runs = client.pipeline_runs("demo")
            assert runs["graph"] == "demo" and len(runs["runs"]) == 1
            with pytest.raises(ServiceClientError) as excinfo:
                client.run_pipeline("demo", {"edge_backend": "magic"}, log_path)
            assert excinfo.value.status == 400
