"""Lemma 2: under mutual complementarity (Q+), tie-breaking permutations do
not affect which nodes adopt which items."""

import numpy as np
import pytest

from repro.graph import DiGraph
from repro.models import GAP, simulate
from repro.models.possible_world import FrozenWorldSource, sample_possible_world
from repro.rng import make_rng


def fan_in_graph() -> DiGraph:
    # Node 4 hears from three informers; node 5 sits downstream.
    return DiGraph.from_edges(
        6,
        [(0, 4, 1.0), (1, 4, 1.0), (2, 4, 1.0), (3, 4, 1.0), (4, 5, 1.0)],
    )


@pytest.mark.parametrize("world_seed", range(8))
def test_permutation_irrelevant_under_q_plus(world_seed):
    graph = fan_in_graph()
    gaps = GAP(0.3, 0.8, 0.4, 0.9)
    assert gaps.is_mutually_complementary
    base_world = sample_possible_world(graph, rng=world_seed)
    outcomes = []
    gen = make_rng(world_seed + 100)
    for _ in range(12):
        # Same world except for freshly shuffled tie-break priorities.
        world = base_world.__class__(
            live=base_world.live,
            priority=gen.random(graph.num_edges),
            alpha_a=base_world.alpha_a,
            alpha_b=base_world.alpha_b,
            tau_a_first=base_world.tau_a_first,
        )
        out = simulate(
            graph, gaps, [0, 1], [2, 3], source=FrozenWorldSource(world)
        )
        outcomes.append((out.a_adopted.tobytes(), out.b_adopted.tobytes()))
    assert len(set(outcomes)) == 1, "tie-breaking changed a Q+ outcome"


def test_permutation_matters_under_competition():
    """Contrast: under pure competition the permutation decides the winner,
    so some world must produce different outcomes for different priorities."""
    graph = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
    gaps = GAP.pure_competition()
    differing = False
    for seed in range(30):
        world = sample_possible_world(graph, rng=seed)
        flipped = world.__class__(
            live=world.live,
            priority=1.0 - world.priority,
            alpha_a=world.alpha_a,
            alpha_b=world.alpha_b,
            tau_a_first=world.tau_a_first,
        )
        out1 = simulate(graph, gaps, [0], [1], source=FrozenWorldSource(world))
        out2 = simulate(graph, gaps, [0], [1], source=FrozenWorldSource(flipped))
        if bool(out1.a_adopted[2]) != bool(out2.a_adopted[2]):
            differing = True
            break
    assert differing, "competition outcome never depended on tie-breaking"
