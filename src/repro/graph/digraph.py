"""Compressed-sparse-row directed graph with per-edge influence probabilities.

This is the substrate every diffusion model and RR-set generator in the
library runs on.  Design goals:

* O(1) access to the out-neighbours *and* in-neighbours of a node as numpy
  slices (forward cascades need the former, reverse-reachable searches the
  latter);
* a single canonical *edge id* per edge shared by both views, so that
  "each edge is tested at most once in the entire diffusion process"
  (paper, Fig. 2, rule 1) can be tracked with one flat array;
* immutability after construction — algorithms may share a graph freely.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EdgeProbabilityError, GraphError

Edge = Tuple[int, int, float]


class DiGraph:
    """An immutable directed graph ``G = (V, E, p)`` with ``p : E -> [0, 1]``.

    Nodes are the integers ``0 .. n-1``.  Parallel edges are rejected;
    self-loops are rejected by default (they never influence a cascade).

    Construction goes through :meth:`from_edges` or :meth:`from_arrays`;
    the raw constructor is considered private.
    """

    __slots__ = (
        "_n",
        "_m",
        "_out_indptr",
        "_out_dst",
        "_out_prob",
        "_out_eid",
        "_in_indptr",
        "_in_src",
        "_in_prob",
        "_in_eid",
        "_edge_src",
        "_edge_dst",
        "_edge_prob",
        "_fingerprint",
    )

    def __init__(
        self,
        n: int,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_prob: np.ndarray,
    ) -> None:
        self._n = int(n)
        self._m = int(edge_src.shape[0])
        self._edge_src = edge_src
        self._edge_dst = edge_dst
        self._edge_prob = edge_prob
        self._fingerprint: Optional[str] = None
        self._build_csr()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Edge],
        *,
        default_probability: float = 1.0,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Build a graph from ``(src, dst[, prob])`` tuples.

        Tuples may be 2-tuples (probability defaults to
        ``default_probability``) or 3-tuples.
        """
        src_list: list[int] = []
        dst_list: list[int] = []
        prob_list: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                p = default_probability
            else:
                u, v, p = edge
            src_list.append(int(u))
            dst_list.append(int(v))
            prob_list.append(float(p))
        return cls.from_arrays(
            n,
            np.asarray(src_list, dtype=np.int64),
            np.asarray(dst_list, dtype=np.int64),
            np.asarray(prob_list, dtype=np.float64),
            allow_self_loops=allow_self_loops,
        )

    @classmethod
    def from_arrays(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        prob: np.ndarray,
        *,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Build a graph from parallel ``src``/``dst``/``prob`` arrays."""
        if n < 0:
            raise GraphError(f"number of nodes must be non-negative, got {n}")
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        prob = np.ascontiguousarray(prob, dtype=np.float64)
        if not (src.shape == dst.shape == prob.shape):
            raise GraphError(
                "src, dst and prob arrays must have identical shapes; got "
                f"{src.shape}, {dst.shape}, {prob.shape}"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= n:
                raise GraphError(
                    f"edge endpoints must lie in [0, {n - 1}]; found [{lo}, {hi}]"
                )
            if not allow_self_loops and np.any(src == dst):
                bad = int(src[src == dst][0])
                raise GraphError(f"self-loop at node {bad} (self-loops are disallowed)")
            if np.any((prob < 0.0) | (prob > 1.0)):
                bad_p = float(prob[(prob < 0.0) | (prob > 1.0)][0])
                raise EdgeProbabilityError(
                    f"influence probabilities must lie in [0, 1]; found {bad_p}"
                )
            key = src.astype(np.int64) * n + dst
            order = np.argsort(key, kind="stable")
            key = key[order]
            if key.size > 1 and np.any(key[1:] == key[:-1]):
                dup = int(np.flatnonzero(key[1:] == key[:-1])[0])
                u, v = divmod(int(key[dup]), n)
                raise GraphError(f"parallel edge ({u}, {v}) (parallel edges are disallowed)")
            src, dst, prob = src[order], dst[order], prob[order]
        return cls(n, src, dst, prob)

    def _build_csr(self) -> None:
        n, m = self._n, self._m
        src, dst = self._edge_src, self._edge_dst
        out_counts = np.bincount(src, minlength=n) if m else np.zeros(n, dtype=np.int64)
        in_counts = np.bincount(dst, minlength=n) if m else np.zeros(n, dtype=np.int64)
        self._out_indptr = np.concatenate(([0], np.cumsum(out_counts))).astype(np.int64)
        self._in_indptr = np.concatenate(([0], np.cumsum(in_counts))).astype(np.int64)
        # Edges are already sorted by (src, dst), so the out-CSR is a direct copy.
        self._out_dst = dst.copy()
        self._out_prob = self._edge_prob.copy()
        self._out_eid = np.arange(m, dtype=np.int64)
        in_order = np.argsort(dst, kind="stable")
        self._in_src = src[in_order]
        self._in_prob = self._edge_prob[in_order]
        self._in_eid = in_order.astype(np.int64)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._m

    @property
    def nodes(self) -> np.ndarray:
        """All node ids as an array ``[0, ..., n-1]``."""
        return np.arange(self._n, dtype=np.int64)

    def _check_node(self, v: int) -> int:
        v = int(v)
        if not 0 <= v < self._n:
            raise GraphError(f"node {v} out of range [0, {self._n - 1}]")
        return v

    def out_degree(self, v: int) -> int:
        """Out-degree of node ``v``."""
        v = self._check_node(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of node ``v``."""
        v = self._check_node(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    @property
    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees (length ``n``)."""
        return np.diff(self._out_indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees (length ``n``)."""
        return np.diff(self._in_indptr)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours ``N+(v)`` as a read-only array view."""
        v = self._check_node(v)
        return self._out_dst[self._out_indptr[v]: self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours ``N-(v)`` as a read-only array view."""
        v = self._check_node(v)
        return self._in_src[self._in_indptr[v]: self._in_indptr[v + 1]]

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(neighbours, probabilities, edge_ids)`` for edges leaving ``v``."""
        v = self._check_node(v)
        lo, hi = self._out_indptr[v], self._out_indptr[v + 1]
        return self._out_dst[lo:hi], self._out_prob[lo:hi], self._out_eid[lo:hi]

    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, probabilities, edge_ids)`` for edges entering ``v``."""
        v = self._check_node(v)
        lo, hi = self._in_indptr[v], self._in_indptr[v + 1]
        return self._in_src[lo:hi], self._in_prob[lo:hi], self._in_eid[lo:hi]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` exists."""
        u = self._check_node(u)
        v = self._check_node(v)
        lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
        idx = np.searchsorted(self._out_dst[lo:hi], v)
        return bool(idx < hi - lo and self._out_dst[lo + idx] == v)

    def edge_probability(self, u: int, v: int) -> float:
        """Influence probability ``p(u, v)``; raises if the edge is absent."""
        u = self._check_node(u)
        v = self._check_node(v)
        lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
        idx = np.searchsorted(self._out_dst[lo:hi], v)
        if idx >= hi - lo or self._out_dst[lo + idx] != v:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        return float(self._out_prob[lo + idx])

    def csr_out(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Raw out-CSR arrays ``(indptr, targets, probs, edge_ids)``.

        Exposed (read-only by convention) for vectorised kernels such as the
        batched frontier edge tests in :mod:`repro.models.ic`.
        """
        return self._out_indptr, self._out_dst, self._out_prob, self._out_eid

    def csr_in(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Raw in-CSR arrays ``(indptr, sources, probs, edge_ids)``."""
        return self._in_indptr, self._in_src, self._in_prob, self._in_eid

    @property
    def edge_sources(self) -> np.ndarray:
        """Edge source array, indexed by edge id."""
        return self._edge_src

    @property
    def edge_targets(self) -> np.ndarray:
        """Edge target array, indexed by edge id."""
        return self._edge_dst

    @property
    def edge_probabilities(self) -> np.ndarray:
        """Edge probability array, indexed by edge id."""
        return self._edge_prob

    def iter_edges(self) -> Iterator[Edge]:
        """Yield all edges as ``(src, dst, prob)`` tuples in edge-id order."""
        for i in range(self._m):
            yield (
                int(self._edge_src[i]),
                int(self._edge_dst[i]),
                float(self._edge_prob[i]),
            )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_probabilities(self, prob: np.ndarray) -> "DiGraph":
        """Return a copy with per-edge probabilities replaced (by edge id)."""
        prob = np.ascontiguousarray(prob, dtype=np.float64)
        if prob.shape != (self._m,):
            raise GraphError(
                f"expected {self._m} probabilities, got shape {prob.shape}"
            )
        if prob.size and np.any((prob < 0.0) | (prob > 1.0)):
            raise EdgeProbabilityError("influence probabilities must lie in [0, 1]")
        return DiGraph(self._n, self._edge_src, self._edge_dst, prob.copy())

    def reverse(self) -> "DiGraph":
        """Return the transpose graph (every edge reversed, same probs)."""
        return DiGraph.from_arrays(
            self._n, self._edge_dst.copy(), self._edge_src.copy(), self._edge_prob.copy()
        )

    def apply_delta(self, delta) -> "DiGraph":
        """Apply a :class:`~repro.graph.delta.GraphDelta`; returns the new graph.

        Convenience wrapper over :func:`repro.graph.delta.apply_delta`
        returning only the mutated graph (fresh fingerprint); callers
        that need the changed-edge set and the old→new edge-id remapping
        (incremental RR-pool repair) use ``delta.apply(graph)`` for the
        full :class:`~repro.graph.delta.DeltaEffect`.
        """
        from repro.graph.delta import apply_delta

        return apply_delta(self, delta).graph

    def fingerprint(self) -> str:
        """A stable content hash of the graph (structure + weights).

        SHA-256 over the node count and the canonical edge arrays
        (``src``, ``dst``, ``prob`` in edge-id order — construction sorts
        edges by ``(src, dst)``, so equal graphs hash equally regardless
        of input edge order).  Process- and platform-independent, unlike
        :func:`hash`; used by the :mod:`repro.store` manifests to detect
        that an on-disk RR-set pool was sampled from a different network,
        and surfaced in :class:`~repro.api.results.InfluenceResult`
        diagnostics.  Cached after the first call (graphs are immutable).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(b"repro.DiGraph.v1")
            digest.update(np.int64(self._n).tobytes())
            digest.update(np.int64(self._m).tobytes())
            digest.update(np.ascontiguousarray(self._edge_src, dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(self._edge_dst, dtype=np.int64).tobytes())
            digest.update(
                np.ascontiguousarray(self._edge_prob, dtype=np.float64).tobytes()
            )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._edge_src, other._edge_src)
            and np.array_equal(self._edge_dst, other._edge_dst)
            and np.array_equal(self._edge_prob, other._edge_prob)
        )

    def __hash__(self) -> int:  # graphs are immutable; hash on shape only
        return hash((self._n, self._m))


def expand_csr(
    indptr: np.ndarray, frontier: np.ndarray, *, with_reps: bool = True
) -> tuple[Optional[np.ndarray], np.ndarray]:
    """Fan a frontier out over a CSR adjacency: ``(reps, flat)`` indices.

    ``reps[j]`` is the position (into ``frontier``) that produced the
    ``j``-th incident edge and ``flat[j]`` that edge's index into the CSR
    data arrays.  O(total incident degree), no Python loop — the core
    gather of every level-synchronous sweep (forward cascades and the
    batched RR-set engine alike).  Callers that only need the edge
    gather pass ``with_reps=False`` and get ``(None, flat)``, skipping
    one same-sized allocation.
    """
    # Gather into int64 regardless of the column's storage dtype: dieted
    # (uint32) pools would otherwise wrap on the transiently-negative
    # ``starts - prefix`` below.
    starts = indptr[frontier].astype(np.int64, copy=False)
    lengths = indptr[frontier + 1].astype(np.int64, copy=False) - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return (empty if with_reps else None), empty
    reps = (
        np.repeat(np.arange(frontier.size, dtype=np.int64), lengths)
        if with_reps
        else None
    )
    prefix = np.cumsum(lengths) - lengths
    flat = np.repeat(starts - prefix, lengths) + np.arange(total, dtype=np.int64)
    return reps, flat


def induced_subgraph(graph: DiGraph, nodes: Sequence[int]) -> tuple[DiGraph, np.ndarray]:
    """Return the subgraph induced by ``nodes`` and the old-id array.

    The returned graph relabels the kept nodes to ``0 .. len(nodes)-1`` in the
    order given; the second return value maps new id -> old id.
    """
    keep = np.asarray(nodes, dtype=np.int64)
    if keep.size != np.unique(keep).size:
        raise GraphError("induced_subgraph requires distinct node ids")
    if keep.size and (keep.min() < 0 or keep.max() >= graph.num_nodes):
        raise GraphError("induced_subgraph node ids out of range")
    new_id = np.full(graph.num_nodes, -1, dtype=np.int64)
    new_id[keep] = np.arange(keep.size, dtype=np.int64)
    src, dst, prob = graph.edge_sources, graph.edge_targets, graph.edge_probabilities
    mask = (new_id[src] >= 0) & (new_id[dst] >= 0)
    sub = DiGraph.from_arrays(
        int(keep.size), new_id[src[mask]], new_id[dst[mask]], prob[mask]
    )
    return sub, keep
