"""Com-LT: a comparative Linear Threshold extension of the Com-IC design.

The paper builds Com-IC by separating edge-level *awareness* from the
node-level adoption automaton (NLA) and notes that its closest prior work —
Narayanam & Nanavati [19], an LT extension limited to perfect
complementarity — is a special case of the comparative design.  This module
realises the LT counterpart explicitly:

* **edge level** — a node draws a single uniform threshold ``theta_v``; it
  becomes *informed* of item X when the total in-edge weight of X-adopted
  in-neighbours reaches ``theta_v`` (edges act as item-independent
  channels, like the shared live edges of Com-IC);
* **node level** — the identical NLA of §3: informed-of-X nodes adopt with
  ``q_{X|∅}`` or ``q_{X|other}``, suspended nodes reconsider on adopting
  the other item with the ``rho`` of Fig. 2.

Setting ``gaps = GAP.classic_ic()`` collapses Com-LT to the classic LT
model of [15] (the NLA adopts deterministically and B never propagates);
setting :meth:`~repro.models.gaps.GAP.perfect_cross_sell` GAPs recovers the
[19] regime, where A can only be adopted by nodes that already adopted B.

The module deliberately mirrors :mod:`repro.models.comic`'s public surface:
:func:`simulate_comlt` returns the same
:class:`~repro.models.comic.DiffusionOutcome`, and
:func:`estimate_spread_comlt` / :func:`greedy_comlt_selfinfmax` provide the
Monte-Carlo objective and a CELF greedy seed selector (no RR-set machinery
is claimed here: the paper's Theorems 4–8 are proved for Com-IC only).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.comic import DiffusionOutcome, _normalize_seeds
from repro.models.gaps import GAP
from repro.models.lt import _check_lt_instance
from repro.models.spread import SpreadEstimate, _summarize
from repro.models.states import ItemState
from repro.rng import SeedLike, make_rng
from repro.algorithms.greedy import celf_greedy

_IDLE = int(ItemState.IDLE)
_SUSPENDED = int(ItemState.SUSPENDED)
_ADOPTED = int(ItemState.ADOPTED)
_REJECTED = int(ItemState.REJECTED)

_ITEM_A = 0
_ITEM_B = 1


def simulate_comlt(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    rng: SeedLike = None,
    max_steps: Optional[int] = None,
) -> DiffusionOutcome:
    """Run one Com-LT diffusion and return its final configuration.

    ``graph`` edge probabilities are interpreted as LT influence weights
    (per-node incoming sums must not exceed 1; see
    :func:`~repro.models.lt.normalize_lt_weights`).
    """
    _check_lt_instance(graph)
    gen = make_rng(rng)
    set_a = _normalize_seeds(graph, seeds_a, "A")
    set_b = _normalize_seeds(graph, seeds_b, "B")

    n = graph.num_nodes
    thresholds = gen.random(n)
    thresholds[thresholds == 0.0] = 1e-12
    accumulated = (np.zeros(n, dtype=np.float64), np.zeros(n, dtype=np.float64))
    informed = (np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    state = (np.full(n, _IDLE, dtype=np.int8), np.full(n, _IDLE, dtype=np.int8))
    adopted_at = (np.full(n, -1, dtype=np.int64), np.full(n, -1, dtype=np.int64))
    q_uncond = (gaps.q_a, gaps.q_b)
    q_cond = (gaps.q_a_given_b, gaps.q_b_given_a)

    newly: list[tuple[int, int]] = []  # (node, item) adoptions of this step

    def adopt(v: int, item: int, t: int) -> None:
        state[item][v] = _ADOPTED
        adopted_at[item][v] = t
        newly.append((v, item))

    def process_inform(v: int, item: int, t: int) -> None:
        """Run the NLA for ``v`` on first being informed of ``item``."""
        if state[item][v] != _IDLE:
            return
        other = 1 - item
        other_adopted = state[other][v] == _ADOPTED
        q = q_cond[item] if other_adopted else q_uncond[item]
        if gen.random() < q:
            adopt(v, item, t)
            if state[other][v] == _SUSPENDED:
                rho = gaps.rho_a if other == _ITEM_A else gaps.rho_b
                if gen.random() < rho:
                    adopt(v, other, t)
                else:
                    state[other][v] = _REJECTED
        else:
            state[item][v] = _REJECTED if other_adopted else _SUSPENDED

    only_a = set(set_a) - set(set_b)
    both = set(set_a) & set(set_b)
    for v in sorted(set(set_a) | set(set_b)):
        if v in both:
            first = _ITEM_A if gen.random() < 0.5 else _ITEM_B
            adopt(v, first, 0)
            adopt(v, 1 - first, 0)
        elif v in only_a:
            adopt(v, _ITEM_A, 0)
        else:
            adopt(v, _ITEM_B, 0)

    t = 0
    limit = max_steps if max_steps is not None else 2 * n + 2
    while newly and t < limit:
        t += 1
        outgoing = newly
        newly = []
        crossings: dict[int, list[int]] = {}
        for u, item in outgoing:
            targets, weights, _eids = graph.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if informed[item][v]:
                    continue
                accumulated[item][v] += float(weights[idx])
                if accumulated[item][v] >= thresholds[v]:
                    informed[item][v] = True
                    crossings.setdefault(v, []).append(item)
        for v, items in crossings.items():
            if len(items) == 2 and gen.random() < 0.5:
                items = items[::-1]
            for item in items:
                process_inform(v, item, t)

    return DiffusionOutcome(
        state_a=state[_ITEM_A],
        state_b=state[_ITEM_B],
        adopted_a_at=adopted_at[_ITEM_A],
        adopted_b_at=adopted_at[_ITEM_B],
        steps=t,
    )


def estimate_spread_comlt(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
    item: str = "a",
) -> SpreadEstimate:
    """Monte-Carlo estimate of the Com-LT A-spread (or B-spread)."""
    if item not in ("a", "b"):
        raise ValueError(f"item must be 'a' or 'b', got {item!r}")
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        outcome = simulate_comlt(graph, gaps, seeds_a, seeds_b, rng=gen)
        values[i] = outcome.num_a_adopted if item == "a" else outcome.num_b_adopted
    return _summarize(values)


def estimate_boost_comlt(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
) -> SpreadEstimate:
    """Monte-Carlo estimate of the Com-LT boost
    ``sigma_A(S_A, S_B) - sigma_A(S_A, ∅)``.

    Runs are paired on the RNG stream (each pair shares one generator
    state), which keeps the difference estimator usable at moderate run
    counts even though Com-LT has no reusable possible-world object.
    """
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    values = np.empty(runs, dtype=np.float64)
    for i in range(runs):
        with_b = simulate_comlt(graph, gaps, seeds_a, seeds_b, rng=gen)
        without_b = simulate_comlt(graph, gaps, seeds_a, [], rng=gen)
        values[i] = with_b.num_a_adopted - without_b.num_a_adopted
    return _summarize(values)


def greedy_comlt_compinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    k: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[int]:
    """CELF Monte-Carlo greedy for CompInfMax under Com-LT.

    Picks ``k`` B-seeds maximising the boost to A's spread; like
    :func:`greedy_comlt_selfinfmax` this is a heuristic — the paper's
    RR-set guarantees are proved for Com-IC only.
    """
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    gen = make_rng(rng)
    eval_seed = int(gen.integers(0, 2**31 - 1))
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))

    def objective(seed_list: Sequence[int]) -> float:
        if not seed_list:
            return 0.0
        return estimate_boost_comlt(
            graph, gaps, seeds_a, seed_list, runs=runs, rng=eval_seed
        ).mean

    seeds, _trace = celf_greedy(pool, k, objective, base_value=0.0)
    return seeds


def greedy_comlt_selfinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_b: Sequence[int],
    k: int,
    *,
    runs: int = 100,
    rng: SeedLike = None,
    candidates: Optional[Sequence[int]] = None,
) -> list[int]:
    """CELF Monte-Carlo greedy for SelfInfMax under Com-LT.

    Evaluations share one MC seed so the lazy pruning of CELF sees a
    consistent objective.
    """
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    gen = make_rng(rng)
    eval_seed = int(gen.integers(0, 2**31 - 1))
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))

    def objective(seed_list: Sequence[int]) -> float:
        if not seed_list:
            return 0.0
        return estimate_spread_comlt(
            graph, gaps, seed_list, seeds_b, runs=runs, rng=eval_seed
        ).mean

    seeds, _trace = celf_greedy(pool, k, objective, base_value=0.0)
    return seeds
