"""Extended baseline comparison: discount heuristics vs the paper's set.

The paper's Figures 5–6 compare RR-based selection against HighDegree,
PageRank and Random.  This bench adds the DegreeDiscount / SingleDiscount
heuristics of [9] to the same SelfInfMax workload, reporting MC spreads
side by side.  Rows land in ``benchmarks/results/baseline_heuristics.md``.
"""

from repro.algorithms import (
    degree_discount_seeds,
    high_degree_seeds,
    pagerank_seeds,
    random_seeds,
    single_discount_seeds,
)
from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery
from repro.datasets import load_dataset
from repro.experiments import TableResult
from repro.models import GAP, estimate_spread

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)


def bench_baseline_heuristics(benchmark, bench_scale, save_table):
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds_b = list(range(bench_scale.opposite_size))
    k = bench_scale.k

    def run():
        # A fresh session per round keeps the RR timing a full solve (a
        # hoisted session would answer later rounds from a warm pool).
        session = ComICSession(
            graph, GAPS,
            config=EngineConfig.from_tim_options(bench_scale.tim_options),
        )
        selections = {
            "RR (GeneralTIM)": session.run(
                SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=k), rng=5
            ).seeds,
            "DegreeDiscount": degree_discount_seeds(graph, k),
            "SingleDiscount": single_discount_seeds(graph, k),
            "HighDegree": high_degree_seeds(graph, k),
            "PageRank": pagerank_seeds(graph, k),
            "Random": random_seeds(graph, k, rng=7),
        }
        rows = []
        for name, seeds in selections.items():
            spread = estimate_spread(
                graph, GAPS, seeds, seeds_b,
                runs=bench_scale.mc_runs, rng=11,
            )
            rows.append({
                "selector": name,
                "spread": round(spread.mean, 2),
                "stderr": round(spread.stderr, 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        title="Baselines extended with discount heuristics (SelfInfMax)",
        columns=["selector", "spread", "stderr"],
        rows=rows,
        notes=f"Flixster-like graph, k={k}, learned-style GAPs {GAPS}",
    )
    save_table(table, "baseline_heuristics")
    spreads = {r["selector"]: r["spread"] for r in rows}
    # The stable shape: RR wins, Random loses, discounts >= plain HighDegree
    # (ties allowed at this scale).
    assert spreads["RR (GeneralTIM)"] >= spreads["Random"]
    assert spreads["DegreeDiscount"] >= 0.8 * spreads["HighDegree"]
