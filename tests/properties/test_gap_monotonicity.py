"""Property test of Theorem 10: within Q+, sigma_A increases in each GAP.

Used by the Sandwich Approximation to order mu <= sigma <= nu: raising any
one of the four GAPs (staying inside Q+) cannot lower sigma_A.
"""

import hypothesis.strategies as st
from hypothesis import given

from tests.properties._profiles import ci_settings

from repro.graph import DiGraph
from repro.models import GAP, exact_spread

_Q = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


@st.composite
def tiny_graphs(draw) -> DiGraph:
    n = draw(st.integers(min_value=3, max_value=5))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=2, max_value=min(len(pairs), 6)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=count, max_size=count, unique=True)
    )
    return DiGraph.from_edges(n, [(u, v, 1.0) for u, v in chosen])


@st.composite
def q_plus_gaps(draw) -> GAP:
    q_a = draw(_Q)
    q_ab = draw(_Q.filter(lambda v: v >= q_a))
    q_b = draw(_Q)
    q_ba = draw(_Q.filter(lambda v: v >= q_b))
    return GAP(q_a, q_ab, q_b, q_ba)


def _raised(gaps: GAP, field: str, delta: float = 0.2) -> GAP | None:
    """Raise one GAP by ``delta`` if the result stays inside Q+ and [0,1]."""
    values = {
        "q_a": gaps.q_a,
        "q_a_given_b": gaps.q_a_given_b,
        "q_b": gaps.q_b,
        "q_b_given_a": gaps.q_b_given_a,
    }
    values[field] = values[field] + delta
    if values[field] > 1.0:
        return None
    candidate = GAP(**values)
    if not candidate.is_mutually_complementary:
        return None
    return candidate


@ci_settings(30)
@given(
    graph=tiny_graphs(),
    gaps=q_plus_gaps(),
    field=st.sampled_from(["q_a", "q_a_given_b", "q_b", "q_b_given_a"]),
    data=st.data(),
)
def test_sigma_a_monotone_in_each_gap(graph, gaps, field, data):
    raised = _raised(gaps, field)
    if raised is None:
        return  # raising would leave Q+; Theorem 10 does not apply
    n = graph.num_nodes
    seeds_a = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    low, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    high, _ = exact_spread(graph, raised, seeds_a, seeds_b)
    assert high >= low - 1e-9


@ci_settings(20)
@given(graph=tiny_graphs(), gaps=q_plus_gaps(), data=st.data())
def test_sandwich_bound_ordering(graph, gaps, data):
    """mu(S) <= sigma(S) <= nu(S) for the SelfInfMax sandwich bounds."""
    n = graph.num_nodes
    seeds_a = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    seeds_b = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=2, unique=True)
    )
    mu, _ = exact_spread(graph, gaps.with_b_indifferent_low(), seeds_a, seeds_b)
    sigma, _ = exact_spread(graph, gaps, seeds_a, seeds_b)
    nu, _ = exact_spread(graph, gaps.with_b_indifferent_high(), seeds_a, seeds_b)
    assert mu <= sigma + 1e-9
    assert sigma <= nu + 1e-9
