"""`PoolManifest`: the validation record of one persisted pool entry.

A store entry is three files — two ``.npy`` columns and this manifest as
``manifest.json``.  The manifest carries everything needed to decide
whether a candidate entry may serve a load request *without* touching the
columns (the full :class:`~repro.store.keys.PoolKey`, the graph
fingerprint, the format version) plus everything needed to prove the
columns are the ones that were written (shape counts and CRC-32
checksums), plus free-form provenance (RNG description, creation time,
creator) that is recorded but never validated.

Validation is deliberately split in two:

* :meth:`PoolManifest.validate_request` — is this entry *for* the pool
  the caller wants?  Key or fingerprint mismatch means the entry belongs
  to a different network/regime: an **invalidation**.
* :meth:`PoolManifest.validate_columns` — are the column files the ones
  the manifest describes?  A mismatch means on-disk **corruption**.

Both raise :class:`~repro.errors.StoreIntegrityError`; the store's
forgiving ``load`` maps either to a miss while counting it.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import StoreIntegrityError
from repro.invalidation import InvalidationReason
from repro.store.keys import PoolKey

#: on-disk format identifier; bump :data:`FORMAT_VERSION` on layout changes.
#: Touch columns (PR 8) ride as *optional* manifest fields + extra files,
#: which old readers ignore — no version bump needed.
FORMAT_NAME = "repro-pool-store"
FORMAT_VERSION = 1

#: dtypes an offset column (``indptr``/``touch_indptr``) may be stored in:
#: the canonical int64, or the uint32 memory diet for pools whose offsets
#: all fit (half the bytes on disk and — via zero-copy adoption — in RAM).
OFFSET_DTYPES = ("int64", "uint32")


def crc32_of(array: np.ndarray, value: int = 0) -> int:
    """CRC-32 of an array's raw bytes (cheap corruption tripwire).

    Streams the buffer directly through the buffer protocol — no
    ``tobytes()`` copy, so checksumming a memory-mapped multi-GB column
    costs one sequential read and zero extra allocation.  ``value``
    continues a running checksum: ``crc32_of(tail, crc32_of(head))``
    equals ``crc32_of(concat(head, tail))``, which is what lets the
    store's incremental append checksum only the delta it writes.
    """
    return (
        zlib.crc32(memoryview(np.ascontiguousarray(array)).cast("B"), value)
        & 0xFFFFFFFF
    )


@dataclass(frozen=True)
class PoolManifest:
    """The JSON sidecar of one persisted :class:`~repro.rrset.pool.RRSetPool`."""

    key: PoolKey
    graph_fingerprint: str
    num_nodes: int
    num_sets: int
    total_nodes: int
    nodes_crc32: int
    indptr_crc32: int
    format_version: int = FORMAT_VERSION
    #: free-form, unvalidated: rng description, unix timestamp, creator,
    #: and (for repaired pools) the session's delta ``lineage`` records.
    provenance: Mapping[str, Any] = field(default_factory=dict)
    #: optional touch-column record (``None`` for pools saved without
    #: tracking): total touch entries plus CRC-32s of ``roots.npy``,
    #: ``touch_edges.npy`` and ``touch_indptr.npy``.  The touch CRCs may
    #: themselves be absent (roots-only pools of implicit-touch regimes).
    touches: Optional[Mapping[str, Any]] = None
    #: optional per-column dtype record (``None``: every offset column is
    #: the classic int64).  Maps column name (``"indptr"``,
    #: ``"touch_indptr"``) to the numpy dtype name its ``.npy`` file was
    #: written in — the uint32 memory diet rides here as an *optional*
    #: field, so dieted entries need no format-version bump and classic
    #: entries stay byte-identical to the pre-diet format.
    column_dtypes: Optional[Mapping[str, str]] = None

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types view; inverse of :meth:`from_dict`."""
        out = {
            "format": FORMAT_NAME,
            "format_version": self.format_version,
            "key": self.key.to_dict(),
            "graph_fingerprint": self.graph_fingerprint,
            "num_nodes": self.num_nodes,
            "num_sets": self.num_sets,
            "total_nodes": self.total_nodes,
            "nodes_crc32": self.nodes_crc32,
            "indptr_crc32": self.indptr_crc32,
            "provenance": dict(self.provenance),
        }
        if self.touches is not None:
            # Emitted only when present, so untracked pools' manifests are
            # byte-identical to the pre-touch format (old readers skip the
            # key anyway — from_dict reads named fields).
            out["touches"] = dict(self.touches)
        if self.column_dtypes is not None:
            out["column_dtypes"] = dict(self.column_dtypes)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolManifest":
        """Rebuild from :meth:`to_dict` output; rejects foreign payloads."""
        if data.get("format") != FORMAT_NAME:
            raise StoreIntegrityError(
                f"not a {FORMAT_NAME} manifest (format={data.get('format')!r})",
                reason=InvalidationReason.MALFORMED_MANIFEST,
            )
        try:
            touches = data.get("touches")
            column_dtypes = data.get("column_dtypes")
            return cls(
                key=PoolKey.from_dict(data["key"]),
                graph_fingerprint=str(data["graph_fingerprint"]),
                num_nodes=int(data["num_nodes"]),
                num_sets=int(data["num_sets"]),
                total_nodes=int(data["total_nodes"]),
                nodes_crc32=int(data["nodes_crc32"]),
                indptr_crc32=int(data["indptr_crc32"]),
                format_version=int(data["format_version"]),
                provenance=dict(data.get("provenance", {})),
                touches=dict(touches) if touches is not None else None,
                column_dtypes=(
                    dict(column_dtypes) if column_dtypes is not None else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreIntegrityError(
                f"malformed manifest: {exc}",
                reason=InvalidationReason.MALFORMED_MANIFEST,
            ) from exc

    def to_json(self) -> str:
        """Serialise for ``manifest.json``."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, payload: str) -> "PoolManifest":
        """Parse ``manifest.json`` content; any malformation is integrity."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"unreadable manifest: {exc}",
                reason=InvalidationReason.MALFORMED_MANIFEST,
            ) from exc
        if not isinstance(data, dict):
            raise StoreIntegrityError(
                "manifest must be a JSON object",
                reason=InvalidationReason.MALFORMED_MANIFEST,
            )
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def column_dtype(self, name: str) -> np.dtype:
        """The dtype ``name``'s offset column file must hold.

        int64 unless the manifest's :attr:`column_dtypes` records the
        uint32 diet for it; a record naming any other dtype is a
        malformed manifest (it could never have been written by
        ``save``) and raises the usual integrity error.
        """
        record = self.column_dtypes or {}
        label = str(record.get(name, "int64"))
        if label not in OFFSET_DTYPES:
            raise StoreIntegrityError(
                f"manifest records illegal dtype {label!r} for the {name} "
                f"column (expected one of {OFFSET_DTYPES})",
                reason=InvalidationReason.MALFORMED_MANIFEST,
            )
        return np.dtype(label)

    def validate_request(
        self, key: PoolKey, graph_fingerprint: Optional[str]
    ) -> None:
        """Check this entry answers the caller's request (else invalidation).

        ``graph_fingerprint=None`` skips the fingerprint comparison
        (callers that index by key only).
        """
        if self.format_version != FORMAT_VERSION:
            raise StoreIntegrityError(
                f"entry has format_version {self.format_version}, "
                f"this build reads {FORMAT_VERSION}",
                reason=InvalidationReason.FORMAT_VERSION,
            )
        if self.key != key:
            raise StoreIntegrityError(
                f"entry key {self.key} does not match requested {key}",
                reason=InvalidationReason.KEY_MISMATCH,
            )
        if graph_fingerprint is not None and (
            self.graph_fingerprint != graph_fingerprint
        ):
            raise StoreIntegrityError(
                "entry was sampled from a different graph "
                f"(fingerprint {self.graph_fingerprint[:12]}... != "
                f"{graph_fingerprint[:12]}...)",
                reason=InvalidationReason.FINGERPRINT_MISMATCH,
            )

    def validate_columns(self, nodes: np.ndarray, indptr: np.ndarray) -> None:
        """Check the loaded columns are the ones written (else corruption)."""
        if indptr.shape != (self.num_sets + 1,):
            raise StoreIntegrityError(
                f"indptr column has shape {indptr.shape}, manifest says "
                f"({self.num_sets + 1},)",
                reason=InvalidationReason.CORRUPT_COLUMNS,
            )
        if nodes.shape != (self.total_nodes,):
            raise StoreIntegrityError(
                f"nodes column has shape {nodes.shape}, manifest says "
                f"({self.total_nodes},)",
                reason=InvalidationReason.CORRUPT_COLUMNS,
            )
        if crc32_of(nodes) != self.nodes_crc32:
            raise StoreIntegrityError(
                "nodes column fails its CRC-32 check",
                reason=InvalidationReason.CORRUPT_COLUMNS,
            )
        if crc32_of(indptr) != self.indptr_crc32:
            raise StoreIntegrityError(
                "indptr column fails its CRC-32 check",
                reason=InvalidationReason.CORRUPT_COLUMNS,
            )

    def validate_touch_columns(
        self,
        roots: Optional[np.ndarray],
        touch_edges: Optional[np.ndarray],
        touch_indptr: Optional[np.ndarray],
    ) -> None:
        """Check loaded touch columns against the ``touches`` record.

        Only meaningful when :attr:`touches` is present; each column is
        validated iff its CRC was recorded (roots-only entries have no
        touch CRCs).
        """
        record = self.touches or {}

        def check(name: str, column: Optional[np.ndarray], length: int) -> None:
            crc = record.get(f"{name}_crc32")
            if crc is None:
                return
            if column is None or column.shape != (length,):
                got = None if column is None else column.shape
                raise StoreIntegrityError(
                    f"{name} column has shape {got}, manifest says "
                    f"({length},)",
                    reason=InvalidationReason.CORRUPT_COLUMNS,
                )
            if crc32_of(column) != int(crc):
                raise StoreIntegrityError(
                    f"{name} column fails its CRC-32 check",
                    reason=InvalidationReason.CORRUPT_COLUMNS,
                )

        check("roots", roots, self.num_sets)
        check("touch_edges", touch_edges, int(record.get("total_touches", 0)))
        check("touch_indptr", touch_indptr, self.num_sets + 1)
