"""Benchmark: Figure 6 — boost in A-spread vs |S_B| for CompInfMax.

Shape check (paper): RR-CIM yields the largest boost at the full budget;
Random is consistently the worst.
"""

from repro.experiments import figure6_compinfmax_boost


def bench_fig6_compinfmax(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure6_compinfmax_boost(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "figure6_compinfmax_boost")
    for dataset in bench_scale.datasets:
        at_k = {
            r["method"]: r["boost"]
            for r in result.rows
            if r["dataset"] == dataset and r["num_seeds"] == bench_scale.k
        }
        assert at_k["RR"] >= at_k["Random"] - 0.5, dataset
