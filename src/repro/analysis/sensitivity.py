"""GAP sensitivity analysis — Theorem 10 as a measurement tool.

Theorem 10 states that within ``Q+`` the A-spread is monotone
non-decreasing in each of the four GAPs.  For a campaign this is a
robustness question: *how much does my expected adoption move if the
market's adoption probabilities were mis-estimated by ±delta?*
:func:`gap_sensitivity` sweeps one GAP parameter and reports the MC
spread at each perturbed value; the resulting curve should be
non-decreasing whenever the sweep stays inside ``Q+`` (our property
tests check exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.errors import GapError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.spread import estimate_spread
from repro.rng import SeedLike, derive_seed, make_rng

#: sweepable GAP parameters (attribute names of :class:`GAP`).
GAP_PARAMETERS = ("q_a", "q_a_given_b", "q_b", "q_b_given_a")


def perturb_gap(gaps: GAP, parameter: str, delta: float) -> GAP:
    """Return ``gaps`` with ``parameter`` shifted by ``delta`` (clipped to
    [0, 1]).

    Raises :class:`~repro.errors.GapError` for unknown parameters.
    """
    if parameter not in GAP_PARAMETERS:
        raise GapError(
            f"unknown GAP parameter {parameter!r}; expected one of {GAP_PARAMETERS}"
        )
    value = min(max(getattr(gaps, parameter) + float(delta), 0.0), 1.0)
    return replace(gaps, **{parameter: value})


@dataclass(frozen=True)
class SensitivityResult:
    """Spread response of one GAP parameter sweep."""

    parameter: str
    #: the perturbed parameter values, in sweep order.
    values: list[float]
    #: MC mean A-spread per value.
    spreads: list[float]
    #: MC standard errors per value.
    stderrs: list[float]
    #: whether every swept GAP stayed inside the mutually
    #: complementary region (Theorem 10's precondition).
    all_in_q_plus: bool

    def is_monotone(self, *, slack: float = 0.0) -> bool:
        """Whether spread never drops by more than ``slack`` along the
        sweep (expected whenever ``all_in_q_plus`` and values ascend)."""
        return all(
            self.spreads[i + 1] >= self.spreads[i] - slack
            for i in range(len(self.spreads) - 1)
        )

    def range_width(self) -> float:
        """Max spread minus min spread — the headline sensitivity number."""
        if not self.spreads:
            return 0.0
        return max(self.spreads) - min(self.spreads)

    def as_rows(self) -> list[dict]:
        """Rows ``{value, spread, stderr}`` for table rendering."""
        return [
            {"value": v, "spread": s, "stderr": e}
            for v, s, e in zip(self.values, self.spreads, self.stderrs)
        ]


def gap_sensitivity(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Sequence[int],
    seeds_b: Sequence[int],
    *,
    parameter: str,
    deltas: Iterable[float] = (-0.1, -0.05, 0.0, 0.05, 0.1),
    runs: int = 300,
    rng: SeedLike = None,
) -> SensitivityResult:
    """Sweep one GAP parameter and measure the A-spread response.

    All sweep points share a base RNG stream (delta-salted) so the curve
    is reproducible and comparable point-to-point.
    """
    deltas = [float(d) for d in deltas]
    gen = make_rng(rng)
    base = int(gen.integers(0, 2**31 - 1))
    values: list[float] = []
    spreads: list[float] = []
    stderrs: list[float] = []
    all_q_plus = True
    for index, delta in enumerate(deltas):
        perturbed = perturb_gap(gaps, parameter, delta)
        all_q_plus = all_q_plus and perturbed.is_mutually_complementary
        estimate = estimate_spread(
            graph, perturbed, seeds_a, seeds_b,
            runs=runs, rng=derive_seed(base, index),
        )
        values.append(getattr(perturbed, parameter))
        spreads.append(estimate.mean)
        stderrs.append(estimate.stderr)
    return SensitivityResult(
        parameter=parameter,
        values=values,
        spreads=spreads,
        stderrs=stderrs,
        all_in_q_plus=all_q_plus,
    )
