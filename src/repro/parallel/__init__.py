"""repro.parallel — multiprocess sharded RR-set generation.

:class:`ParallelEngine` wraps any :class:`~repro.rrset.base.RRSetGenerator`
in a persistent spawn-safe worker-process pool: batches shard across
workers (each running the regime's existing vectorized kernel on its own
seeded child RNG stream) and merge back in O(total size) via the flat
pool's CSR concatenation kernel.  Because the engine *is* a generator,
TIM/IMM top-ups and every fast-path regime scale across cores unchanged —
:class:`~repro.api.session.ComICSession` engages it automatically when
``EngineConfig.workers > 1``::

    from repro.api import ComICSession, EngineConfig

    session = ComICSession(graph, gaps, config=EngineConfig(workers=4))
    session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=10))  # sampled on 4 cores

Worker crashes and hangs are survived by bounded per-shard retries on a
restarted pool (serial fallback only after retries exhaust);
:class:`ParallelStats` surfaces the recovery counters.  See
``docs/resilience.md``.

:class:`WorkerPool` is the session-scale variant: one executor
time-shared by every cached pool's engine (generators ride on the task
and are cached worker-side), so ``workers=K`` costs K processes per
session instead of K per cached pool — pass it via
``ParallelEngine(..., shared_pool=pool)``.
"""

from repro.parallel.engine import ParallelEngine, ParallelStats, WorkerPool

__all__ = ["ParallelEngine", "ParallelStats", "WorkerPool"]
