"""Shared pytest configuration: Hypothesis CI profiles.

Two registered profiles trade property-suite coverage for wall clock:

* ``ci`` (default) — the PR-gate budget; per-test ``max_examples`` pins
  apply as written.
* ``ci-deep`` — the nightly budget; every property's example budget is
  scaled up by ``tests.properties._profiles.DEEP_SCALE`` (the scheduled
  CI job exports ``HYPOTHESIS_PROFILE=ci-deep``).

Profiles are registered here so undecorated properties inherit sane CI
defaults (no deadline — shared runners stall unpredictably); decorated
ones get their scaling through :func:`tests.properties._profiles.
ci_settings`, because an explicit ``@settings`` overrides any profile.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    settings = None

if settings is not None:
    settings.register_profile("ci", deadline=None)
    settings.register_profile("ci-deep", deadline=None, max_examples=1000)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
