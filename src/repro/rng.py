"""Random-number-generation helpers.

Everything stochastic in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).  These
helpers normalise that convention and provide independent child streams so
that, e.g., every Monte-Carlo run or RR-set draws from its own substream and
results are reproducible regardless of evaluation order.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def stable_hash(text: str) -> int:
    """A process-independent 32-bit hash of ``text``.

    Python's built-in :func:`hash` of strings is randomised per process by
    ``PYTHONHASHSEED``, so it must never feed seed derivation; this CRC-32
    digest is stable across runs and platforms.
    """
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing ``Generator`` (returned as-is),
    a ``SeedSequence``, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]  # type: ignore[union-attr]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def rng_stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent generators from ``seed``."""
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    while True:
        (child,) = seq.spawn(1)
        yield np.random.default_rng(child)


def derive_seed(seed: Optional[int], *salt: int) -> Optional[int]:
    """Derive a deterministic child seed from ``seed`` and ``salt`` integers.

    Returns ``None`` if ``seed`` is ``None`` (preserving "fresh entropy").
    """
    if seed is None:
        return None
    value = np.random.SeedSequence([seed, *salt]).generate_state(1)[0]
    return int(value)
