"""Activation equivalence (Definition 2 / Lemma 5) for every RR generator.

For a fixed root ``v`` and seed set ``S``, the probability that ``S``
"activates" ``v`` in the model must equal the probability that ``S``
intersects a random RR-set rooted at ``v``.  The left side comes from the
exact enumeration oracle; the right side is a Monte-Carlo frequency over
independently generated RR-sets.
"""

import numpy as np
import pytest

from repro.graph import DiGraph
from repro.models import GAP, exact_adoption_probabilities
from repro.rng import make_rng
from repro.rrset import (
    RRCimGenerator,
    RRICGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
)

SAMPLES = 3000
TOLERANCE = 4.5 / np.sqrt(SAMPLES)


def fixture_graph() -> DiGraph:
    return DiGraph.from_edges(
        6,
        [
            (0, 1, 0.7),
            (0, 2, 0.5),
            (1, 3, 0.8),
            (2, 3, 0.6),
            (3, 4, 0.9),
            (2, 4, 0.4),
            (4, 5, 0.7),
        ],
    )


def intersection_frequency(generator, root, seed_sets, rng):
    hits = {key: 0 for key in seed_sets}
    for _ in range(SAMPLES):
        rr = set(generator.generate(rng=rng, root=root).tolist())
        for key, seeds in seed_sets.items():
            if rr & set(seeds):
                hits[key] += 1
    return {key: count / SAMPLES for key, count in hits.items()}


class TestRRIC:
    @pytest.mark.parametrize("root", [3, 5])
    def test_equivalence(self, root):
        graph = fixture_graph()
        gaps = GAP.classic_ic()
        seed_sets = {"single": [0], "pair": [1, 2], "self": [root]}
        freq = intersection_frequency(
            RRICGenerator(graph), root, seed_sets, make_rng(root)
        )
        for key, seeds in seed_sets.items():
            pa, _ = exact_adoption_probabilities(graph, gaps, seeds, [])
            assert freq[key] == pytest.approx(pa[root], abs=TOLERANCE), key


class TestRRSim:
    @pytest.mark.parametrize("root", [3, 4])
    @pytest.mark.parametrize(
        "gaps",
        [
            GAP(0.3, 0.8, 0.5, 0.5),   # one-way complementarity
            GAP(0.6, 0.6, 0.4, 0.4),   # full indifference
            GAP(0.2, 1.0, 0.9, 0.9),   # strong boost
        ],
    )
    def test_equivalence(self, root, gaps):
        graph = fixture_graph()
        seeds_b = [0]
        generator = RRSimGenerator(graph, gaps, seeds_b)
        seed_sets = {"single": [1], "pair": [1, 2], "far": [0]}
        freq = intersection_frequency(generator, root, seed_sets, make_rng(7 + root))
        for key, seeds in seed_sets.items():
            pa, _ = exact_adoption_probabilities(graph, gaps, seeds, seeds_b)
            assert freq[key] == pytest.approx(pa[root], abs=TOLERANCE), key


class TestRRSimPlus:
    @pytest.mark.parametrize("root", [3, 5])
    def test_equivalence(self, root):
        graph = fixture_graph()
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        seeds_b = [0]
        generator = RRSimPlusGenerator(graph, gaps, seeds_b)
        seed_sets = {"single": [1], "pair": [1, 2]}
        freq = intersection_frequency(generator, root, seed_sets, make_rng(17 + root))
        for key, seeds in seed_sets.items():
            pa, _ = exact_adoption_probabilities(graph, gaps, seeds, seeds_b)
            assert freq[key] == pytest.approx(pa[root], abs=TOLERANCE), key


class TestRRCim:
    @pytest.mark.parametrize("root", [3, 4, 5])
    def test_equivalence(self, root):
        """For CompInfMax, activation means *flipping* the root: A-adopted
        with the B-seed set but not without any B-seeds."""
        graph = fixture_graph()
        gaps = GAP(0.2, 0.9, 0.5, 1.0)
        seeds_a = [0]
        generator = RRCimGenerator(graph, gaps, seeds_a)
        seed_sets = {"single": [1], "pair": [2, 4], "self": [root]}
        freq = intersection_frequency(generator, root, seed_sets, make_rng(27 + root))
        pa_base, _ = exact_adoption_probabilities(graph, gaps, seeds_a, [])
        for key, seeds in seed_sets.items():
            pa_with, _ = exact_adoption_probabilities(graph, gaps, seeds_a, seeds)
            flip_probability = pa_with[root] - pa_base[root]
            assert freq[key] == pytest.approx(flip_probability, abs=TOLERANCE), key
