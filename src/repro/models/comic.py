"""The Com-IC diffusion engine (paper §3, Fig. 2).

:func:`simulate` runs one complete diffusion of two items A and B from seed
sets ``seeds_a`` / ``seeds_b`` over a :class:`~repro.graph.digraph.DiGraph`,
with every random decision delegated to a
:class:`~repro.models.sources.RandomnessSource`.  Semantics implemented, in
the paper's terms:

1. **Edge transition** — an untested edge is live with probability
   ``p(u, v)``; each edge is tested at most once per diffusion (the source
   memoises outcomes).  Live edges are persistent information channels:
   every adoption by the tail is forwarded to the head.
2. **Tie-breaking** — informers that delivered information in the same step
   are processed in an order drawn by the source; a node that adopted both
   items informs them in its own adoption order.
3. **Node adoption** — an idle node informed of A adopts with probability
   ``q_{A|∅}`` (becoming suspended on failure) if not B-adopted, else with
   ``q_{A|B}`` (becoming rejected on failure); symmetrically for B.  The
   NLA runs at most once per (node, item): suspended/adopted/rejected nodes
   ignore further informs of that item.
4. **Node reconsideration** — when a node adopts one item while suspended
   on the other, it immediately reconsiders the other with probability
   ``rho = max(q_cond - q_uncond, 0) / (1 - q_uncond)``.

Seeds adopt unconditionally at step 0; a node in both seed sets orders its
two adoptions by a fair coin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.sources import (
    ITEM_A,
    ITEM_B,
    CoinSource,
    RandomnessSource,
)
from repro.models.states import ItemState
from repro.rng import SeedLike

_IDLE = int(ItemState.IDLE)
_SUSPENDED = int(ItemState.SUSPENDED)
_ADOPTED = int(ItemState.ADOPTED)
_REJECTED = int(ItemState.REJECTED)


@dataclass
class DiffusionOutcome:
    """Final configuration of one Com-IC diffusion.

    ``state_a`` / ``state_b`` hold :class:`~repro.models.states.ItemState`
    values; ``adopted_a_at`` / ``adopted_b_at`` hold adoption time steps
    (-1 when never adopted).
    """

    state_a: np.ndarray
    state_b: np.ndarray
    adopted_a_at: np.ndarray
    adopted_b_at: np.ndarray
    steps: int

    @property
    def a_adopted(self) -> np.ndarray:
        """Boolean mask of A-adopted nodes."""
        return self.state_a == _ADOPTED

    @property
    def b_adopted(self) -> np.ndarray:
        """Boolean mask of B-adopted nodes."""
        return self.state_b == _ADOPTED

    @property
    def num_a_adopted(self) -> int:
        """Number of A-adopted nodes."""
        return int(np.count_nonzero(self.state_a == _ADOPTED))

    @property
    def num_b_adopted(self) -> int:
        """Number of B-adopted nodes."""
        return int(np.count_nonzero(self.state_b == _ADOPTED))

    def joint_state(self, node: int) -> tuple[ItemState, ItemState]:
        """``(A-state, B-state)`` of ``node``."""
        return ItemState(int(self.state_a[node])), ItemState(int(self.state_b[node]))


def _normalize_seeds(graph: DiGraph, seeds: Iterable[int], label: str) -> list[int]:
    """Validate and deduplicate a seed iterable, preserving order."""
    seen: set[int] = set()
    result: list[int] = []
    for s in seeds:
        v = int(s)
        if not 0 <= v < graph.num_nodes:
            raise SeedSetError(f"{label} seed {v} out of range [0, {graph.num_nodes - 1}]")
        if v not in seen:
            seen.add(v)
            result.append(v)
    return result


def simulate(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    rng: SeedLike = None,
    source: Optional[RandomnessSource] = None,
    max_steps: Optional[int] = None,
) -> DiffusionOutcome:
    """Run one Com-IC diffusion and return its final configuration.

    Exactly one of ``rng`` / ``source`` drives the randomness: when
    ``source`` is ``None`` a fresh :class:`CoinSource` is built from ``rng``
    (the stochastic model); passing a
    :class:`~repro.models.sources.WorldSource` runs the deterministic
    cascade of §5.1 in that world.
    """
    if source is None:
        source = CoinSource(rng)
    set_a = _normalize_seeds(graph, seeds_a, "A")
    set_b = _normalize_seeds(graph, seeds_b, "B")

    n = graph.num_nodes
    state = (np.full(n, _IDLE, dtype=np.int8), np.full(n, _IDLE, dtype=np.int8))
    adopted_at = (np.full(n, -1, dtype=np.int64), np.full(n, -1, dtype=np.int64))
    q_uncond = (gaps.q_a, gaps.q_b)
    q_cond = (gaps.q_a_given_b, gaps.q_b_given_a)

    seq_counter = 0
    # Adoption events of the current step, in adoption order: (node, item, seq).
    newly: list[tuple[int, int, int]] = []

    def adopt(v: int, item: int, t: int) -> None:
        nonlocal seq_counter
        state[item][v] = _ADOPTED
        adopted_at[item][v] = t
        newly.append((v, item, seq_counter))
        seq_counter += 1

    def process_inform(v: int, item: int, t: int) -> None:
        if state[item][v] != _IDLE:
            return
        other = 1 - item
        other_adopted = state[other][v] == _ADOPTED
        if source.adopt_on_inform(v, item, q_uncond[item], q_cond[item], other_adopted):
            adopt(v, item, t)
            if state[other][v] == _SUSPENDED:
                if source.reconsider(v, other, q_uncond[other], q_cond[other]):
                    adopt(v, other, t)
                else:
                    state[other][v] = _REJECTED
        else:
            state[item][v] = _REJECTED if other_adopted else _SUSPENDED

    # ------------------------------------------------------------------
    # Step 0: seed adoptions (no NLA test; dual seeds order by fair coin).
    # ------------------------------------------------------------------
    both = set(set_a) & set(set_b)
    for v in sorted(set(set_a) | set(set_b)):
        if v in both:
            if source.seed_a_first(v):
                adopt(v, ITEM_A, 0)
                adopt(v, ITEM_B, 0)
            else:
                adopt(v, ITEM_B, 0)
                adopt(v, ITEM_A, 0)
        elif v in set(set_a):
            adopt(v, ITEM_A, 0)
        else:
            adopt(v, ITEM_B, 0)

    # ------------------------------------------------------------------
    # Global iteration (Fig. 2): adoptions at t-1 emit informs at t.
    # ------------------------------------------------------------------
    t = 0
    limit = max_steps if max_steps is not None else 2 * n + 2
    while newly and t < limit:
        t += 1
        outgoing = newly
        newly = []
        # Gather informs crossing live edges: target -> [(u, eid, item, seq)].
        informs: dict[int, list[tuple[int, int, int, int]]] = {}
        for u, item, seq in outgoing:
            targets, probs, eids = graph.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if state[item][v] != _IDLE:
                    # The inform cannot change v's state for this item, so by
                    # deferred decision the edge test can be postponed to the
                    # next inform that crosses this edge (if any).
                    continue
                if source.edge_live(int(eids[idx]), float(probs[idx]), item):
                    informs.setdefault(v, []).append((u, int(eids[idx]), item, seq))
        for v, batch in informs.items():
            if len(batch) == 1:
                process_inform(v, batch[0][2], t)
                continue
            # Tie-breaking: order distinct informers by the source's
            # permutation; a dual informer contributes in adoption order.
            unique: list[tuple[int, int]] = []
            seen: set[int] = set()
            for u, eid, _item, _seq in batch:
                if u not in seen:
                    seen.add(u)
                    unique.append((u, eid))
            if len(unique) == 1:
                order = {unique[0][0]: 0}
            else:
                permutation = source.informer_order(v, unique)
                order = {unique[i][0]: rank for rank, i in enumerate(permutation)}
            batch.sort(key=lambda rec: (order[rec[0]], rec[3]))
            for u, _eid, item, _seq in batch:
                process_inform(v, item, t)
                # Re-check: once both items are settled there is nothing
                # left to test for v this step.
                if state[ITEM_A][v] != _IDLE and state[ITEM_B][v] != _IDLE:
                    break

    return DiffusionOutcome(
        state_a=state[ITEM_A],
        state_b=state[ITEM_B],
        adopted_a_at=adopted_at[ITEM_A],
        adopted_b_at=adopted_at[ITEM_B],
        steps=t,
    )
