"""Sandwich Approximation (paper §6.4, Theorem 9).

To maximise a non-submodular function ``sigma`` that is bounded by
submodular functions ``mu <= sigma <= nu``, run an approximation algorithm
on ``mu``, ``nu`` (and optionally greedily on ``sigma`` itself) and return
whichever candidate evaluates best *under the true* ``sigma``::

    S_sand = argmax_{S in {S_mu, S_sigma, S_nu}} sigma(S)

The selected set satisfies the data-dependent guarantee of Theorem 9::

    sigma(S_sand) >= max( sigma(S_nu)/nu(S_nu), mu(S*)/sigma(S*) )
                     * (1 - 1/e) * sigma(S*)

The first factor, ``sigma(S_nu)/nu(S_nu)``, is computable and is what the
paper's Table 8 reports; :func:`sandwich_select` returns the evaluations
needed to form it.  The strategy is generic — nothing here is specific to
Com-IC — which mirrors the paper's claim that SA applies to any
non-submodular maximisation with submodular bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

SeedSet = Sequence[int]
Objective = Callable[[SeedSet], float]


@dataclass
class SandwichResult:
    """Outcome of a sandwich selection.

    ``evaluations`` maps candidate name -> true-objective value; ``seeds``
    is the winning set, ``winner`` its name.
    """

    winner: str
    seeds: list[int]
    value: float
    evaluations: dict[str, float] = field(default_factory=dict)
    candidates: dict[str, list[int]] = field(default_factory=dict)

    def approximation_ratio_bound(self, nu_of_s_nu: float, nu_name: str = "nu") -> float:
        """The computable factor ``sigma(S_nu) / nu(S_nu)`` of Theorem 9.

        ``nu_of_s_nu`` is the upper-bound function's own value at its
        solution.  Returns 1.0 when the bound is degenerate (zero).
        """
        if nu_of_s_nu <= 0.0:
            return 1.0
        return min(self.evaluations[nu_name] / nu_of_s_nu, 1.0)


def sandwich_select(
    candidates: Mapping[str, SeedSet],
    sigma: Objective,
) -> SandwichResult:
    """Evaluate every candidate under the true objective; return the best.

    ``candidates`` maps names (e.g. ``"mu"``, ``"nu"``, ``"sigma"``) to seed
    sets produced by the bound solvers.  Ties break toward the earliest
    candidate in iteration order, making results deterministic.
    """
    if not candidates:
        raise ValueError("sandwich_select needs at least one candidate")
    evaluations: dict[str, float] = {}
    best_name = ""
    best_value = float("-inf")
    for name, seeds in candidates.items():
        value = float(sigma(seeds))
        evaluations[name] = value
        if value > best_value:
            best_value = value
            best_name = name
    return SandwichResult(
        winner=best_name,
        seeds=list(candidates[best_name]),
        value=best_value,
        evaluations=evaluations,
        candidates={name: list(seeds) for name, seeds in candidates.items()},
    )
