"""RR-sets for the classic Linear Threshold model (Triggering view, [15, 24]).

Kempe et al. prove LT equivalent to the Triggering model in which every
node independently selects *at most one* in-neighbour — edge ``(u, v)``
with probability ``w(u, v)``, nobody with the residual ``1 - sum_u w`` —
and activation is reachability over selected edges.  A random RR-set of a
root ``v`` is therefore a reverse *path*: follow ``v``'s selected
in-neighbour, then its selection, and so on until a node selects nobody or
the walk closes a cycle.  This is TIM's LT sampler [24]; plugged into
:func:`~repro.rrset.tim.general_tim` / :func:`~repro.rrset.imm.general_imm`
it yields a VanillaLT baseline, the LT counterpart of §7's VanillaIC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.lt import _check_lt_instance
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator


class RRLTGenerator(RRSetGenerator):
    """Random RR-set sampler for single-item LT.

    Edge probabilities are LT weights; per-node incoming sums must not
    exceed 1 (:func:`~repro.models.lt.normalize_lt_weights`).
    """

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        _check_lt_instance(graph)

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None
    ) -> np.ndarray:
        gen = make_rng(rng)
        graph = self._graph
        if root is None:
            root = int(gen.integers(0, graph.num_nodes))
        visited = {int(root)}
        chain = [int(root)]
        current = int(root)
        while True:
            sources, weights, _eids = graph.in_edges(current)
            if sources.size == 0:
                break
            draw = float(gen.random())
            cumulative = np.cumsum(weights)
            idx = int(np.searchsorted(cumulative, draw, side="right"))
            if idx >= sources.size:
                break  # the residual mass: nobody triggers `current`
            selected = int(sources[idx])
            if selected in visited:
                break  # cycle closed; reachability gains nothing new
            visited.add(selected)
            chain.append(selected)
            current = selected
        return np.asarray(chain, dtype=np.int64)


def vanilla_lt_seeds(
    graph: DiGraph,
    k: int,
    *,
    options=None,
    rng: SeedLike = None,
) -> list[int]:
    """VanillaLT: TIM seed selection under classic LT (rank order).

    The LT sibling of
    :func:`~repro.algorithms.baselines.vanilla_ic_seeds`.
    """
    from repro.rrset.tim import TIMOptions, general_tim

    result = general_tim(
        RRLTGenerator(graph), k,
        options=options if options is not None else TIMOptions(),
        rng=rng,
    )
    return result.seeds
