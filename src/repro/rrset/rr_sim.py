"""RR-SIM: RR-set generation for SelfInfMax (paper Algorithm 2, §6.2.1).

Valid regime (Theorem 7): one-way complementarity — B complements A
(``q_{A|∅} <= q_{A|B}``) while A is indifferent to B
(``q_{B|∅} = q_{B|A}``), so B's diffusion is independent of A-seeds
(Lemma 3) and can be resolved *before* reasoning about A.

Three phases over one lazily-sampled world:

* **Phase I** (implicit) — world variables materialise on demand through a
  shared :class:`~repro.models.sources.WorldSource`.
* **Phase II** — forward labeling from the fixed B-seed set: a node is
  B-adopted iff it is a B-seed or reachable from one via live edges through
  nodes with ``alpha_B < q_{B|∅}``.
* **Phase III** — backward BFS from the root: a dequeued node joins the
  RR-set; its in-neighbours are explored only if the node could itself
  adopt A upon being informed (``alpha_A < q_{A|B}`` if B-adopted, else
  ``alpha_A < q_{A|∅}``) — otherwise it could only be A-adopted as a seed.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator


def check_rr_sim_regime(gaps: GAP) -> None:
    """Raise :class:`RegimeError` unless Theorem 7's conditions hold."""
    if not gaps.is_one_way_complementarity_for_a:
        raise RegimeError(
            "RR-SIM requires one-way complementarity: q_{A|∅} <= q_{A|B} and "
            f"q_{{B|∅}} = q_{{B|A}}; got {gaps}"
        )


def forward_label_b_adopted(
    graph: DiGraph,
    world: WorldSource,
    q_b: float,
    seeds_b: Iterable[int],
) -> set[int]:
    """Phase-II forward labeling: the B-adopted set in this world.

    Seeds adopt unconditionally; other nodes need a live-edge path of
    B-adopted nodes and ``alpha_B < q_{B|∅}``.
    """
    b_adopted: set[int] = set()
    queue: deque[int] = deque()
    for s in seeds_b:
        s = int(s)
        if s not in b_adopted:
            b_adopted.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        targets, probs, eids = graph.out_edges(u)
        for idx in range(targets.size):
            v = int(targets[idx])
            if v in b_adopted:
                continue
            if not world.edge_live(int(eids[idx]), float(probs[idx])):
                continue
            if world.alpha(v, ITEM_B) < q_b:
                b_adopted.add(v)
                queue.append(v)
    return b_adopted


def backward_search_a(
    graph: DiGraph,
    world: WorldSource,
    gaps: GAP,
    root: int,
    b_adopted: set[int],
) -> np.ndarray:
    """Phase-III backward BFS producing the RR-set of ``root``."""
    rr_set: list[int] = []
    visited = {root}
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        rr_set.append(u)
        threshold = gaps.q_a_given_b if u in b_adopted else gaps.q_a
        if world.alpha(u, ITEM_A) >= threshold:
            # u can only be A-adopted as a seed; don't explore beyond it.
            continue
        sources, probs, eids = graph.in_edges(u)
        for idx in range(sources.size):
            w = int(sources[idx])
            if w in visited:
                continue
            if world.edge_live(int(eids[idx]), float(probs[idx])):
                visited.add(w)
                queue.append(w)
    return np.asarray(rr_set, dtype=np.int64)


class RRSimGenerator(RRSetGenerator):
    """Random RR-set sampler for SelfInfMax (Algorithm 2)."""

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_b: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_sim_regime(gaps)
        self._gaps = gaps
        self._seeds_b = [int(s) for s in seeds_b]
        for s in self._seeds_b:
            if not 0 <= s < graph.num_nodes:
                raise RegimeError(f"B-seed {s} out of range")

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (one-way complementarity)."""
        return self._gaps

    @property
    def seeds_b(self) -> list[int]:
        """The fixed B-seed set."""
        return list(self._seeds_b)

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        b_adopted = forward_label_b_adopted(
            self._graph, world, self._gaps.q_b, self._seeds_b
        )
        return backward_search_a(self._graph, world, self._gaps, root, b_adopted)
