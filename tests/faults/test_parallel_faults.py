"""Injected worker crashes, hangs and slowness against ParallelEngine.

Every scenario runs real spawned workers; the *faults* are deterministic
(parent-armed directives shipped with the shard task), so each test
exercises the genuine recovery machinery — executor teardown, respawn,
shard re-dispatch, serial fallback — without racing actual process kills.
"""

import numpy as np
import pytest

from repro.deadline import Deadline, deadline_scope
from repro.errors import DeadlineExceeded
from repro.faults import FaultPlan, FaultSpec, fault_scope
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.parallel import ParallelEngine
from repro.rrset import RRSimGenerator

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
OPPOSITE = [0, 1]
#: ``times`` large enough to outlast any retry budget.
FOREVER = 10**6


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(200, rng=11))


def make_engine(graph, **kwargs):
    kwargs.setdefault("min_batch_per_worker", 1)
    kwargs.setdefault("backoff_s", 0.0)
    return ParallelEngine(RRSimGenerator(graph, GAPS, OPPOSITE), 2, **kwargs)


def pools_equal(a, b):
    return (
        len(a) == len(b)
        and np.array_equal(np.asarray(a.nodes), np.asarray(b.nodes))
        and np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr))
    )


class TestCrashRecovery:
    def test_single_crash_recovers_to_fault_free_result(self, graph):
        with make_engine(graph) as eng:
            baseline = eng.generate_batch(400, rng=7)
        plan = FaultPlan([FaultSpec("parallel.shard", "crash", at=0)])
        with make_engine(graph) as eng:
            with fault_scope(plan):
                recovered = eng.generate_batch(400, rng=7)
            stats = eng.stats
        # the worker really died and the shard was really re-dispatched …
        assert plan.fired == [
            {"site": "parallel.shard", "kind": "crash", "index": 0}
        ]
        assert stats.retries >= 1
        assert stats.restarts >= 1
        assert stats.serial_fallbacks == 0
        # … yet the merged pool is byte-identical to the undisturbed run.
        assert pools_equal(recovered, baseline)

    def test_persistent_crashes_fall_back_to_exact_serial_result(self, graph):
        serial = RRSimGenerator(graph, GAPS, OPPOSITE)
        expected = serial.generate_batch(300, rng=np.random.default_rng(13))
        plan = FaultPlan(
            [FaultSpec("parallel.shard", "crash", times=FOREVER)]
        )
        with make_engine(graph, max_shard_attempts=2) as eng:
            with fault_scope(plan), pytest.warns(RuntimeWarning, match="serially"):
                degraded = eng.generate_batch(
                    300, rng=np.random.default_rng(13)
                )
            assert eng.stats.serial_fallbacks == 1
            assert eng.stats.retries >= 1
        # rng rewound before the fallback: identical to a pure serial run.
        assert pools_equal(degraded, expected)

    def test_recovery_is_deterministic(self, graph):
        def run():
            plan = FaultPlan([FaultSpec("parallel.shard", "crash", at=1)])
            with make_engine(graph) as eng, fault_scope(plan):
                return eng.generate_batch(200, rng=5)

        assert pools_equal(run(), run())


class TestHungWorkers:
    def test_hung_shard_is_killed_and_retried(self, graph):
        with make_engine(graph) as eng:
            baseline = eng.generate_batch(200, rng=3)
        plan = FaultPlan([FaultSpec("parallel.shard", "hang", at=0)])
        with make_engine(graph, shard_deadline_s=0.5) as eng:
            with fault_scope(plan):
                recovered = eng.generate_batch(200, rng=3)
            assert eng.stats.hung_kills >= 1
            assert eng.stats.restarts >= 1
        assert pools_equal(recovered, baseline)

    def test_slow_shard_completes_without_recovery(self, graph):
        with make_engine(graph) as eng:
            baseline = eng.generate_batch(200, rng=3)
        plan = FaultPlan(
            [FaultSpec("parallel.shard", "slow", at=0, delay_s=0.05)]
        )
        with make_engine(graph, shard_deadline_s=30.0) as eng:
            with fault_scope(plan):
                result = eng.generate_batch(200, rng=3)
            assert eng.stats.retries == 0
            assert eng.stats.hung_kills == 0
        assert pools_equal(result, baseline)


class TestQueryDeadlineAtShardJoin:
    def test_expired_deadline_raises_instead_of_waiting_on_hung_shard(
        self, graph
    ):
        plan = FaultPlan(
            [FaultSpec("parallel.shard", "hang", times=FOREVER)]
        )
        with make_engine(graph) as eng:
            with fault_scope(plan):
                with deadline_scope(Deadline(0.3)):
                    with pytest.raises(DeadlineExceeded, match="deadline"):
                        eng.generate_batch(200, rng=1)
