"""repro.api — the unified, declarative Com-IC query layer.

One :class:`ComICSession` owns a network (graph + GAPs + engine config)
and answers frozen, JSON-round-trippable query objects for all four
optimisation workloads, caching RR-set pools across queries so sweeps top
up instead of resample::

    from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery

    session = ComICSession(graph, gaps, config=EngineConfig(engine="imm"))
    result = session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=10))
    result.seeds, result.estimate, result.diagnostics

The registry (:mod:`repro.api.registry`) makes the layer extensible:
new workloads bind a query type to a handler and inherit pooling,
diagnostics and JSON transport.  ``tests/api/test_public_surface.py``
pins ``__all__`` — extend it deliberately, never accidentally.
"""

from repro.api.config import EngineConfig
# The dynamic-graph vocabulary: deltas are applied through the session
# (ComICSession.apply_delta), so their types are part of this layer's
# public surface even though their homes are repro.graph / repro.errors.
from repro.errors import DeltaError
from repro.graph.delta import GraphDelta
from repro.invalidation import InvalidationReason
from repro.api.queries import (
    BlockingQuery,
    CompInfMaxQuery,
    MultiItemQuery,
    SelfInfMaxQuery,
)
from repro.api.registry import (
    MC_ENGINE,
    ObjectiveSpec,
    generator_factory,
    get_spec,
    known_objectives,
    known_regimes,
    query_from_dict,
    query_from_json,
    register,
    register_regime,
    resolve,
    spec_for_query,
    unregister,
    unregister_regime,
)
from repro.api.results import InfluenceResult
from repro.api.session import (
    ComICSession,
    DeltaReport,
    PoolInfo,
    SessionStats,
)
# PoolKey is the shared cache/store identity; its home is repro.store but
# it is part of the session's public vocabulary (pool_info, select_seeds).
from repro.store import PoolKey

__all__ = [
    "BlockingQuery",
    "ComICSession",
    "CompInfMaxQuery",
    "DeltaError",
    "DeltaReport",
    "EngineConfig",
    "GraphDelta",
    "InfluenceResult",
    "InvalidationReason",
    "MC_ENGINE",
    "MultiItemQuery",
    "ObjectiveSpec",
    "PoolInfo",
    "PoolKey",
    "SelfInfMaxQuery",
    "SessionStats",
    "generator_factory",
    "get_spec",
    "known_objectives",
    "known_regimes",
    "query_from_dict",
    "query_from_json",
    "register",
    "register_regime",
    "resolve",
    "spec_for_query",
    "unregister",
    "unregister_regime",
]
