"""Tests for the k-item Com-IC extension (§8 future work)."""

import numpy as np
import pytest

from repro.errors import GapError, SeedSetError
from repro.graph import DiGraph, path_digraph
from repro.models import (
    GAP,
    MultiItemGaps,
    exact_adoption_probabilities,
    simulate_multi_item,
)
from repro.rng import make_rng


class TestMultiItemGaps:
    def test_uniform_construction(self):
        gaps = MultiItemGaps.uniform(3, 0.5)
        assert gaps.num_items == 3
        assert gaps.q(0, frozenset()) == 0.5
        assert gaps.q(0, frozenset({1, 2})) == 0.5

    def test_from_pairwise(self):
        pair = GAP(0.1, 0.2, 0.3, 0.4)
        gaps = MultiItemGaps.from_pairwise_gap(pair)
        assert gaps.q(0, frozenset()) == 0.1
        assert gaps.q(0, frozenset({1})) == 0.2
        assert gaps.q(1, frozenset()) == 0.3
        assert gaps.q(1, frozenset({0})) == 0.4

    def test_table_size_is_k_times_2_to_k_minus_1(self):
        gaps = MultiItemGaps.uniform(4, 0.3)
        total = sum(len(t) for t in gaps.table)
        assert total == 4 * 2 ** (4 - 1)

    def test_rejects_incomplete_table(self):
        with pytest.raises(GapError, match="cover all"):
            MultiItemGaps(num_items=2, table=({frozenset(): 0.5}, {frozenset(): 0.5}))

    def test_rejects_bad_probability(self):
        with pytest.raises(GapError):
            MultiItemGaps(
                num_items=2,
                table=(
                    {frozenset(): 1.5, frozenset({1}): 0.5},
                    {frozenset(): 0.5, frozenset({0}): 0.5},
                ),
            )

    def test_rejects_zero_items(self):
        with pytest.raises(GapError):
            MultiItemGaps(num_items=0, table=())


class TestSimulateMultiItem:
    def test_deterministic_single_item(self):
        gaps = MultiItemGaps.uniform(1, 1.0)
        adopted = simulate_multi_item(path_digraph(4), gaps, [[0]], rng=0)
        assert adopted.shape == (1, 4)
        assert adopted[0].all()

    def test_seed_set_count_checked(self):
        gaps = MultiItemGaps.uniform(2, 1.0)
        with pytest.raises(SeedSetError, match="expected 2 seed sets"):
            simulate_multi_item(path_digraph(3), gaps, [[0]], rng=0)

    def test_seed_range_checked(self):
        gaps = MultiItemGaps.uniform(1, 1.0)
        with pytest.raises(SeedSetError):
            simulate_multi_item(path_digraph(3), gaps, [[9]], rng=0)

    def test_two_item_dynamics_match_comic(self):
        """For k=2 the extension must agree with Com-IC (threshold view)."""
        graph = DiGraph.from_edges(
            5, [(0, 1, 0.8), (0, 2, 0.7), (1, 3, 0.9), (2, 3, 0.6), (3, 4, 0.5)]
        )
        pair = GAP(0.3, 0.9, 0.5, 0.95)  # Q+ so tie-breaking is immaterial
        gaps = MultiItemGaps.from_pairwise_gap(pair)
        exact_a, exact_b = exact_adoption_probabilities(graph, pair, [0], [1])
        gen = make_rng(0)
        runs = 4000
        freq = np.zeros((2, graph.num_nodes))
        for _ in range(runs):
            freq += simulate_multi_item(graph, gaps, [[0], [1]], rng=gen)
        freq /= runs
        tol = 4.5 / np.sqrt(runs)
        assert np.all(np.abs(freq[0] - exact_a) < tol)
        assert np.all(np.abs(freq[1] - exact_b) < tol)

    def test_three_item_complement_chain(self):
        """Item 2 adoptable only after both 0 and 1: q_{2|S} = 1 iff S={0,1}."""
        graph = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        table_01 = {frozenset(): 1.0, frozenset({1}): 1.0, frozenset({2}): 1.0,
                    frozenset({1, 2}): 1.0}
        table_10 = {frozenset(): 1.0, frozenset({0}): 1.0, frozenset({2}): 1.0,
                    frozenset({0, 2}): 1.0}
        table_2 = {frozenset(): 0.0, frozenset({0}): 0.0, frozenset({1}): 0.0,
                   frozenset({0, 1}): 1.0}
        gaps = MultiItemGaps(num_items=3, table=(table_01, table_10, table_2))
        # Seed items 0, 1 and 2 at the two roots; node 2 should adopt all
        # three: items 0,1 arrive and unlock the re-evaluation of item 2.
        adopted = simulate_multi_item(
            graph, gaps, [[0], [1], [0, 1]], rng=0
        )
        assert adopted[0][2] and adopted[1][2]
        assert adopted[2][2], "item 2 should adopt after both complements"

    def test_three_item_blocked_without_full_set(self):
        graph = DiGraph.from_edges(2, [(0, 1, 1.0)])
        table_0 = {frozenset(): 1.0, frozenset({1}): 1.0, frozenset({2}): 1.0,
                   frozenset({1, 2}): 1.0}
        table_1 = {frozenset(): 1.0, frozenset({0}): 1.0, frozenset({2}): 1.0,
                   frozenset({0, 2}): 1.0}
        table_2 = {frozenset(): 0.0, frozenset({0}): 0.0, frozenset({1}): 0.0,
                   frozenset({0, 1}): 1.0}
        gaps = MultiItemGaps(num_items=3, table=(table_0, table_1, table_2))
        adopted = simulate_multi_item(graph, gaps, [[0], [], [0]], rng=0)
        assert adopted[0][1]
        assert not adopted[2][1], "item 2 must stay blocked without item 1"
