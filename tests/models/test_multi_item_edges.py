"""Additional multi-item tests: probabilistic edges and spread behaviour."""

import numpy as np
import pytest

from repro.graph import path_digraph, star_digraph
from repro.models import MultiItemGaps, simulate_multi_item
from repro.rng import make_rng


class TestProbabilisticEdges:
    def test_edge_probability_respected(self):
        """Single item on a 2-node path with p = 0.3: adoption frequency of
        the second node must track the edge probability."""
        graph = path_digraph(2, probability=0.3)
        gaps = MultiItemGaps.uniform(1, 1.0)
        gen = make_rng(0)
        runs = 4000
        hits = sum(
            int(simulate_multi_item(graph, gaps, [[0]], rng=gen)[0][1])
            for _ in range(runs)
        )
        assert hits / runs == pytest.approx(0.3, abs=4.5 / np.sqrt(runs))

    def test_edge_tested_once_across_items(self):
        """Three fully independent items crossing one p = 0.5 edge: the
        channel opens once for all of them, so the three adoption
        indicators at the head must always agree."""
        graph = path_digraph(2, probability=0.5)
        gaps = MultiItemGaps.uniform(3, 1.0)
        gen = make_rng(1)
        for _ in range(200):
            adopted = simulate_multi_item(
                graph, gaps, [[0], [0], [0]], rng=gen
            )
            head = adopted[:, 1]
            assert head.all() or not head.any(), (
                "per-item disagreement implies the edge was re-tested"
            )


class TestSpreadBehaviour:
    def test_complementary_items_spread_further_together(self):
        """Item 1 needs item 0 (q=0 alone, q=1 given 0): seeding both at
        the hub must carry item 1 everywhere item 0 goes."""
        graph = star_digraph(10)
        table_0 = {frozenset(): 1.0, frozenset({1}): 1.0}
        table_1 = {frozenset(): 0.0, frozenset({0}): 1.0}
        gaps = MultiItemGaps(num_items=2, table=(table_0, table_1))
        adopted = simulate_multi_item(graph, gaps, [[0], [0]], rng=0)
        assert adopted[0].all()
        assert adopted[1].all()

    def test_dependent_item_stuck_without_enabler(self):
        graph = star_digraph(10)
        table_0 = {frozenset(): 1.0, frozenset({1}): 1.0}
        table_1 = {frozenset(): 0.0, frozenset({0}): 1.0}
        gaps = MultiItemGaps(num_items=2, table=(table_0, table_1))
        adopted = simulate_multi_item(graph, gaps, [[], [0]], rng=0)
        assert adopted[1].sum() == 1  # only its own seed
