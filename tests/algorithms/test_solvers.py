"""End-to-end tests for the SelfInfMax and CompInfMax solvers."""

import pytest

from repro.errors import RegimeError, SeedSetError
from repro.graph import DiGraph, star_digraph, weighted_cascade_probabilities, power_law_digraph
from repro.models import GAP, estimate_boost, estimate_spread
from repro.algorithms import (
    random_seeds,
    solve_compinfmax,
    solve_selfinfmax,
    theorem2_optimal_b_seeds,
)
from repro.rrset import TIMOptions

FAST = TIMOptions(theta_override=1200)


def small_network() -> "DiGraph":
    return weighted_cascade_probabilities(power_law_digraph(150, rng=5))


class TestSolveSelfInfMax:
    def test_submodular_regime_single_run(self):
        graph = small_network()
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        result = solve_selfinfmax(graph, gaps, [0], 3, options=FAST, rng=0)
        assert result.method == "submodular"
        assert len(result.seeds) == 3
        assert "sigma" in result.tim_results

    def test_sandwich_regime(self):
        graph = small_network()
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        result = solve_selfinfmax(
            graph, gaps, [0], 3, options=FAST, rng=0, evaluation_runs=80
        )
        assert result.method == "sandwich"
        assert set(result.tim_results) == {"nu", "mu"}
        assert result.sandwich is not None
        assert result.sandwich.winner in ("nu", "mu")

    def test_rejects_non_q_plus(self):
        with pytest.raises(RegimeError):
            solve_selfinfmax(small_network(), GAP(0.8, 0.3, 0.5, 0.5), [0], 2)

    def test_beats_random_seeds(self):
        graph = small_network()
        gaps = GAP(0.3, 0.8, 0.5, 0.5)
        seeds_b = random_seeds(graph, 5, rng=1)
        result = solve_selfinfmax(graph, gaps, seeds_b, 5, options=FAST, rng=2)
        ours = estimate_spread(graph, gaps, result.seeds, seeds_b, runs=300, rng=3)
        rand = estimate_spread(
            graph, gaps, random_seeds(graph, 5, rng=4), seeds_b, runs=300, rng=3
        )
        assert ours.mean > rand.mean

    def test_greedy_candidate_included(self):
        graph = star_digraph(12)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        result = solve_selfinfmax(
            graph, gaps, [1], 1, options=TIMOptions(theta_override=200),
            rng=0, include_greedy_candidate=True, greedy_runs=20,
            evaluation_runs=50,
        )
        assert "sigma" in result.sandwich.evaluations


class TestSolveCompInfMax:
    def test_submodular_regime_single_run(self):
        graph = small_network()
        gaps = GAP(0.2, 0.9, 0.5, 1.0)
        result = solve_compinfmax(graph, gaps, [0, 1], 3, options=FAST, rng=0)
        assert result.method == "submodular"
        assert len(result.seeds) == 3

    def test_sandwich_regime(self):
        graph = small_network()
        gaps = GAP(0.2, 0.9, 0.5, 0.9)
        result = solve_compinfmax(
            graph, gaps, [0, 1], 3, options=FAST, rng=0, evaluation_runs=80
        )
        assert result.method == "sandwich"
        assert result.sandwich is not None

    def test_rejects_non_q_plus(self):
        with pytest.raises(RegimeError):
            solve_compinfmax(small_network(), GAP(0.8, 0.3, 0.5, 1.0), [0], 2)

    def test_boost_beats_random(self):
        graph = small_network()
        gaps = GAP(0.1, 0.9, 0.5, 1.0)
        seeds_a = random_seeds(graph, 5, rng=7)
        result = solve_compinfmax(graph, gaps, seeds_a, 5, options=FAST, rng=8)
        ours = estimate_boost(graph, gaps, seeds_a, result.seeds, runs=300, rng=9)
        rand = estimate_boost(
            graph, gaps, seeds_a, random_seeds(graph, 5, rng=10), runs=300, rng=9
        )
        assert ours.mean >= rand.mean


class TestTheorem2:
    def test_copying_is_optimal_when_qb_is_one(self):
        """q_{B|∅} = 1 and k >= |S_A|: S_B = S_A ∪ X is optimal (Theorem 2).
        Verified by exhaustive comparison on a small instance."""
        import itertools

        from repro.models import exact_spread

        graph = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
        )
        gaps = GAP(q_a=0.4, q_a_given_b=0.9, q_b=1.0, q_b_given_a=1.0)
        seeds_a = [0]
        k = 1
        copying_value, _ = exact_spread(graph, gaps, seeds_a, seeds_a)
        for candidate in itertools.combinations(range(4), k):
            value, _ = exact_spread(graph, gaps, seeds_a, list(candidate))
            assert value <= copying_value + 1e-9

    def test_helper_returns_superset_of_seeds_a(self):
        graph = star_digraph(10)
        seeds = theorem2_optimal_b_seeds(graph, [2, 5], 4, rng=0)
        assert set(seeds) >= {2, 5}
        assert len(seeds) == 4
        assert len(set(seeds)) == 4

    def test_helper_rejects_small_k(self):
        with pytest.raises(SeedSetError):
            theorem2_optimal_b_seeds(star_digraph(5), [0, 1, 2], 2)
