"""Tests for the §5.1 equivalence-class enumeration (Eq. 2)."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, RegimeError
from repro.graph import DiGraph, path_digraph
from repro.models import (
    GAP,
    enumerate_equivalence_classes,
    exact_spread,
    exact_spread_via_equivalence_classes,
    threshold_ranges,
)


class TestThresholdRanges:
    def test_three_ranges_in_general_position(self):
        ranges = threshold_ranges(0.3, 0.8)
        assert ranges == [(0.0, 0.3), (0.3, pytest.approx(0.5)), (0.8, pytest.approx(0.2))]

    def test_widths_sum_to_one(self):
        for q1, q2 in [(0.3, 0.8), (0.0, 0.5), (0.5, 0.5), (0.0, 1.0), (1.0, 1.0)]:
            assert sum(w for _, w in threshold_ranges(q1, q2)) == pytest.approx(1.0)

    def test_degenerate_ranges_dropped(self):
        assert threshold_ranges(0.0, 0.0) == [(0.0, 1.0)]
        assert threshold_ranges(1.0, 1.0) == [(0.0, 1.0)]
        assert len(threshold_ranges(0.5, 0.5)) == 2

    def test_order_of_arguments_irrelevant(self):
        assert threshold_ranges(0.3, 0.8) == threshold_ranges(0.8, 0.3)


class TestEnumeration:
    def test_masses_sum_to_one(self):
        graph = path_digraph(3, probability=0.6)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        total = sum(
            mass for mass, _ in enumerate_equivalence_classes(graph, gaps)
        )
        assert total == pytest.approx(1.0)

    def test_class_count_is_finite_and_expected(self):
        graph = path_digraph(2, probability=0.5)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        classes = list(enumerate_equivalence_classes(graph, gaps))
        # 3 alpha_A ranges ^2 nodes * 3 alpha_B ranges ^2 * 2 edge states.
        assert len(classes) == 9 * 9 * 2

    def test_deterministic_edges_halve_enumeration(self):
        graph = path_digraph(2, probability=1.0)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        classes = list(enumerate_equivalence_classes(graph, gaps))
        # Blocked state has zero mass and is skipped.
        assert len(classes) == 9 * 9

    def test_requires_q_plus(self):
        graph = path_digraph(2)
        with pytest.raises(RegimeError):
            list(enumerate_equivalence_classes(graph, GAP(0.8, 0.2, 0.5, 0.1)))

    def test_class_limit_guard(self):
        graph = path_digraph(8, probability=0.5)
        gaps = GAP(0.3, 0.8, 0.4, 0.9)
        with pytest.raises(ConvergenceError, match="equivalence classes"):
            list(
                enumerate_equivalence_classes(graph, gaps, max_classes=100)
            )


class TestExactSpreadViaClasses:
    @pytest.mark.parametrize(
        "gaps",
        [
            GAP(0.3, 0.8, 0.4, 0.9),
            GAP(0.5, 0.5, 0.5, 0.5),
            GAP(0.0, 1.0, 1.0, 1.0),
        ],
    )
    def test_matches_decision_tree_oracle(self, gaps):
        graph = DiGraph.from_edges(
            4, [(0, 1, 0.7), (1, 2, 0.6), (0, 2, 0.5), (2, 3, 1.0)]
        )
        via_classes = exact_spread_via_equivalence_classes(graph, gaps, [0], [1])
        via_tree = exact_spread(graph, gaps, [0], [1])
        assert via_classes[0] == pytest.approx(via_tree[0], abs=1e-9)
        assert via_classes[1] == pytest.approx(via_tree[1], abs=1e-9)

    def test_dual_seed_tau_enumerated(self):
        graph = path_digraph(3, probability=0.8)
        gaps = GAP(0.2, 0.9, 0.3, 0.95)
        via_classes = exact_spread_via_equivalence_classes(graph, gaps, [0], [0])
        via_tree = exact_spread(graph, gaps, [0], [0])
        assert via_classes[0] == pytest.approx(via_tree[0], abs=1e-9)
        assert via_classes[1] == pytest.approx(via_tree[1], abs=1e-9)
