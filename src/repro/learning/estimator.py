"""GAP estimation from action logs (paper §7.2).

For items A and B the estimator counts::

    q_{A|∅} = |R_A \\ R_{B ≺ rate A}|  /  |I_A \\ R_{B ≺ inform A}|
    q_{A|B} = |R_{B ≺ rate A}|         /  |R_{B ≺ inform A}|

(and symmetrically for B), where ``R_X`` / ``I_X`` are the raters /
informed users of item X, ``R_{B ≺ rate A}`` the users who rated both with
B first, and ``R_{B ≺ inform A}`` the users who rated B before being
informed of A.  Each GAP is a Bernoulli parameter; its 95% confidence
interval is the normal approximation
``q ± 1.96 sqrt(q (1 - q) / n)`` on the denominator count ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.errors import EstimationError
from repro.learning.action_log import ActionLog
from repro.models.gaps import GAP

_Z_95 = 1.96


@dataclass(frozen=True)
class LearnedGap:
    """A learned GAP quadruple with confidence intervals and sample sizes.

    ``halfwidths`` and ``samples`` are keyed like the GAP attributes
    (``q_a``, ``q_a_given_b``, ``q_b``, ``q_b_given_a``).
    """

    item_a: Hashable
    item_b: Hashable
    gap: GAP
    halfwidths: dict[str, float]
    samples: dict[str, int]

    def interval(self, name: str) -> tuple[float, float]:
        """95% confidence interval of one GAP, clipped to [0, 1]."""
        value = getattr(self.gap, name)
        half = self.halfwidths[name]
        return (max(value - half, 0.0), min(value + half, 1.0))

    def contains_truth(self, truth: GAP, *, slack: float = 1.0) -> bool:
        """Whether every true GAP lies within ``slack`` interval halfwidths.

        With ``slack=1`` this is the joint 95% test, which by construction
        fails ~19% of the time even for a perfect estimator (four
        simultaneous 95% intervals); callers checking recovery of all four
        parameters typically pass ``slack=2``.
        """
        for name in ("q_a", "q_a_given_b", "q_b", "q_b_given_a"):
            half = slack * self.halfwidths[name] + 1e-12
            value = getattr(self.gap, name)
            if not value - half <= getattr(truth, name) <= value + half:
                return False
        return True


def _ratio(numerator: int, denominator: int, what: str) -> tuple[float, float]:
    """Bernoulli estimate and CI halfwidth; raises when unidentifiable."""
    if denominator <= 0:
        raise EstimationError(f"no samples to estimate {what}")
    q = numerator / denominator
    half = _Z_95 * math.sqrt(q * (1.0 - q) / denominator)
    return q, half


def learn_gap_pair(log: ActionLog, item_a: Hashable, item_b: Hashable) -> LearnedGap:
    """Estimate the GAP quadruple of ``(item_a, item_b)`` from ``log``."""
    raters_a = log.raters(item_a)
    informed_a = log.informed(item_a)
    raters_b = log.raters(item_b)
    informed_b = log.informed(item_b)

    b_rate_a = log.rated_before_rating(item_b, item_a)
    b_inform_a = log.rated_before_informed(item_b, item_a)
    a_rate_b = log.rated_before_rating(item_a, item_b)
    a_inform_b = log.rated_before_informed(item_a, item_b)

    q_a, half_a = _ratio(
        len(raters_a - b_rate_a), len(informed_a - b_inform_a), "q_{A|0}"
    )
    # The conditional numerators intersect with their denominators: a user
    # who was informed of A *before* rating B (a reconsideration adopter)
    # is not a trial of the "already B-adopted when informed of A"
    # Bernoulli, even though they end up in R_{B ≺ rate A}.  (The paper's
    # formula read literally would let the ratio exceed 1.)
    q_a_given_b, half_ab = _ratio(
        len(b_rate_a & b_inform_a), len(b_inform_a), "q_{A|B}"
    )
    q_b, half_b = _ratio(
        len(raters_b - a_rate_b), len(informed_b - a_inform_b), "q_{B|0}"
    )
    q_b_given_a, half_ba = _ratio(
        len(a_rate_b & a_inform_b), len(a_inform_b), "q_{B|A}"
    )

    return LearnedGap(
        item_a=item_a,
        item_b=item_b,
        gap=GAP(q_a=q_a, q_a_given_b=q_a_given_b, q_b=q_b, q_b_given_a=q_b_given_a),
        halfwidths={
            "q_a": half_a,
            "q_a_given_b": half_ab,
            "q_b": half_b,
            "q_b_given_a": half_ba,
        },
        samples={
            "q_a": len(informed_a - b_inform_a),
            "q_a_given_b": len(b_inform_a),
            "q_b": len(informed_b - a_inform_b),
            "q_b_given_a": len(a_inform_b),
        },
    )
