"""Ablation: IMM [23] vs GeneralTIM [24] as the seed-selection engine.

The paper notes (§6) that its RR-set constructions are orthogonal to the
martingale improvement of [23]; this bench checks the practical claim on
our datasets: with theoretical sample bounds IMM needs *fewer* RR-sets
than TIM's Eq. (3) for the same (eps, ell), at equal seed quality.

Rows land in ``benchmarks/results/ablation_imm.md``.
"""

from repro.datasets import load_dataset
from repro.experiments import TableResult
from repro.models import GAP, estimate_spread
from repro.rrset import (
    IMMOptions,
    RRSimPlusGenerator,
    TIMOptions,
    general_imm,
    general_tim,
)

# A one-way complementary setting on the submodular path (Theorem 4 regime).
GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)


def _build(bench_scale):
    graph = load_dataset("flixster", scale=bench_scale.scale, rng=3)
    seeds_b = list(range(bench_scale.opposite_size))
    return graph, RRSimPlusGenerator(graph, GAPS, seeds_b), seeds_b


def bench_ablation_imm_engine(benchmark, bench_scale, save_table):
    graph, generator, seeds_b = _build(bench_scale)
    cap = 20_000

    def run():
        imm = general_imm(
            generator, bench_scale.k,
            options=IMMOptions(epsilon=0.5, max_rr_sets=cap), rng=11,
        )
        tim = general_tim(
            generator, bench_scale.k,
            options=TIMOptions(epsilon=0.5, max_rr_sets=cap), rng=11,
        )
        rows = []
        for name, result in (("IMM", imm), ("TIM", tim)):
            spread = estimate_spread(
                graph, GAPS, result.seeds, seeds_b,
                runs=bench_scale.mc_runs, rng=99,
            ).mean
            rows.append({
                "engine": name,
                "rr_sets": result.theta,
                "spread": round(spread, 2),
                "estimated_objective": round(result.estimated_objective, 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TableResult(
        title="Ablation: IMM vs TIM sample counts and seed quality",
        columns=["engine", "rr_sets", "spread", "estimated_objective"],
        rows=rows,
        notes=f"RR-SIM+ generator, eps=0.5, cap={20_000}, k={bench_scale.k}",
    )
    save_table(table, "ablation_imm")
    spreads = {r["engine"]: r["spread"] for r in rows}
    # Equal-quality claim: IMM's seeds are within 15% of TIM's.
    assert spreads["IMM"] >= 0.85 * spreads["TIM"]


def bench_ablation_imm_sampling_phase(benchmark, bench_scale):
    """Cost of IMM's certified sampling phase alone (rounds of greedy)."""
    _graph, generator, _seeds_b = _build(bench_scale)
    benchmark.pedantic(
        lambda: general_imm(
            generator, bench_scale.k,
            options=IMMOptions(epsilon=1.0, max_rr_sets=4000), rng=13,
        ),
        rounds=1, iterations=1,
    )
