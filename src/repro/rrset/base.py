"""General RR-set interface (paper Definition 1, §6.1).

For a diffusion model ``M`` with equivalent possible-world model ``M'``,
the RR-set of a root ``v`` in a world ``W`` is::

    R_W(v) = { u : the singleton seed set {u} activates v in W }

A *random* RR-set draws ``W`` from ``M'`` and ``v`` uniformly.  When every
world satisfies

* **(P1)** activation is monotone in the seed set, and
* **(P2)** any activating set contains a singleton activator,

the probability that a seed set ``S`` activates a uniform node equals the
probability that ``S`` intersects a random RR-set (activation equivalence,
Definition 2 / Lemma 5), which is what TIM-style algorithms estimate.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


class RRSetGenerator(abc.ABC):
    """A sampler of random RR-sets for one optimisation problem instance.

    Subclasses fix the diffusion model, the GAPs and the opposite seed set;
    :meth:`generate` draws a fresh lazy possible world per call.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> DiGraph:
        """The underlying influence graph."""
        return self._graph

    def random_root(self, rng: SeedLike = None) -> int:
        """Draw a uniform random root node."""
        gen = make_rng(rng)
        return int(gen.integers(0, self._graph.num_nodes))

    @abc.abstractmethod
    def generate(self, *, rng: SeedLike = None, root: Optional[int] = None) -> np.ndarray:
        """Return one random RR-set as a unique node-id array.

        ``root`` fixes the root (tests of activation equivalence need this);
        when ``None`` a uniform root is drawn.  Every call samples an
        independent possible world.
        """

    def generate_many(self, count: int, *, rng: SeedLike = None) -> list[np.ndarray]:
        """Generate ``count`` independent random RR-sets."""
        gen = make_rng(rng)
        return [self.generate(rng=gen) for _ in range(count)]
