"""Edge influence-probability learning (Goyal, Bonchi & Lakshmanan [12]).

The *static Bernoulli* model: the influence probability of edge
``(u, v)`` is the fraction of ``u``'s actions that propagated to ``v``::

    p(u, v) = A_{u2v} / A_u

where ``A_u`` is the number of items ``u`` rated and ``A_{u2v}`` the number
of items both rated with ``v`` strictly after ``u`` (optionally within a
propagation time window ``tau``).  This is the method the paper uses to
weight all four evaluation graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EstimationError
from repro.graph.digraph import DiGraph
from repro.learning.action_log import ActionLog

import numpy as np


def learn_influence_probabilities(
    graph: DiGraph,
    log: ActionLog,
    *,
    window: Optional[float] = None,
    smoothing: float = 0.0,
) -> DiGraph:
    """Return a copy of ``graph`` with probabilities learned from ``log``.

    Users in the log must be node ids of ``graph``.  Edges whose source
    performed no action get probability 0 (plus Laplace ``smoothing`` if
    given: ``(A_{u2v} + s) / (A_u + 2 s)``).
    """
    if window is not None and window <= 0:
        raise EstimationError(f"window must be positive, got {window}")
    if smoothing < 0:
        raise EstimationError(f"smoothing must be non-negative, got {smoothing}")

    # Per-user rating maps: node -> {item: time}.
    ratings: dict[int, dict] = {}
    for user in log.users:
        if not isinstance(user, (int, np.integer)):
            raise EstimationError(
                f"log user {user!r} is not a node id of the graph"
            )
        user = int(user)
        if not 0 <= user < graph.num_nodes:
            raise EstimationError(f"log user {user} out of node range")
        per_item = {}
        for item, action, time in log.events_of_user(user):
            if action == "rate":
                per_item[item] = time
        if per_item:
            ratings[user] = per_item

    probs = np.zeros(graph.num_edges, dtype=np.float64)
    src = graph.edge_sources
    dst = graph.edge_targets
    for eid in range(graph.num_edges):
        u, v = int(src[eid]), int(dst[eid])
        actions_u = ratings.get(u)
        if not actions_u:
            if smoothing > 0:
                probs[eid] = smoothing / (2 * smoothing)
            continue
        actions_v = ratings.get(v, {})
        propagated = 0
        for item, t_u in actions_u.items():
            t_v = actions_v.get(item)
            if t_v is None or t_v <= t_u:
                continue
            if window is not None and t_v - t_u > window:
                continue
            propagated += 1
        probs[eid] = (propagated + smoothing) / (len(actions_u) + 2 * smoothing)
    return graph.with_probabilities(np.clip(probs, 0.0, 1.0))
