"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                      # everything, default scale
    python -m repro.experiments table2 figure5       # a subset
    python -m repro.experiments --scale 0.08 --k 8 --datasets flixster,lastfm
    python -m repro.experiments --out results.md

Each experiment prints its rendered table; ``--out`` additionally writes
all of them to a markdown file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentScale, TableResult
from repro.experiments.reporting import render_table, save_results
from repro.experiments import extensions, figures, tables
from repro.rrset.tim import TIMOptions

RUNNERS: dict[str, Callable[[ExperimentScale], TableResult]] = {
    "table1": tables.table1_dataset_stats,
    "table2": tables.table2_improvement,
    "table3": tables.table3_improvement_random,
    "table4": tables.table4_improvement_top,
    "tables5to7": tables.tables5to7_learned_gaps,
    "table8": tables.table8_sandwich_ratio,
    "figure4": figures.figure4_epsilon_effect,
    "figure5": figures.figure5_selfinfmax_spread,
    "figure6": figures.figure6_compinfmax_boost,
    "figure7a": figures.figure7a_runtime,
    "figure7b": figures.figure7b_scalability,
    "figure8": figures.figure8_sa_stress,
    "engines": extensions.extension_engine_comparison,
    "heuristics": extensions.extension_heuristic_comparison,
    "sensitivity": extensions.extension_gap_sensitivity,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="NAME",
        help=f"which experiments to run (default: all). Known: {', '.join(RUNNERS)}",
    )
    parser.add_argument("--scale", type=float, default=0.04,
                        help="dataset scale factor (1.0 = paper sizes)")
    parser.add_argument("--k", type=int, default=5, help="seed-set size")
    parser.add_argument("--opposite-size", type=int, default=15)
    parser.add_argument("--mc-runs", type=int, default=150)
    parser.add_argument("--theta", type=int, default=2500,
                        help="RR-set budget per GeneralTIM run")
    parser.add_argument(
        "--datasets", default="flixster,douban-book",
        help="comma-separated dataset names",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", default=None, help="write results to this file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.experiments or list(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(RUNNERS)}", file=sys.stderr)
        return 2
    try:
        scale = ExperimentScale(
            scale=args.scale,
            k=args.k,
            opposite_size=args.opposite_size,
            mid_rank_start=max(args.opposite_size // 2, 1),
            mc_runs=args.mc_runs,
            tim_options=TIMOptions(theta_override=args.theta),
            datasets=tuple(args.datasets.split(",")),
            seed=args.seed,
        )
    except ExperimentError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    results = []
    for name in names:
        start = time.perf_counter()
        try:
            result = RUNNERS[name](scale)
        except ExperimentError as exc:
            print(f"{name} failed: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        results.append(result)
        print(render_table(result))
        print(f"({name} took {elapsed:.1f}s)\n")
    if args.out:
        save_results(results, args.out)
        print(f"wrote {len(results)} tables to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
