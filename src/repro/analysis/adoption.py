"""Per-node adoption probabilities and temporal adoption profiles.

Both quantities are #P-hard exactly (§4), so they are estimated by Monte
Carlo over independent Com-IC runs, sharing the library's seeding
conventions so results are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.models.comic import simulate
from repro.models.gaps import GAP
from repro.models.sources import CoinSource
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class AdoptionProbabilities:
    """Monte-Carlo per-node adoption probability estimates."""

    #: estimated P[v adopts A], length n.
    prob_a: np.ndarray
    #: estimated P[v adopts B], length n.
    prob_b: np.ndarray
    runs: int

    def stderr_a(self) -> np.ndarray:
        """Binomial standard error of ``prob_a`` per node."""
        return np.sqrt(self.prob_a * (1.0 - self.prob_a) / max(self.runs, 1))

    def stderr_b(self) -> np.ndarray:
        """Binomial standard error of ``prob_b`` per node."""
        return np.sqrt(self.prob_b * (1.0 - self.prob_b) / max(self.runs, 1))

    def top_adopters(self, k: int, *, item: str = "a") -> list[int]:
        """The ``k`` nodes most likely to adopt ``item`` (ties by id)."""
        if item not in ("a", "b"):
            raise ValueError(f"item must be 'a' or 'b', got {item!r}")
        probs = self.prob_a if item == "a" else self.prob_b
        order = np.argsort(-probs, kind="stable")
        return [int(v) for v in order[:k]]


def adoption_probabilities(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
) -> AdoptionProbabilities:
    """Estimate per-node adoption probabilities for both items."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    n = graph.num_nodes
    hits_a = np.zeros(n, dtype=np.int64)
    hits_b = np.zeros(n, dtype=np.int64)
    for _ in range(runs):
        outcome = simulate(graph, gaps, seeds_a, seeds_b, source=CoinSource(gen))
        hits_a += outcome.a_adopted
        hits_b += outcome.b_adopted
    return AdoptionProbabilities(
        prob_a=hits_a / runs, prob_b=hits_b / runs, runs=runs
    )


@dataclass(frozen=True)
class AdoptionTimeline:
    """Expected number of *new* adoptions per time step."""

    #: new_a[t] = expected number of nodes adopting A at step t.
    new_a: np.ndarray
    #: new_b[t] = expected number of nodes adopting B at step t.
    new_b: np.ndarray
    runs: int

    @property
    def horizon(self) -> int:
        """Number of recorded time steps (step 0 = seeding)."""
        return int(self.new_a.size)

    def cumulative_a(self) -> np.ndarray:
        """Expected cumulative A adoptions by each step."""
        return np.cumsum(self.new_a)

    def cumulative_b(self) -> np.ndarray:
        """Expected cumulative B adoptions by each step."""
        return np.cumsum(self.new_b)

    def peak_step(self, *, item: str = "a") -> int:
        """The step with the most expected new adoptions of ``item``."""
        if item not in ("a", "b"):
            raise ValueError(f"item must be 'a' or 'b', got {item!r}")
        series = self.new_a if item == "a" else self.new_b
        if series.size == 0:
            return 0
        return int(np.argmax(series))


def adoption_timeline(
    graph: DiGraph,
    gaps: GAP,
    seeds_a: Iterable[int],
    seeds_b: Iterable[int],
    *,
    runs: int = 1000,
    rng: SeedLike = None,
) -> AdoptionTimeline:
    """Estimate the expected per-step adoption profile of a campaign."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    gen = make_rng(rng)
    seeds_a = list(seeds_a)
    seeds_b = list(seeds_b)
    counts_a: list[float] = []
    counts_b: list[float] = []

    def accumulate(counts: list[float], times: np.ndarray) -> None:
        adopted = times[times >= 0]
        if adopted.size == 0:
            return
        horizon = int(adopted.max()) + 1
        while len(counts) < horizon:
            counts.append(0.0)
        binned = np.bincount(adopted, minlength=horizon)
        for t in range(horizon):
            counts[t] += float(binned[t])

    for _ in range(runs):
        outcome = simulate(graph, gaps, seeds_a, seeds_b, source=CoinSource(gen))
        accumulate(counts_a, outcome.adopted_a_at)
        accumulate(counts_b, outcome.adopted_b_at)

    horizon = max(len(counts_a), len(counts_b), 1)
    new_a = np.zeros(horizon, dtype=np.float64)
    new_b = np.zeros(horizon, dtype=np.float64)
    new_a[: len(counts_a)] = counts_a
    new_b[: len(counts_b)] = counts_b
    return AdoptionTimeline(new_a=new_a / runs, new_b=new_b / runs, runs=runs)
