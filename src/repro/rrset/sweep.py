"""Shared sweep engine: chunk state backends for the batched RR kernels.

Every batched RR-set kernel (RR-IC, RR-LT, RR-SIM, RR-SIM+, RR-CIM,
RR-Block) runs the same level-synchronous machinery: flat ``(chunk
member, node) -> member * n + node`` keys over per-chunk state arrays
(visited bitmaps, B-state bit flags, RR-CIM's uint8 bitfield),
``expand_csr`` frontier fan-outs, bulk coin draws and ``unique_keys``
dedup.  Before this module each kernel owned a private copy of that
machinery with a hardcoded dense state layout: one ``numpy`` array of
``chunk * num_nodes`` entries per state, so the chunk size is
``state_budget // num_nodes`` and collapses to single-digit members on
multi-million-node graphs — exactly where batching matters most.

This module extracts the shared pieces behind two interchangeable state
backends:

* **dense** — the existing flat array.  O(1) gathers/scatters, memory
  ``chunk * num_nodes`` bytes per state; right for small graphs where
  the array fits comfortably and sweeps touch a large fraction of it.
* **sparse** — a sorted ``member * n + node`` key array (plus a parallel
  value column for non-boolean states), the same layout as
  :class:`~repro.rrset.pool.ChunkCoinMemo`.  Gathers are bulk
  ``searchsorted`` lookups and updates are two-way merges, so memory
  scales with the nodes a chunk's sweeps actually *touch* rather than
  with ``chunk * num_nodes`` — on a million-node graph a chunk of
  thousands of members costs megabytes instead of gigabytes.

Backends are *operation-equivalent*: both resolve the same test-and-set
(:meth:`FlagState.mark_new`), gather and scatter semantics, and neither
consumes randomness, so a kernel produces bit-identical output under
either backend (``tests/rrset/test_sweep.py`` pins this across all six
regimes).  :class:`SweepConfig` selects the backend automatically by
node count (``auto``), centralizes the per-chunk state budget that used
to be a per-kernel hardcoded constant, and warns instead of silently
degrading when a dense chunk collapses.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rrset.pool import unique_keys

#: default per-chunk state budget (bytes) shared by every kernel — the
#: one knob that replaces the per-kernel ``16 << 20`` / ``~64MB``
#: constants.  Overridable via ``EngineConfig.chunk_state_bytes``.
DEFAULT_CHUNK_STATE_BYTES = 16 << 20

#: node count at which ``auto`` switches from dense to sparse state.
#: Above it a dense chunk within the default budget would hold only a
#: few members (16 at one byte per (member, node)), while RR sweeps
#: touch a vanishing fraction of the graph — the sparse regime.
DEFAULT_SPARSE_NODES_THRESHOLD = 1 << 19

#: a dense chunk below this many members is considered degenerate: the
#: per-level numpy overhead is no longer amortised and the kernel emits
#: a :class:`RuntimeWarning` recommending the sparse backend.
DEGENERATE_DENSE_CHUNK = 16

_BACKENDS = ("auto", "dense", "sparse")


@dataclass(frozen=True)
class SweepConfig:
    """Chunk-state policy of one generator's batched sweeps.

    ``chunk_state_bytes`` budgets the per-chunk dense state (all of a
    kernel's simultaneous ``chunk * num_nodes`` arrays together);
    ``state_backend`` picks the backend (``"auto"`` selects sparse at or
    above ``sparse_nodes_threshold`` nodes).  Frozen and picklable, so
    it rides along when :class:`~repro.parallel.ParallelEngine` ships
    generator replicas to worker processes.
    """

    chunk_state_bytes: int = DEFAULT_CHUNK_STATE_BYTES
    state_backend: str = "auto"
    sparse_nodes_threshold: int = DEFAULT_SPARSE_NODES_THRESHOLD
    #: optional hard cap on members per chunk, below every kernel's own
    #: ``max_members``.  The chunk schedule determines the order coins
    #: are drawn in, so pinning both backends to one cap makes their
    #: outputs bit-comparable — the equality leg of the scale benchmark
    #: and the fixed-world equivalence tests use exactly this.
    max_chunk_members: Optional[int] = None

    def __post_init__(self) -> None:
        if (
            not isinstance(self.chunk_state_bytes, int)
            or self.chunk_state_bytes < 1
        ):
            raise ValueError(
                f"chunk_state_bytes must be a positive int, got "
                f"{self.chunk_state_bytes!r}"
            )
        if self.state_backend not in _BACKENDS:
            raise ValueError(
                f"state_backend must be one of {_BACKENDS}, got "
                f"{self.state_backend!r}"
            )
        if (
            not isinstance(self.sparse_nodes_threshold, int)
            or self.sparse_nodes_threshold < 1
        ):
            raise ValueError(
                f"sparse_nodes_threshold must be a positive int, got "
                f"{self.sparse_nodes_threshold!r}"
            )
        if self.max_chunk_members is not None and (
            not isinstance(self.max_chunk_members, int)
            or self.max_chunk_members < 1
        ):
            raise ValueError(
                f"max_chunk_members must be a positive int or None, got "
                f"{self.max_chunk_members!r}"
            )

    def resolve_backend(self, num_nodes: int) -> str:
        """The concrete backend (``"dense"`` / ``"sparse"``) for ``n`` nodes."""
        if self.state_backend != "auto":
            return self.state_backend
        return (
            "sparse"
            if num_nodes >= self.sparse_nodes_threshold
            else "dense"
        )

    def chunk_size(
        self,
        num_nodes: int,
        backend: str,
        *,
        state_bytes_per_node: int = 1,
        max_members: int = 4096,
        warn: bool = True,
    ) -> int:
        """Members per chunk under this budget and backend.

        ``state_bytes_per_node`` is the kernel's total dense state bytes
        per (member, node) pair — e.g. 2 for RR-SIM's int8 B-state plus
        bool visited.  Sparse state scales with touched nodes rather
        than ``chunk * num_nodes``, so the sparse answer is simply
        ``max_members``.  A dense chunk that collapses below
        :data:`DEGENERATE_DENSE_CHUNK` warns (once per call) instead of
        silently degrading to near-serial sweeps, naming the sparse
        backend as the fix — the clamp used to drop to 1 with no signal.
        """
        max_members = max(int(max_members), 1)
        if self.max_chunk_members is not None:
            max_members = min(max_members, self.max_chunk_members)
        if backend == "sparse":
            return max_members
        denom = max(int(num_nodes), 1) * max(int(state_bytes_per_node), 1)
        chunk = int(np.clip(self.chunk_state_bytes // denom, 1, max_members))
        if warn and chunk < min(DEGENERATE_DENSE_CHUNK, max_members):
            warnings.warn(
                f"dense sweep state budget ({self.chunk_state_bytes} bytes) "
                f"only affords chunks of {chunk} member(s) on a "
                f"{num_nodes}-node graph; batching degenerates — use the "
                "sparse state backend (state_backend='sparse' or 'auto') "
                "or raise chunk_state_bytes",
                RuntimeWarning,
                stacklevel=3,
            )
        return chunk


#: the config generators start with; sessions overwrite it from
#: ``EngineConfig`` (see ``ComICSession._pool_entry``).
DEFAULT_SWEEP = SweepConfig()


def _merge_unique_sorted(base: np.ndarray, fresh: np.ndarray) -> np.ndarray:
    """Merge sorted-unique ``fresh`` (disjoint from ``base``) into ``base``.

    The manual O(total) two-way merge of
    :meth:`~repro.rrset.pool.ChunkCoinMemo.lookup_or_draw` — ``np.insert``
    pays far too much per-call overhead on sweep-level cadence.
    """
    if base.size == 0:
        return fresh.astype(np.int64, copy=True)
    pos = np.searchsorted(base, fresh) + np.arange(fresh.size, dtype=np.int64)
    out = np.empty(base.size + fresh.size, dtype=np.int64)
    out[pos] = fresh
    old = np.ones(out.size, dtype=bool)
    old[pos] = False
    out[old] = base
    return out


class DenseFlags:
    """Boolean per-(member, node) state over a flat dense array."""

    kind = "dense"

    __slots__ = ("_a",)

    def __init__(self, lanes: int, num_nodes: int) -> None:
        self._a = np.zeros(int(lanes) * int(num_nodes), dtype=bool)

    def get(self, keys: np.ndarray) -> np.ndarray:
        """Flag value of every key (shape-preserving gather)."""
        return self._a[keys]

    def mark(self, keys: np.ndarray) -> None:
        """Set the flag at ``keys`` (duplicates allowed)."""
        self._a[keys] = True

    def mark_new(self, keys: np.ndarray) -> np.ndarray:
        """Test-and-set: mark and return the sorted distinct fresh keys.

        The sweeps' dedup step — ``key[~visited[key]]`` then
        ``unique_keys`` then scatter — as one backend operation.
        """
        keys = keys[~self._a[keys]]
        if keys.size == 0:
            return keys
        keys = unique_keys(keys)
        self._a[keys] = True
        return keys

    @property
    def nbytes(self) -> int:
        """Bytes of state held right now."""
        return self._a.nbytes


class SparseFlags:
    """Boolean per-(member, node) state as a sorted touched-key array.

    Memory is 8 bytes per *touched* key, independent of ``num_nodes``.
    """

    kind = "sparse"

    __slots__ = ("_keys",)

    def __init__(self, lanes: int, num_nodes: int) -> None:
        self._keys = np.empty(0, dtype=np.int64)

    def get(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if self._keys.size == 0:
            return np.zeros(keys.shape, dtype=bool)
        pos = np.minimum(np.searchsorted(self._keys, keys), self._keys.size - 1)
        return self._keys[pos] == keys

    def mark(self, keys: np.ndarray) -> None:
        if np.asarray(keys).size == 0:
            return
        ukeys = unique_keys(np.asarray(keys).ravel())
        fresh = ukeys[~self.get(ukeys)]
        if fresh.size:
            self._keys = _merge_unique_sorted(self._keys, fresh)

    def mark_new(self, keys: np.ndarray) -> np.ndarray:
        if keys.size == 0:
            return np.asarray(keys, dtype=np.int64)
        ukeys = unique_keys(np.asarray(keys))
        fresh = ukeys[~self.get(ukeys)]
        if fresh.size:
            self._keys = _merge_unique_sorted(self._keys, fresh)
        return fresh

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes


class DenseValues:
    """Small-integer per-(member, node) state over a flat dense array."""

    kind = "dense"

    __slots__ = ("_a",)

    def __init__(self, lanes: int, num_nodes: int, dtype) -> None:
        self._a = np.zeros(int(lanes) * int(num_nodes), dtype=dtype)

    def get(self, keys: np.ndarray) -> np.ndarray:
        """State value of every key (0 where never written)."""
        return self._a[keys]

    def put(self, keys: np.ndarray, vals) -> None:
        """Scatter ``vals`` at ``keys``; keys must be distinct."""
        self._a[keys] = vals

    def or_(self, keys: np.ndarray, flags) -> None:
        """Bitwise-OR ``flags`` into the state at distinct ``keys``."""
        self._a[keys] |= flags

    @property
    def nbytes(self) -> int:
        return self._a.nbytes


class SparseValues:
    """Small-integer per-(member, node) state as sorted keys + values.

    Memory is ``8 + itemsize`` bytes per *touched* key.  Keys passed to
    :meth:`put` / :meth:`or_` must be distinct within one call (the
    sweeps' keys come out of ``unique_keys``); repeats within a
    :meth:`get` call are fine.
    """

    kind = "sparse"

    __slots__ = ("_dtype", "_keys", "_vals")

    def __init__(self, lanes: int, num_nodes: int, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=self._dtype)

    def get(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        out = np.zeros(keys.shape, dtype=self._dtype)
        if self._keys.size:
            pos = np.minimum(
                np.searchsorted(self._keys, keys), self._keys.size - 1
            )
            hit = self._keys[pos] == keys
            out[hit] = self._vals[pos[hit]]
        return out

    def put(self, keys: np.ndarray, vals) -> None:
        keys = np.asarray(keys)
        if keys.size == 0:
            return
        vals = np.broadcast_to(np.asarray(vals, dtype=self._dtype), keys.shape)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        svals = vals[order]
        if self._keys.size:
            pos = np.minimum(
                np.searchsorted(self._keys, skeys), self._keys.size - 1
            )
            hit = self._keys[pos] == skeys
            if hit.any():
                self._vals[pos[hit]] = svals[hit]
            miss = ~hit
            skeys = skeys[miss]
            svals = svals[miss]
        if skeys.size:
            pos = np.searchsorted(self._keys, skeys) + np.arange(
                skeys.size, dtype=np.int64
            )
            total = self._keys.size + skeys.size
            merged_keys = np.empty(total, dtype=np.int64)
            merged_vals = np.empty(total, dtype=self._dtype)
            merged_keys[pos] = skeys
            merged_vals[pos] = svals
            old = np.ones(total, dtype=bool)
            old[pos] = False
            merged_keys[old] = self._keys
            merged_vals[old] = self._vals
            self._keys = merged_keys
            self._vals = merged_vals

    def or_(self, keys: np.ndarray, flags) -> None:
        keys = np.asarray(keys)
        if keys.size == 0:
            return
        self.put(keys, self.get(keys) | np.asarray(flags, dtype=self._dtype))

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._vals.nbytes


def make_flags(lanes: int, num_nodes: int, backend: str):
    """A boolean state over ``lanes * num_nodes`` keys on ``backend``."""
    if backend == "sparse":
        return SparseFlags(lanes, num_nodes)
    if backend == "dense":
        return DenseFlags(lanes, num_nodes)
    raise ValueError(f"unknown resolved backend {backend!r}")


def make_values(lanes: int, num_nodes: int, dtype, backend: str):
    """A small-integer state over ``lanes * num_nodes`` keys on ``backend``."""
    if backend == "sparse":
        return SparseValues(lanes, num_nodes, dtype)
    if backend == "dense":
        return DenseValues(lanes, num_nodes, dtype)
    raise ValueError(f"unknown resolved backend {backend!r}")
