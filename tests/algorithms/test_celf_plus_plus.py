"""Tests for CELF++: pick-equivalence with CELF and re-evaluation savings."""

import pytest

from repro.errors import SeedSetError
from repro.algorithms import celf_greedy, celf_plus_plus_greedy


def coverage_objective(sets):
    """A deterministic, submodular max-coverage objective."""

    def objective(seed_list):
        covered = set()
        for s in seed_list:
            covered |= sets[s]
        return float(len(covered))

    return objective


FIXTURE_SETS = {
    0: set(range(10)),
    1: set(range(5, 14)),
    2: {20, 21, 22},
    3: {0, 1, 20},
    4: {30},
    5: set(range(8, 18)),
    6: {40, 41},
    7: {5, 6, 7, 40},
}


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_matches_celf_objective_value(self, k):
        objective = coverage_objective(FIXTURE_SETS)
        base, base_trace = celf_greedy(FIXTURE_SETS, k, objective)
        plus, plus_trace, _ = celf_plus_plus_greedy(FIXTURE_SETS, k, objective)
        # Greedy tie-breaking may differ, but every prefix value must match.
        assert plus_trace == pytest.approx(base_trace)
        assert objective(plus) == objective(base)

    def test_trace_is_non_decreasing(self):
        objective = coverage_objective(FIXTURE_SETS)
        _seeds, trace, _ = celf_plus_plus_greedy(FIXTURE_SETS, 6, objective)
        assert all(trace[i + 1] >= trace[i] for i in range(len(trace) - 1))

    def test_validation(self):
        objective = coverage_objective(FIXTURE_SETS)
        with pytest.raises(SeedSetError):
            celf_plus_plus_greedy(FIXTURE_SETS, -1, objective)
        with pytest.raises(SeedSetError):
            celf_plus_plus_greedy([0, 1], 3, objective)

    def test_k_zero(self):
        objective = coverage_objective(FIXTURE_SETS)
        seeds, trace, evals = celf_plus_plus_greedy(FIXTURE_SETS, 0, objective)
        assert seeds == [] and trace == [] and evals == 0


class TestSavings:
    def test_fewer_or_equal_re_evaluations_than_celf(self):
        objective = coverage_objective(FIXTURE_SETS)
        celf_re_evals = 0

        def counting(seed_list):
            nonlocal celf_re_evals
            if len(seed_list) > 1:  # re-evaluation (not the init scan)
                celf_re_evals += 1
            return objective(seed_list)

        celf_greedy(FIXTURE_SETS, 5, counting)
        _seeds, _trace, plus_re_evals = celf_plus_plus_greedy(
            FIXTURE_SETS, 5, objective
        )
        assert plus_re_evals <= celf_re_evals

    def test_joint_objective_used(self):
        calls = {"joint": 0}
        objective = coverage_objective(FIXTURE_SETS)

        def joint(seed_list, u, w):
            calls["joint"] += 1
            return (
                objective(list(seed_list) + [u]),
                objective(list(seed_list) + [w, u]),
            )

        seeds, _trace, _ = celf_plus_plus_greedy(
            FIXTURE_SETS, 4, objective, joint_objective=joint
        )
        assert calls["joint"] > 0
        assert len(seeds) == 4
