"""The uniform result envelope returned by :meth:`ComICSession.run`.

Whatever the workload — RR-set seed selection, sandwich approximation,
Monte-Carlo CELF — the session answers with one :class:`InfluenceResult`:
the selected seeds, the objective estimate, which method actually ran
(including fallback provenance, e.g. ``"sandwich"`` when submodularity
fails), and a diagnostics dict with pool sizes/bytes, theta, RR-sets
sampled, and wall-clock timings.  The underlying solver-specific result
(:class:`~repro.algorithms.selfinfmax.SelfInfMaxResult`, …) rides along in
``raw`` for callers that need the full detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class InfluenceResult:
    """Solution of one declarative query.

    ``seeds`` is always the *newly selected* seed set (for focal
    multi-item queries, the seeds added to the focal item — the fixed
    base sets are not repeated); round-robin multi-item queries
    additionally fill ``seed_sets`` with the complete per-item
    allocation, fixed starting seeds included.
    """

    #: registry name of the workload ("selfinfmax", "compinfmax", ...).
    objective: str
    #: the selected seed set, in selection order.
    seeds: list[int]
    #: solution strategy that produced the seeds: "submodular", "sandwich",
    #: "celf-greedy", "round-robin", ... — fallbacks are visible here.
    method: str
    #: seed-selection engine used ("tim" / "imm"; "mc" for MC-greedy
    #: workloads that never touch RR-sets).
    engine: str
    #: estimate of the objective at ``seeds`` (RR-set estimate or MC mean);
    #: ``None`` when the workload does not produce one.
    estimate: Optional[float] = None
    #: pool sizes/bytes, theta, rr_sets_sampled, wall_s, fallback notes,
    #: and the graph's content fingerprint (``graph_fingerprint``, the
    #: same hash :mod:`repro.store` manifests validate against — lets a
    #: caller check which network a logged result was computed on).
    diagnostics: dict[str, Any] = field(default_factory=dict)
    #: the query that produced this result.
    query: Any = None
    #: the underlying solver result (SelfInfMaxResult, CompInfMaxResult,
    #: seed lists, ...) for callers needing engine-level detail.
    raw: Any = None
    #: one seed list per item (round-robin multi-item only).
    seed_sets: Optional[list[list[int]]] = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary (drops ``raw``; serializes the query)."""
        return {
            "objective": self.objective,
            "seeds": list(self.seeds),
            "method": self.method,
            "engine": self.engine,
            "estimate": self.estimate,
            "diagnostics": dict(self.diagnostics),
            "query": self.query.to_dict() if self.query is not None else None,
            "seed_sets": (
                [list(s) for s in self.seed_sets]
                if self.seed_sets is not None
                else None
            ),
        }
