"""Randomness sources: one diffusion engine, three views of its randomness.

The Com-IC engine (:mod:`repro.models.comic`) never calls a random number
generator directly; every stochastic decision is delegated to a
:class:`RandomnessSource`.  The three implementations realise, with the same
engine code, the three views of the model used by the paper:

* :class:`CoinSource` — fresh biased coins at decision time: the stochastic
  diffusion process of Fig. 2.
* :class:`WorldSource` — decisions read off pre-drawn possible-world
  variables (edge liveness, thresholds ``alpha_A``/``alpha_B``, tie-break
  priorities ``pi`` and seed coins ``tau``): the deterministic cascade of
  §5.1.  Because adoption tests become threshold comparisons
  ``alpha <= q``, reconsideration success is *exactly* the event
  ``q_{X|∅} < alpha <= q_{X|Y}``, reproducing
  ``rho = max(q_{X|Y} - q_{X|∅}, 0) / (1 - q_{X|∅})`` as a conditional
  probability (Lemma 1's argument).
* :class:`ReplaySource` — decisions read from a prescribed tape; requesting
  a decision beyond the tape raises :class:`DecisionNeeded`.  The exact
  oracle (:mod:`repro.models.exact`) uses this to enumerate the complete
  decision tree of small instances.

Sources based on possible-world variables are *reusable*: running several
cascades (different seed sets) against the same source replays the same
world, which is what the possible-world proofs — and variance-reduced boost
estimation — require.
"""

from __future__ import annotations

import abc
import itertools
import math
import random
from typing import Optional, Sequence

import numpy as np

from repro.rng import SeedLike, make_rng

#: Item indices used throughout the engine.
ITEM_A = 0
ITEM_B = 1


def _derive_python_rng(seed: SeedLike) -> random.Random:
    """Build a fast scalar :class:`random.Random` from any seed-like value."""
    gen = make_rng(seed)
    return random.Random(int(gen.integers(0, 2**63 - 1)))


class RandomnessSource(abc.ABC):
    """Interface through which the Com-IC engine draws random decisions."""

    @abc.abstractmethod
    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        """Whether the edge is live.  Must be memoised: the same edge id must
        always return the same answer within one source ("each edge is tested
        at most once", Fig. 2 rule 1).

        ``item`` identifies which item's inform is crossing the edge.  Base
        Com-IC ignores it (one channel per edge); the product-dependent
        extension (:mod:`repro.models.product_edges`) keys coins on it."""

    @abc.abstractmethod
    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        """NLA adoption test when ``node`` is informed of ``item`` while idle."""

    @abc.abstractmethod
    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        """Reconsideration test for a suspended ``item`` after the other item
        was just adopted (Fig. 2 rule 4)."""

    @abc.abstractmethod
    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        """Tie-breaking: return a permutation (as indices into ``informers``)
        fixing the order in which same-step informers are processed.
        ``informers`` is a sequence of ``(neighbor, edge_id)`` pairs."""

    @abc.abstractmethod
    def seed_a_first(self, node: int) -> bool:
        """Fair-coin order for a node seeded with both items (Fig. 2)."""


class CoinSource(RandomnessSource):
    """Fresh-coin randomness — the stochastic Com-IC process of Fig. 2.

    Edge outcomes are memoised for the lifetime of the source, so a source
    must be used for exactly one diffusion (the engine creates one per run
    when given a seed).  Uses :class:`random.Random` internally because
    scalar draws dominate the cost profile.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _derive_python_rng(seed)
        self._edge_state: dict[int, bool] = {}

    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        state = self._edge_state.get(edge_id)
        if state is None:
            state = self._rng.random() < probability
            self._edge_state[edge_id] = state
        return state

    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        q = q_cond if other_adopted else q_uncond
        return self._rng.random() < q

    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        if q_uncond >= 1.0:
            return False
        rho = max(q_cond - q_uncond, 0.0) / (1.0 - q_uncond)
        if rho <= 0.0:
            return False
        return self._rng.random() < rho

    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        order = list(range(len(informers)))
        self._rng.shuffle(order)
        return order

    def seed_a_first(self, node: int) -> bool:
        return self._rng.random() < 0.5


class WorldSource(RandomnessSource):
    """Possible-world randomness, sampled lazily and memoised.

    The world variables of §5.1 are materialised on first use:

    * ``live(e)``    — Bernoulli(p) edge liveness;
    * ``alpha_A(v)``, ``alpha_B(v)`` — Uniform[0,1] adoption thresholds;
    * ``priority(e)`` — Uniform[0,1] tie-break priority per edge (ordering
      any subset of a node's in-edges by fixed independent priorities is a
      uniform permutation of that subset, realising ``pi_v``);
    * ``tau(v)``     — fair coin for dual seeds.

    The source is reusable across cascades: all decisions are functions of
    the memoised variables, hence deterministic once drawn.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _derive_python_rng(seed)
        self._live: dict[int, bool] = {}
        self._alpha: tuple[dict[int, float], dict[int, float]] = ({}, {})
        self._priority: dict[int, float] = {}
        self._tau: dict[int, bool] = {}

    # -- world-variable accessors (also used by RR-set generators) -------
    def alpha(self, node: int, item: int) -> float:
        """The threshold ``alpha_A(node)`` or ``alpha_B(node)``."""
        table = self._alpha[item]
        value = table.get(node)
        if value is None:
            value = self._rng.random()
            table[node] = value
        return value

    def priority(self, edge_id: int) -> float:
        """The tie-break priority of ``edge_id``."""
        value = self._priority.get(edge_id)
        if value is None:
            value = self._rng.random()
            self._priority[edge_id] = value
        return value

    # -- RandomnessSource interface --------------------------------------
    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        state = self._live.get(edge_id)
        if state is None:
            state = self._rng.random() < probability
            self._live[edge_id] = state
        return state

    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        q = q_cond if other_adopted else q_uncond
        return self.alpha(node, item) < q

    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        # The node is suspended, i.e. alpha >= q_uncond; it adopts on
        # reconsideration exactly when alpha < q_cond.
        return self.alpha(node, item) < q_cond

    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        return sorted(range(len(informers)), key=lambda i: self.priority(informers[i][1]))

    def seed_a_first(self, node: int) -> bool:
        state = self._tau.get(node)
        if state is None:
            state = self._rng.random() < 0.5
            self._tau[node] = state
        return state


class DecisionNeeded(Exception):
    """Raised by :class:`ReplaySource` when the tape is exhausted.

    Carries the branch description so an enumerator can fork: ``options`` is
    the number of alternatives and ``probabilities`` their masses.
    """

    def __init__(self, options: int, probabilities: Sequence[float]) -> None:
        super().__init__(f"decision needed over {options} options")
        self.options = int(options)
        self.probabilities = [float(p) for p in probabilities]


class ReplaySource(RandomnessSource):
    """Deterministic decision tape for exhaustive enumeration.

    Decisions are consumed from ``tape`` in engine order.  Degenerate
    decisions (probability 0 or 1, single-option permutations) are resolved
    without consuming tape entries, which keeps the enumeration tree small.
    Edge decisions are memoised by edge id as in the other sources.
    """

    def __init__(self, tape: Sequence[int]) -> None:
        self._tape = list(tape)
        self._cursor = 0
        self._edge_state: dict[int, bool] = {}
        self._tau: dict[int, bool] = {}
        #: probability of each consumed (non-degenerate) decision, in order;
        #: the product is the probability mass of the whole decision path.
        self.trace: list[float] = []

    @property
    def consumed(self) -> int:
        """Number of tape entries consumed so far."""
        return self._cursor

    def _decide(self, probabilities: Sequence[float]) -> int:
        """Return a branch index, consuming tape or raising DecisionNeeded."""
        live_options = [i for i, p in enumerate(probabilities) if p > 0.0]
        if len(live_options) == 1:
            return live_options[0]
        if self._cursor < len(self._tape):
            choice = self._tape[self._cursor]
            self._cursor += 1
            self.trace.append(float(probabilities[choice]))
            return choice
        raise DecisionNeeded(len(probabilities), probabilities)

    def _binary(self, probability: float) -> bool:
        """A yes/no decision with the given success probability."""
        return self._decide([probability, 1.0 - probability]) == 0

    def edge_live(self, edge_id: int, probability: float, item: int = ITEM_A) -> bool:
        state = self._edge_state.get(edge_id)
        if state is None:
            state = self._binary(probability)
            self._edge_state[edge_id] = state
        return state

    def adopt_on_inform(
        self, node: int, item: int, q_uncond: float, q_cond: float, other_adopted: bool
    ) -> bool:
        return self._binary(q_cond if other_adopted else q_uncond)

    def reconsider(self, node: int, item: int, q_uncond: float, q_cond: float) -> bool:
        if q_uncond >= 1.0:
            return False
        rho = max(q_cond - q_uncond, 0.0) / (1.0 - q_uncond)
        return self._binary(rho)

    def informer_order(self, node: int, informers: Sequence[tuple[int, int]]) -> list[int]:
        k = len(informers)
        if k <= 1:
            return list(range(k))
        count = math.factorial(k)
        choice = self._decide([1.0 / count] * count)
        return list(next(itertools.islice(itertools.permutations(range(k)), choice, None)))

    def seed_a_first(self, node: int) -> bool:
        state = self._tau.get(node)
        if state is None:
            state = self._binary(0.5)
            self._tau[node] = state
        return state


def probability_of_tape(source: ReplaySource, decisions: Sequence[tuple[int, Sequence[float]]]) -> float:
    """Probability mass of a decision path (helper for the exact oracle)."""
    mass = 1.0
    for choice, probabilities in decisions:
        mass *= probabilities[choice]
    return mass
