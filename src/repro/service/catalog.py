"""SQLite pool catalog: ops visibility and GC for the on-disk pool store.

The :class:`~repro.store.PoolStore` is deliberately dumb — a directory of
content-addressed entries — which keeps its crash story simple but leaves
two service-layer needs unmet: *visibility* (what pools exist, how big,
how hot — answerable with ``SELECT``, not a directory crawl that parses
every manifest) and *bounded disk* (the in-memory cache has
``EngineConfig.max_pool_bytes``; the store had no equivalent).  This
module adds both without touching the store's file format:

* :class:`PoolCatalog` — one SQLite row per stored pool (the full
  :class:`~repro.store.PoolKey`, graph fingerprint, byte size, format
  version, certified theta when known, created/last-used ISO-8601 UTC
  timestamps, hit/load/save counts).  Connections apply the WAL +
  ``busy_timeout`` pragma set for multi-process coordination; writes are
  single-statement UPSERTs, so two processes cataloguing one store
  cannot corrupt it, only interleave.
* :class:`CatalogedPoolStore` — a drop-in :class:`~repro.store.PoolStore`
  that mirrors every save/load/quarantine into the catalog and enforces a
  store-wide byte quota by evicting least-recently-used rows *and* their
  on-disk entries (:meth:`CatalogedPoolStore.enforce_quota`).

The catalog is an **index, not an authority**: the manifests on disk
remain the source of truth, and :meth:`PoolCatalog.reconcile` resyncs the
rows against them (adopting entries written by plain ``PoolStore``
processes, dropping rows whose entries vanished).  Losing the catalog
database loses counters, never pools.
"""

from __future__ import annotations

import datetime
import json
import shutil
import sqlite3
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import StoreIntegrityError
from repro.store import PoolKey, PoolManifest, PoolStore
from repro.store.pool_store import PathLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rrset.pool import RRSetPool

#: catalog database file name, inside the store root.
CATALOG_FILE = "catalog.sqlite"

#: bump on schema changes; recorded in ``catalog_meta``.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pools (
    digest            TEXT PRIMARY KEY,
    regime            TEXT NOT NULL,
    gaps              TEXT NOT NULL,              -- JSON [q_a, q_a|b, q_b, q_b|a]
    opposite_seeds    TEXT NOT NULL,              -- JSON [int, ...]
    graph_fingerprint TEXT NOT NULL,
    num_sets          INTEGER NOT NULL,
    total_nodes       INTEGER NOT NULL,
    nbytes            INTEGER NOT NULL,
    format_version    INTEGER NOT NULL,
    theta             INTEGER,                    -- certified IMM theta, if known
    created_utc       TEXT NOT NULL,              -- ISO-8601, UTC
    last_used_utc     TEXT NOT NULL,              -- ISO-8601, UTC
    hits              INTEGER NOT NULL DEFAULT 0,
    loads             INTEGER NOT NULL DEFAULT 0,
    saves             INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_pools_last_used ON pools(last_used_utc);
CREATE TABLE IF NOT EXISTS catalog_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def utc_now_iso() -> str:
    """Current UTC time as an ISO-8601 string (catalog timestamp format)."""
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.isoformat(timespec="microseconds").replace("+00:00", "Z")


def _entry_nbytes(manifest: PoolManifest) -> int:
    """On-disk pool bytes an entry costs (column data; headers ignored)."""
    return manifest.total_nodes * 4 + (manifest.num_sets + 1) * 8


def _manifest_theta(manifest: PoolManifest) -> Optional[int]:
    """The certified theta recorded in a manifest's provenance, if any."""
    record = manifest.provenance.get("selection")
    if isinstance(record, dict):
        try:
            return int(record["theta"])
        except (KeyError, TypeError, ValueError):
            return None
    return None


class PoolCatalog:
    """The SQLite index of one pool-store directory.

    Thread-safe via one connection per thread; process-safe via WAL mode
    and ``busy_timeout`` (writers queue instead of erroring).  All
    mutating methods are single-statement UPSERT/DELETE, atomic under
    SQLite's own locking.
    """

    def __init__(self, path: PathLike, *, busy_timeout_ms: int = 30_000) -> None:
        self._path = str(path)
        self._busy_timeout_ms = int(busy_timeout_ms)
        self._local = threading.local()

    @property
    def path(self) -> str:
        """The database file path."""
        return self._path

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self._path, timeout=self._busy_timeout_ms / 1000.0
            )
            conn.row_factory = sqlite3.Row
            # SNIPPETS §1 pragma set: WAL lets one writer coexist with
            # readers across processes; NORMAL sync is durable enough for
            # an index that reconcile() can rebuild from manifests.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute(f"PRAGMA busy_timeout={self._busy_timeout_ms}")
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO catalog_meta(key, value) VALUES(?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            conn.commit()
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's connection (others close with their threads)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    # Row upkeep
    # ------------------------------------------------------------------
    def record_save(
        self, manifest: PoolManifest, *, theta: Optional[int] = None
    ) -> None:
        """Upsert the row for a just-saved entry (bumps ``saves``)."""
        now = utc_now_iso()
        key = manifest.key
        self._conn().execute(
            """
            INSERT INTO pools (digest, regime, gaps, opposite_seeds,
                               graph_fingerprint, num_sets, total_nodes,
                               nbytes, format_version, theta,
                               created_utc, last_used_utc, hits, loads, saves)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, 0, 1)
            ON CONFLICT(digest) DO UPDATE SET
                num_sets = excluded.num_sets,
                total_nodes = excluded.total_nodes,
                nbytes = excluded.nbytes,
                format_version = excluded.format_version,
                graph_fingerprint = excluded.graph_fingerprint,
                theta = COALESCE(excluded.theta, pools.theta),
                last_used_utc = excluded.last_used_utc,
                saves = pools.saves + 1
            """,
            (
                key.digest(),
                key.regime,
                json.dumps(list(key.gaps)),
                json.dumps(list(key.opposite_seeds)),
                manifest.graph_fingerprint,
                manifest.num_sets,
                manifest.total_nodes,
                _entry_nbytes(manifest),
                manifest.format_version,
                theta if theta is not None else _manifest_theta(manifest),
                now,
                now,
            ),
        )
        self._conn().commit()

    def record_hit(self, manifest: PoolManifest) -> None:
        """Upsert after a served load (bumps ``hits`` and ``loads``).

        Takes the manifest (not just the digest) so a hit on an entry the
        catalog has never seen — written by a plain ``PoolStore``
        process — adopts it instead of dropping the count.
        """
        now = utc_now_iso()
        key = manifest.key
        self._conn().execute(
            """
            INSERT INTO pools (digest, regime, gaps, opposite_seeds,
                               graph_fingerprint, num_sets, total_nodes,
                               nbytes, format_version, theta,
                               created_utc, last_used_utc, hits, loads, saves)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1, 1, 0)
            ON CONFLICT(digest) DO UPDATE SET
                num_sets = excluded.num_sets,
                total_nodes = excluded.total_nodes,
                nbytes = excluded.nbytes,
                theta = COALESCE(excluded.theta, pools.theta),
                last_used_utc = excluded.last_used_utc,
                hits = pools.hits + 1,
                loads = pools.loads + 1
            """,
            (
                key.digest(),
                key.regime,
                json.dumps(list(key.gaps)),
                json.dumps(list(key.opposite_seeds)),
                manifest.graph_fingerprint,
                manifest.num_sets,
                manifest.total_nodes,
                _entry_nbytes(manifest),
                manifest.format_version,
                _manifest_theta(manifest),
                now,
                now,
            ),
        )
        self._conn().commit()

    def forget(self, digest: str) -> None:
        """Drop a row (entry deleted, quarantined, or GC'd)."""
        self._conn().execute("DELETE FROM pools WHERE digest = ?", (digest,))
        self._conn().commit()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rows(self) -> list[dict[str, Any]]:
        """Every row as a plain dict, most recently used first."""
        cur = self._conn().execute(
            "SELECT * FROM pools ORDER BY last_used_utc DESC, digest"
        )
        return [dict(row) for row in cur.fetchall()]

    def row(self, digest: str) -> Optional[dict[str, Any]]:
        """One row by digest, or ``None``."""
        cur = self._conn().execute(
            "SELECT * FROM pools WHERE digest = ?", (digest,)
        )
        row = cur.fetchone()
        return dict(row) if row is not None else None

    def total_bytes(self) -> int:
        """Sum of catalogued pool bytes."""
        cur = self._conn().execute("SELECT COALESCE(SUM(nbytes), 0) FROM pools")
        return int(cur.fetchone()[0])

    def lru_rows(self) -> list[dict[str, Any]]:
        """Rows in eviction order: least recently used first (digest
        tiebreak, so two same-microsecond rows evict deterministically)."""
        cur = self._conn().execute(
            "SELECT * FROM pools ORDER BY last_used_utc ASC, digest"
        )
        return [dict(row) for row in cur.fetchall()]

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def reconcile(self, store: PoolStore) -> dict[str, int]:
        """Resync rows against the store's on-disk manifests.

        Adopts installed entries with no row (created by plain
        ``PoolStore`` writers or a lost catalog db) and drops rows whose
        entries no longer exist (deleted/quarantined behind our back).
        Returns ``{"adopted": ..., "dropped": ...}``.
        """
        on_disk: dict[str, PoolManifest] = {
            manifest.key.digest(): manifest for manifest in store.entries()
        }
        known = {row["digest"] for row in self.rows()}
        adopted = dropped = 0
        for digest, manifest in on_disk.items():
            if digest not in known:
                now = utc_now_iso()
                key = manifest.key
                self._conn().execute(
                    """
                    INSERT OR IGNORE INTO pools
                        (digest, regime, gaps, opposite_seeds,
                         graph_fingerprint, num_sets, total_nodes, nbytes,
                         format_version, theta, created_utc, last_used_utc,
                         hits, loads, saves)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, 0, 0)
                    """,
                    (
                        digest,
                        key.regime,
                        json.dumps(list(key.gaps)),
                        json.dumps(list(key.opposite_seeds)),
                        manifest.graph_fingerprint,
                        manifest.num_sets,
                        manifest.total_nodes,
                        _entry_nbytes(manifest),
                        manifest.format_version,
                        _manifest_theta(manifest),
                        now,
                        now,
                    ),
                )
                adopted += 1
        for digest in known - set(on_disk):
            self._conn().execute(
                "DELETE FROM pools WHERE digest = ?", (digest,)
            )
            dropped += 1
        self._conn().commit()
        return {"adopted": adopted, "dropped": dropped}


class CatalogedPoolStore(PoolStore):
    """A :class:`~repro.store.PoolStore` mirrored into a :class:`PoolCatalog`.

    Every save upserts the entry's row (and then enforces the byte
    quota), every served load bumps its hit/load counters and LRU
    timestamp, and every quarantine/delete forgets the row.  The quota
    (``max_store_bytes``) mirrors ``EngineConfig.max_pool_bytes`` one
    level down: where the config bounds a session's *memory*, the quota
    bounds the shared store's *disk*, with the same LRU policy.

    ``gc_evictions`` / ``gc_bytes_evicted`` count quota enforcement on
    this instance (catalog rows persist across instances; these counters
    do not).
    """

    def __init__(
        self,
        root: PathLike,
        *,
        max_store_bytes: Optional[int] = None,
        catalog: Optional[PoolCatalog] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(root, **kwargs)
        if max_store_bytes is not None and max_store_bytes < 0:
            raise ValueError(
                f"max_store_bytes must be >= 0 (or None), got {max_store_bytes}"
            )
        self._max_store_bytes = max_store_bytes
        self.catalog = (
            catalog if catalog is not None else PoolCatalog(self.root / CATALOG_FILE)
        )
        self.gc_evictions = 0
        self.gc_bytes_evicted = 0
        self.catalog.reconcile(self)
        self.enforce_quota()

    @property
    def max_store_bytes(self) -> Optional[int]:
        """The store-wide byte quota (``None`` = unbounded)."""
        return self._max_store_bytes

    # ------------------------------------------------------------------
    # Mirrored operations
    # ------------------------------------------------------------------
    def save(self, key: PoolKey, pool: "RRSetPool", **kwargs: Any) -> Path:
        entry = super().save(key, pool, **kwargs)
        manifest = self._manifest_quiet(key)
        if manifest is not None:
            self.catalog.record_save(manifest)
        self.enforce_quota()
        return entry

    def load(self, key: PoolKey, **kwargs: Any):
        hits_before = self.stats.hits
        invalidations_before = self.stats.invalidations
        result = super().load(key, **kwargs)
        if self.stats.hits > hits_before:
            manifest = self._manifest_quiet(key)
            if manifest is not None:
                self.catalog.record_hit(manifest)
        elif self.stats.invalidations > invalidations_before:
            # The rejected entry was quarantined out of its slot — drop the
            # row, unless a concurrent writer already reinstalled the key.
            # A plain miss leaves the catalog alone: forgetting on miss
            # races with a concurrent save's record_save (dir installed,
            # row deleted), and rows for entries that vanished out-of-band
            # are reconcile()'s job at open time.
            if not self.entry_dir(key).exists():
                self.catalog.forget(key.digest())
        return result

    def _manifest_quiet(self, key: PoolKey) -> Optional[PoolManifest]:
        """``manifest()`` that degrades to ``None`` under a racing writer
        (half-replaced entry): the counters just skip one bump."""
        try:
            return self.manifest(key)
        except StoreIntegrityError:
            return None

    def delete(self, key: PoolKey) -> bool:
        existed = super().delete(key)
        self.catalog.forget(key.digest())
        return existed

    def clear(self) -> None:
        super().clear()
        for row in self.catalog.rows():
            self.catalog.forget(row["digest"])

    # ------------------------------------------------------------------
    # Quota GC
    # ------------------------------------------------------------------
    def enforce_quota(self) -> list[str]:
        """Evict LRU entries (rows + directories) until under the quota.

        Mirrors the session cache's eviction semantics: the most recently
        used entry goes last, i.e. only when it alone exceeds the quota.
        Returns the evicted digests.  Directory removal is best-effort
        (a concurrent writer reinstalling the entry just wins and will be
        re-adopted by the next reconcile); the row is dropped regardless
        so the accounting converges.
        """
        if self._max_store_bytes is None:
            return []
        evicted: list[str] = []
        while True:
            rows = self.catalog.lru_rows()
            total = sum(row["nbytes"] for row in rows)
            if not rows or total <= self._max_store_bytes:
                break
            victim = rows[0]
            self.catalog.forget(victim["digest"])
            shutil.rmtree(self.root / victim["digest"], ignore_errors=True)
            self.gc_evictions += 1
            self.gc_bytes_evicted += int(victim["nbytes"])
            evicted.append(victim["digest"])
        return evicted
