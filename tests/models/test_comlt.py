"""Tests for the Com-LT comparative Linear Threshold extension model."""

import numpy as np
import pytest

from repro.errors import GraphError, SeedSetError
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import (
    GAP,
    estimate_boost_comlt,
    estimate_spread_comlt,
    greedy_comlt_compinfmax,
    greedy_comlt_selfinfmax,
    normalize_lt_weights,
    simulate_comlt,
    simulate_lt,
)
from repro.rng import make_rng


@pytest.fixture(scope="module")
def diamond() -> DiGraph:
    """0 -> {1, 2} -> 3 with LT-normalised weights."""
    return normalize_lt_weights(
        DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    )


class TestDegenerationToClassicLT:
    def test_matches_lt_mean_spread(self, diamond):
        """With q_{A|∅} = 1 and B absent, Com-LT *is* classic LT."""
        gaps = GAP.classic_ic()
        runs = 3000
        gen = make_rng(3)
        comlt = np.mean([
            simulate_comlt(diamond, gaps, [0], [], rng=gen).num_a_adopted
            for _ in range(runs)
        ])
        gen = make_rng(4)
        lt = np.mean([
            int(simulate_lt(diamond, [0], rng=gen).sum()) for _ in range(runs)
        ])
        assert comlt == pytest.approx(lt, rel=0.05)

    def test_b_never_propagates_under_classic_gaps(self, diamond):
        outcome = simulate_comlt(diamond, GAP.classic_ic(), [0], [], rng=1)
        assert outcome.num_b_adopted == 0


class TestPerfectCrossSell:
    def test_no_b_means_no_a_beyond_seeds(self, diamond):
        gaps = GAP.perfect_cross_sell()
        for seed in range(20):
            outcome = simulate_comlt(diamond, gaps, [0], [], rng=seed)
            assert outcome.num_a_adopted == 1  # only the seed itself

    def test_b_unlocks_a_adoption(self):
        # Deterministic line: 0 -> 1 -> 2 with full weights; B seeded at 0
        # spreads everywhere (q_b = 1), unlocking A all along the path.
        graph = path_digraph(3, probability=1.0)
        gaps = GAP.perfect_cross_sell(q_b=1.0)
        outcome = simulate_comlt(graph, gaps, [0], [0], rng=7)
        assert outcome.num_b_adopted == 3
        assert outcome.num_a_adopted == 3

    def test_gap_values(self):
        gaps = GAP.perfect_cross_sell(q_b=0.6)
        assert gaps.q_a == 0.0
        assert gaps.q_a_given_b == 1.0
        assert gaps.q_b == gaps.q_b_given_a == 0.6
        assert gaps.is_mutually_complementary
        assert gaps.rho_a == 1.0


class TestValidation:
    def test_unnormalised_weights_rejected(self):
        graph = DiGraph.from_edges(3, [(0, 2), (1, 2)], default_probability=0.8)
        with pytest.raises(GraphError, match="incoming weights"):
            simulate_comlt(graph, GAP.classic_ic(), [0], [])

    def test_out_of_range_seed_rejected(self, diamond):
        with pytest.raises(SeedSetError):
            simulate_comlt(diamond, GAP.classic_ic(), [9], [])

    def test_item_argument_validated(self, diamond):
        with pytest.raises(ValueError):
            estimate_spread_comlt(diamond, GAP.classic_ic(), [0], [], item="c")


class TestDynamics:
    def test_deterministic_for_fixed_seed(self, diamond):
        gaps = GAP(q_a=0.5, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.8)
        o1 = simulate_comlt(diamond, gaps, [0], [1], rng=11)
        o2 = simulate_comlt(diamond, gaps, [0], [1], rng=11)
        assert np.array_equal(o1.state_a, o2.state_a)
        assert np.array_equal(o1.state_b, o2.state_b)

    def test_dual_seed_adopts_both_at_step_zero(self, diamond):
        gaps = GAP(q_a=0.5, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.8)
        outcome = simulate_comlt(diamond, gaps, [0], [0], rng=2)
        assert outcome.adopted_a_at[0] == 0
        assert outcome.adopted_b_at[0] == 0

    def test_max_steps_truncates(self):
        graph = path_digraph(30, probability=1.0)
        outcome = simulate_comlt(graph, GAP.classic_ic(), [0], [], rng=3, max_steps=5)
        assert outcome.steps == 5
        assert outcome.num_a_adopted == 6  # seed + 5 hops

    def test_adoption_times_follow_path_distance(self):
        graph = path_digraph(5, probability=1.0)
        outcome = simulate_comlt(graph, GAP.classic_ic(), [0], [], rng=5)
        assert list(outcome.adopted_a_at) == [0, 1, 2, 3, 4]

    def test_complementarity_boosts_a_spread(self):
        """Statistical: B-seeds raise sigma_A under Q+ with low q_{A|∅}."""
        graph = normalize_lt_weights(star_digraph(40))
        gaps = GAP(q_a=0.2, q_a_given_b=0.95, q_b=0.9, q_b_given_a=0.95)
        without = estimate_spread_comlt(graph, gaps, [0], [], runs=600, rng=8).mean
        with_b = estimate_spread_comlt(graph, gaps, [0], [0], runs=600, rng=8).mean
        assert with_b > without * 1.5


class TestGreedyComLT:
    def test_hub_selected_on_star(self):
        graph = normalize_lt_weights(star_digraph(15))
        gaps = GAP(q_a=0.8, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.6)
        seeds = greedy_comlt_selfinfmax(graph, gaps, [], 1, runs=60, rng=9)
        assert seeds == [0]

    def test_k_validation(self, diamond):
        with pytest.raises(SeedSetError):
            greedy_comlt_selfinfmax(diamond, GAP.classic_ic(), [], -1)

    def test_candidate_restriction(self, diamond):
        seeds = greedy_comlt_selfinfmax(
            diamond, GAP.classic_ic(), [], 2, runs=30, rng=10, candidates=[1, 2, 3]
        )
        assert set(seeds) <= {1, 2, 3}


class TestBoostAndCompInfMax:
    def test_boost_positive_under_complementarity(self):
        graph = normalize_lt_weights(star_digraph(30))
        gaps = GAP(q_a=0.2, q_a_given_b=0.95, q_b=0.9, q_b_given_a=0.95)
        boost = estimate_boost_comlt(graph, gaps, [0], [0], runs=500, rng=11)
        assert boost.mean > 2.0

    def test_boost_zero_without_b_seeds(self, diamond):
        gaps = GAP(q_a=0.4, q_a_given_b=0.9, q_b=0.5, q_b_given_a=0.9)
        boost = estimate_boost_comlt(diamond, gaps, [0], [], runs=200, rng=12)
        # Paired estimator: identical seedings give near-zero mean.
        assert abs(boost.mean) < 0.6

    def test_compinfmax_greedy_colocates_b_seed(self):
        """B's best seed should sit where it can unlock A — at the hub A
        already seeds."""
        graph = normalize_lt_weights(star_digraph(20))
        gaps = GAP(q_a=0.1, q_a_given_b=0.95, q_b=0.95, q_b_given_a=0.95)
        seeds = greedy_comlt_compinfmax(
            graph, gaps, [0], 1, runs=80, rng=13, candidates=[0, 3, 4]
        )
        assert seeds == [0]

    def test_compinfmax_k_validated(self, diamond):
        with pytest.raises(SeedSetError):
            greedy_comlt_compinfmax(diamond, GAP.classic_ic(), [0], -2)
