"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or figures
(DESIGN.md §4 maps them).  Heavy experiment runners execute once inside
``benchmark.pedantic`` and their rendered tables are written to
``benchmarks/results/*.md`` so a benchmark run leaves the regenerated
artifacts behind.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentScale, TableResult, render_table
from repro.rrset import TIMOptions

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The benchmark-suite experiment scale.

    Environment overrides (for fuller runs):
    ``REPRO_BENCH_SCALE`` (float), ``REPRO_BENCH_K``, ``REPRO_BENCH_THETA``,
    ``REPRO_BENCH_DATASETS`` (comma-separated).
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
    k = int(os.environ.get("REPRO_BENCH_K", "4"))
    theta = int(os.environ.get("REPRO_BENCH_THETA", "1500"))
    datasets = tuple(
        os.environ.get("REPRO_BENCH_DATASETS", "flixster,douban-book").split(",")
    )
    return ExperimentScale(
        scale=scale,
        k=k,
        opposite_size=10,
        mid_rank_start=8,
        mc_runs=100,
        tim_options=TIMOptions(theta_override=theta),
        datasets=datasets,
        seed=2016,
    )


@pytest.fixture(scope="session")
def save_table():
    """Persist a regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: TableResult, name: str) -> TableResult:
        path = RESULTS_DIR / f"{name}.md"
        path.write_text(render_table(result), encoding="utf-8")
        return result

    return _save
