"""Shared infrastructure of the experiment runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import ExperimentError
from repro.rrset.tim import TIMOptions

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down counterparts of the paper's experiment parameters.

    Paper values in comments; the defaults keep a full table within
    minutes of pure Python.  Every runner takes an ``ExperimentScale`` so
    users with patience can push the knobs toward the paper's sizes.
    """

    #: dataset scale factor (1.0 = the paper's node counts).
    scale: float = 0.04
    #: seeds to select (paper: 50).
    k: int = 5
    #: size of the fixed opposite seed set (paper: 100).
    opposite_size: int = 15
    #: starting rank of the "mid-tier" opposite seeds (paper: rank 101).
    mid_rank_start: int = 10
    #: Monte-Carlo runs per spread evaluation (paper: 10K).
    mc_runs: int = 150
    #: RR-set budget per GeneralTIM run.
    tim_options: TIMOptions = field(
        default_factory=lambda: TIMOptions(theta_override=2500)
    )
    #: datasets to run on.
    datasets: Sequence[str] = ("flixster", "douban-book")
    #: master seed; every runner derives substreams from it.
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ExperimentError(f"k must be positive, got {self.k}")
        if self.opposite_size < 1:
            raise ExperimentError(
                f"opposite_size must be positive, got {self.opposite_size}"
            )
        if self.mc_runs < 2:
            raise ExperimentError(f"mc_runs must be >= 2, got {self.mc_runs}")


#: A full-size preset covering all four datasets (slow; for overnight runs).
FULL_SCALE = ExperimentScale(
    scale=0.1,
    k=10,
    opposite_size=30,
    mid_rank_start=15,
    mc_runs=400,
    tim_options=TIMOptions(theta_override=8000),
    datasets=("douban-book", "douban-movie", "flixster", "lastfm"),
)


@dataclass
class TableResult:
    """One regenerated table/figure: column names plus row dicts."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: str = ""

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def percent_improvement(ours: float, baseline: float) -> float:
    """``(ours - baseline) / baseline`` in percent, guarded near zero."""
    if abs(baseline) < 1e-9:
        return 0.0 if abs(ours) < 1e-9 else float("inf")
    return 100.0 * (ours - baseline) / baseline
