"""`ComICSession`: one network, many queries, shared RR-set pools.

The session is the serving-layer front end of the reproduction: it owns a
graph, default GAPs and an :class:`~repro.api.config.EngineConfig`,
validates them once, and answers declarative queries
(:mod:`repro.api.queries`) through the workload registry.  Its core
economy is the **pool cache**: every RR-set-backed seed selection runs
against a cached :class:`~repro.rrset.pool.RRSetPool` keyed by

    (RR regime, GAP quadruple, opposite-seed set)

so repeated queries over the same network — k-sweeps, epsilon-sweeps,
dashboard refreshes — *top up* the pool IMM-style to whatever ``theta``
they need instead of resampling from scratch.  A query that needs fewer
sets than are pooled samples nothing at all; one that needs more appends
only the difference.  The selection phase then covers every pooled set,
which only sharpens the RR-set estimate.

The cache is optionally *bounded*: when the resolved config sets
``max_pool_bytes``, least-recently-used pools are evicted after each
selection until the cached bytes fit (the access order doubles as the
LRU order; ``SessionStats`` counts evictions and bytes released).

Two further levers extend the economy beyond one process:

* ``store=`` attaches a persistent :class:`~repro.store.PoolStore`.
  Cache misses first try the store (validated against the
  :class:`~repro.store.PoolKey` *and* the graph's
  :meth:`~repro.graph.digraph.DiGraph.fingerprint`, so a pool sampled
  from a different network can never be served), and every selection
  that grew a pool writes it back — so a second process warm-starts the
  same query with **zero** RR-set sampling, and pools evicted by the
  byte cap remain one mmap load away.  ``SessionStats`` counts store
  hits / misses / invalidations / saves.
* ``EngineConfig.workers > 1`` wraps each pool's generator in a
  :class:`~repro.parallel.ParallelEngine`, sharding every sampling batch
  across that many worker processes.  All cached pools' engines
  time-share **one** session-owned
  :class:`~repro.parallel.WorkerPool` (generators ride on the task and
  are cached worker-side), so ``workers=K`` costs K resident processes
  per session, not K per cached pool.

Warm starts are additionally **theta-pinned**: every IMM selection
records its certified final theta (in memory, and into the store
manifest's provenance on write-through), and a repeat of the same
``(k, epsilon, ell)`` request whose pool already holds that many sets
skips the adaptive sampling phase outright — zero RR-sets sampled and
bit-identical seeds, where the adaptive re-run used to top up ~1% and
could drift.  ``SessionStats.theta_pins`` counts these.

Example::

    session = ComICSession(graph, gaps, config=EngineConfig(engine="imm"))
    for k in (10, 20, 30, 40, 50):
        result = session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=k))
    session.stats.rr_sets_sampled   # far below five independent runs

``session.stats`` and each result's ``diagnostics`` expose the accounting
(`benchmarks/bench_session_reuse.py` turns it into a report).
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.api import registry
from repro.api.config import EngineConfig
from repro.api.results import InfluenceResult
from repro.deadline import Deadline, deadline_scope
from repro.errors import DeltaError, QueryError, StoreError
from repro.graph.delta import GraphDelta
from repro.graph.digraph import DiGraph
from repro.invalidation import InvalidationReason
from repro.models.gaps import GAP
from repro.models.multi_item import MultiItemGaps
from repro.parallel import ParallelEngine, WorkerPool
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.engines import SelectionResult, run_seed_selection
from repro.rrset.pool import RRSetPool
# The session's cache and the on-disk store share one key type so the two
# can never disagree about what identifies a pool (it used to be an
# ad-hoc tuple private to this module).
from repro.store import PoolKey, PoolStore

StoreLike = Union[PoolStore, str, os.PathLike, None]


@dataclass
class SessionStats:
    """Cumulative accounting across every query a session has served."""

    #: queries answered (successful ``run`` calls).
    queries: int = 0
    #: RR-sets actually sampled (pool growth); reuse keeps this below the
    #: sum of per-query theta values.
    rr_sets_sampled: int = 0
    #: seed selections answered from an existing pool entry.
    pool_hits: int = 0
    #: seed selections that had to create a new pool entry.
    pool_misses: int = 0
    #: cached pools dropped by the ``max_pool_bytes`` LRU policy.
    pool_evictions: int = 0
    #: RR-set bytes released by those evictions (resampling cost ceiling).
    pool_bytes_evicted: int = 0
    #: cache misses answered by the attached store (zero resampling).
    store_hits: int = 0
    #: cache misses the store could not answer (no entry for the key).
    store_misses: int = 0
    #: store entries found but rejected (foreign graph fingerprint,
    #: mismatched manifest, corrupted columns) — resampled from scratch.
    store_invalidations: int = 0
    #: pool snapshots written back to the store after growth.
    store_saves: int = 0
    #: IMM selections answered by pinning a previously-certified theta —
    #: the adaptive sampling phase was skipped and zero RR-sets drawn.
    theta_pins: int = 0
    #: queries whose sampling was clipped by ``EngineConfig.deadline_s``
    #: (each returned a best-effort result stamped ``degraded=True``).
    deadline_expiries: int = 0
    #: rejected store entries moved into quarantine by attached-store loads.
    store_quarantines: int = 0
    #: write-throughs that failed and degraded to a warning.
    store_save_failures: int = 0
    #: parallel shards re-dispatched after a worker crash or hang.
    parallel_retries: int = 0
    #: worker-pool teardown/rebuild cycles forced by crashes or hangs.
    parallel_restarts: int = 0
    #: hung worker processes killed by the per-shard deadline.
    parallel_hung_kills: int = 0
    #: batches that fell back to in-process serial generation after
    #: parallel retries were exhausted.
    serial_fallbacks: int = 0
    #: graph deltas applied via :meth:`ComICSession.apply_delta`.
    deltas_applied: int = 0
    #: cached pools surgically repaired in place by a delta (only the
    #: touched members were resampled).
    pools_repaired: int = 0
    #: cached pools a delta dropped for lazy full regeneration (excess
    #: churn, or no touch record) — see ``delta_fallbacks_by_reason``.
    pools_regenerated: int = 0
    #: RR-set members resampled by delta repairs (subset of
    #: ``rr_sets_sampled``).
    members_resampled: int = 0
    #: per-reason breakdown of ``pools_regenerated``, keyed by
    #: :class:`~repro.invalidation.InvalidationReason` value strings.
    delta_fallbacks_by_reason: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return asdict(self)


#: the counters a query's ``diagnostics["resilience"]`` always carries
#: (zero-valued when nothing went wrong — consumers can key on them
#: unconditionally).
RESILIENCE_COUNTERS = (
    "deadline_expiries",
    "store_quarantines",
    "store_save_failures",
    "parallel_retries",
    "parallel_restarts",
    "parallel_hung_kills",
    "serial_fallbacks",
)


@dataclass
class _PoolEntry:
    """One cached (generator, pool) pair."""

    key: PoolKey
    generator: RRSetGenerator
    pool: RRSetPool
    selections: int = 0
    #: logical access clock value of the most recent use (LRU order).
    last_used: int = 0
    #: lazily-built multiprocess wrapper (``EngineConfig.workers > 1``).
    parallel: Optional[ParallelEngine] = field(default=None, repr=False)
    #: where the pool's initial sets came from: "sampled" or "store".
    origin: str = "sampled"
    #: the last completed (non-degraded, unrestricted) IMM selection on
    #: this pool: ``{"engine", "k", "epsilon", "ell", "theta"}`` — the
    #: record the stored-theta warm-start fast path pins against.  Warm
    #: starts adopt it from the store manifest's provenance.
    stored_selection: Optional[dict] = field(default=None, repr=False)
    #: delta-repair provenance: one record per :meth:`ComICSession.
    #: apply_delta` repair this pool survived, persisted into the store
    #: manifest's provenance on write-through.
    lineage: list = field(default_factory=list, repr=False)

    def close(self) -> None:
        """Release the entry's parallel engine, if any.

        Over a session-shared :class:`~repro.parallel.WorkerPool` this
        only detaches the engine — the worker processes belong to the
        session and keep serving other entries.
        """
        if self.parallel is not None:
            self.parallel.close()
            self.parallel = None


@dataclass
class PoolInfo:
    """Read-only snapshot of one cached pool (diagnostics)."""

    regime: str
    gaps: tuple[float, float, float, float]
    opposite_seeds: tuple[int, ...]
    sets: int
    nbytes: int
    selections: int
    batch_kernel: str = "vectorized"
    #: logical access clock of the last selection served from this pool;
    #: lower values are evicted first under ``max_pool_bytes``.
    last_used: int = 0
    #: "store" when the pool warm-started from the attached PoolStore,
    #: else "sampled".
    origin: str = "sampled"


@dataclass(frozen=True)
class DeltaReport:
    """Outcome of one :meth:`ComICSession.apply_delta` call.

    ``pools`` carries one row per cached pool the delta touched:
    ``{"regime", "opposite_seeds", "action", "affected", "resampled",
    "reason"}`` where ``action`` is ``"repaired"`` (surgical in-place
    repair) or ``"regenerated"`` (entry dropped; the next query over its
    key resamples from scratch) and ``reason`` is the
    :class:`~repro.invalidation.InvalidationReason` value explaining a
    regeneration (``None`` for repairs).
    """

    num_edits: int
    churn: float
    old_fingerprint: str
    fingerprint: str
    pools_repaired: int
    pools_regenerated: int
    members_resampled: int
    pools: tuple = ()

    def as_dict(self) -> dict[str, Any]:
        """Plain-JSON-types view (service transport)."""
        out = asdict(self)
        out["pools"] = [dict(row) for row in self.pools]
        return out


class ComICSession:
    """A long-lived query session over one influence network.

    ``gaps`` is the default GAP quadruple (queries may override it per
    call); ``multi_item_gaps`` configures the k-item extension (defaults
    to lifting the pairwise GAPs when only those are given).  ``rng``
    seeds the session-wide random stream; per-query ``rng`` overrides give
    reproducible individual queries.  ``store`` attaches a persistent
    :class:`~repro.store.PoolStore` (a path builds one) for cross-process
    pool reuse: cache misses try the store first, and grown pools are
    written back after each selection.
    """

    def __init__(
        self,
        graph: DiGraph,
        gaps: Optional[GAP] = None,
        *,
        multi_item_gaps: Optional[MultiItemGaps] = None,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
        store: StoreLike = None,
    ) -> None:
        if not isinstance(graph, DiGraph):
            raise QueryError(
                f"graph must be a DiGraph, got {type(graph).__name__}"
            )
        if gaps is not None and not isinstance(gaps, GAP):
            raise QueryError(f"gaps must be a GAP, got {type(gaps).__name__}")
        if multi_item_gaps is not None and not isinstance(
            multi_item_gaps, MultiItemGaps
        ):
            raise QueryError(
                "multi_item_gaps must be a MultiItemGaps, got "
                f"{type(multi_item_gaps).__name__}"
            )
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                "config must be an EngineConfig (legacy TIMOptions/IMMOptions "
                f"lift via EngineConfig.from_tim_options), got "
                f"{type(config).__name__}"
            )
        if store is None or isinstance(store, PoolStore):
            self._store = store
        elif isinstance(store, (str, os.PathLike)):
            self._store = PoolStore(store)
        else:
            raise QueryError(
                "store must be a PoolStore, a path, or None, got "
                f"{type(store).__name__}"
            )
        self._graph = graph
        self._gaps = gaps
        self._multi_item_gaps = multi_item_gaps
        self._config = config if config is not None else EngineConfig()
        self._rng = make_rng(rng)
        # Insertion order is maintained as LRU order: every access
        # re-inserts the entry at the end, eviction pops from the front.
        self._pools: dict[PoolKey, _PoolEntry] = {}
        self._access_clock = 0
        #: session-wide worker pool every parallel entry's engine shares
        #: (built on the first ``workers > 1`` selection).
        self._worker_pool: Optional[WorkerPool] = None
        self.stats = SessionStats()
        #: degradation events of the query currently being served
        #: (``run`` resets it, helpers append, diagnostics publish it).
        self._events: list[dict[str, str]] = []

    # ------------------------------------------------------------------
    # Configuration accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The session's influence network."""
        return self._graph

    @property
    def gaps(self) -> Optional[GAP]:
        """The session's default GAPs (queries may override)."""
        return self._gaps

    @property
    def config(self) -> EngineConfig:
        """The session's default engine configuration."""
        return self._config

    @property
    def store(self) -> Optional[PoolStore]:
        """The attached persistent pool store, if any."""
        return self._store

    def resolve_gaps(self, override: Optional[GAP] = None) -> GAP:
        """The GAPs a query should run under; errors if none are known."""
        gaps = override if override is not None else self._gaps
        if gaps is None:
            raise QueryError(
                "query needs GAPs: set them on the session or on the query"
            )
        return gaps

    def resolve_multi_item_gaps(self) -> MultiItemGaps:
        """The k-item model (explicit, or lifted from the pairwise GAPs)."""
        if self._multi_item_gaps is not None:
            return self._multi_item_gaps
        if self._gaps is not None:
            return MultiItemGaps.from_pairwise_gap(self._gaps)
        raise QueryError(
            "multi-item queries need multi_item_gaps (or pairwise gaps) on "
            "the session"
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def run(
        self,
        query: Any,
        *,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
    ) -> InfluenceResult:
        """Answer one declarative query.

        ``config`` overrides the session's engine configuration for this
        query only (epsilon sweeps); ``rng`` pins this query's randomness
        instead of advancing the session stream.  Note that a pinned
        ``rng`` fixes only the *new* samples and MC draws — RR-set-backed
        results also depend on whatever the session's pools already hold,
        so reproducibility requires an identical session history (or a
        fresh session).
        """
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        cfg = config if config is not None else self._config
        spec = registry.resolve(query, cfg.engine)
        gen = self._rng if rng is None else make_rng(rng)
        sampled_before = self.stats.rr_sets_sampled
        stats_before = self.stats.as_dict()
        self._events = []
        started = time.perf_counter()
        if cfg.deadline_s is not None:
            with deadline_scope(Deadline(cfg.deadline_s)):
                result: InfluenceResult = spec.handler(self, query, cfg, gen)
        else:
            result = spec.handler(self, query, cfg, gen)
        self.stats.queries += 1
        result.diagnostics.setdefault("wall_s", time.perf_counter() - started)
        result.diagnostics.setdefault(
            "rr_sets_sampled", self.stats.rr_sets_sampled - sampled_before
        )
        result.diagnostics.setdefault("pool_sets_total", self.pool_sets_total)
        result.diagnostics.setdefault("pool_bytes_total", self.pool_bytes_total)
        result.diagnostics.setdefault(
            "graph_fingerprint", self._graph.fingerprint()
        )
        self._stamp_resilience(result, stats_before)
        return result

    def _stamp_resilience(
        self, result: InfluenceResult, stats_before: dict[str, int]
    ) -> None:
        """Publish this query's degradation provenance into diagnostics.

        Every result carries the full ``resilience`` counter dict (this
        query's deltas, zero when nothing degraded) plus the chronological
        ``events`` the helpers recorded; ``degraded`` is ``True`` exactly
        when the wall-clock deadline clipped sampling — recoveries
        (retries, quarantines, fallbacks) keep results exact, so they are
        counted but not stamped degraded.
        """
        after = self.stats.as_dict()
        resilience: dict[str, Any] = {
            name: after[name] - stats_before[name]
            for name in RESILIENCE_COUNTERS
        }
        resilience["events"] = list(self._events)
        result.diagnostics.setdefault("resilience", resilience)
        degraded = resilience["deadline_expiries"] > 0
        result.diagnostics.setdefault("degraded", degraded)
        reason = next(
            (
                event["detail"]
                for event in self._events
                if event["kind"] == "deadline"
            ),
            None,
        )
        result.diagnostics.setdefault("degraded_reason", reason)

    def run_many(
        self,
        queries: Iterable[Any],
        *,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
    ) -> list[InfluenceResult]:
        """Answer a batch of queries in order (sweep helper).

        ``config`` and ``rng`` are threaded through to every
        :meth:`run` call exactly as if passed per query — earlier
        versions silently dropped them, so sweeps got the session
        defaults with no error.  A non-``None`` ``rng`` seeds *one*
        stream that the whole batch consumes in order (so the sweep is
        reproducible as a unit); pass ``rng`` to individual :meth:`run`
        calls instead if each query must be independently pinned.
        """
        gen = None if rng is None else make_rng(rng)
        return [self.run(query, config=config, rng=gen) for query in queries]

    # ------------------------------------------------------------------
    # Dynamic graphs
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: GraphDelta, *, rng: SeedLike = None
    ) -> DeltaReport:
        """Mutate the session's graph and repair its cached pools in place.

        Applies ``delta`` (:class:`~repro.graph.GraphDelta`), swaps the
        session onto the resulting graph, and then walks every cached
        pool: when the delta's churn is within
        ``EngineConfig.delta_churn_threshold`` *and* the pool carries the
        touch columns repair needs (``EngineConfig.track_touches``; see
        :mod:`repro.rrset.repair`), exactly the members whose sampling
        touched a changed edge are dropped and resampled against the new
        graph — everything else (cache entry, pool identity, theta-warm
        sets) survives.  Pools that cannot be repaired are dropped and
        lazily regenerated by their next query, the same cost as the old
        fingerprint-invalidation path.

        Certified-theta records are always cleared: a theta certified
        against the old graph does not transfer, so the next IMM query
        re-derives it adaptively over the (warm) repaired pool.

        ``rng`` pins the resampling randomness (defaults to the session
        stream).  Returns a :class:`DeltaReport`; raises
        :class:`~repro.errors.DeltaError` when the delta does not apply.
        """
        if not isinstance(delta, GraphDelta):
            raise DeltaError(
                f"delta must be a GraphDelta, got {type(delta).__name__}"
            )
        effect = delta.apply(self._graph)
        churn = delta.churn(self._graph)
        gen = self._rng if rng is None else make_rng(rng)
        cfg = self._config
        old_fingerprint = self._graph.fingerprint()
        rows: list[dict[str, Any]] = []
        repaired = regenerated = resampled = 0
        for key, entry in list(self._pools.items()):
            factory = registry.generator_factory(key.regime)
            generator = factory(
                effect.graph, GAP(*key.gaps), key.opposite_seeds
            )
            generator.sweep = cfg.sweep_config()
            report = None
            if churn <= cfg.delta_churn_threshold:
                report = entry.pool.repair(effect, generator, rng=gen)
            row: dict[str, Any] = {
                "regime": key.regime,
                "opposite_seeds": key.opposite_seeds,
            }
            if report is not None and report.eligible:
                # The entry survives on the new graph: swap in the new
                # generator (dropping any parallel wrapper of the old one)
                # and void the certified theta, which no longer transfers.
                entry.close()
                entry.generator = generator
                entry.stored_selection = None
                entry.lineage.append(
                    {
                        "old_fingerprint": old_fingerprint,
                        "fingerprint": effect.graph.fingerprint(),
                        "num_edits": delta.num_edits,
                        "churn": churn,
                        "affected": report.affected,
                        "resampled": report.resampled,
                    }
                )
                repaired += 1
                resampled += report.resampled
                self.stats.rr_sets_sampled += report.resampled
                row.update(
                    action="repaired",
                    affected=report.affected,
                    resampled=report.resampled,
                    reason=None,
                )
            else:
                # report is None exactly when churn barred the attempt;
                # every ineligible report is a missing/unsupported touch
                # record (see repair_pool's fallback reasons).
                reason = (
                    InvalidationReason.DELTA_CHURN
                    if report is None
                    else InvalidationReason.TOUCH_ABSENT
                )
                del self._pools[key]
                entry.close()
                regenerated += 1
                self.stats.delta_fallbacks_by_reason[reason.value] = (
                    self.stats.delta_fallbacks_by_reason.get(reason.value, 0)
                    + 1
                )
                row.update(
                    action="regenerated",
                    affected=len(entry.pool),
                    resampled=0,
                    reason=reason.value,
                )
            rows.append(row)
        self._graph = effect.graph
        self.stats.deltas_applied += 1
        self.stats.pools_repaired += repaired
        self.stats.pools_regenerated += regenerated
        self.stats.members_resampled += resampled
        # Write repaired pools through under the *new* fingerprint so the
        # store never serves (or quarantines) a stale-graph entry, and the
        # lineage rides into the manifest's provenance.
        if self._store is not None:
            for entry in self._pools.values():
                if entry.lineage and len(entry.pool):
                    self._persist_entry(entry, cfg, gen)
        return DeltaReport(
            num_edits=delta.num_edits,
            churn=churn,
            old_fingerprint=old_fingerprint,
            fingerprint=effect.graph.fingerprint(),
            pools_repaired=repaired,
            pools_regenerated=regenerated,
            members_resampled=resampled,
            pools=tuple(rows),
        )

    # ------------------------------------------------------------------
    # Pooled seed selection (handlers call this)
    # ------------------------------------------------------------------
    def select_seeds(
        self,
        regime: str,
        gaps: GAP,
        opposite_seeds: Sequence[int],
        k: int,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> SelectionResult:
        """Run TIM/IMM seed selection against the cached pool for
        ``(regime, gaps, opposite_seeds)``, topping the pool up as needed.

        This is the reuse point: handlers (and power users driving the
        RR-set machinery directly) come through here so that every
        selection over the same regime/GAP/opposite-context shares one
        growing pool.  ``candidates`` restricts the pickable seed nodes
        (selection only — sampling stays unrestricted, so the cached pool
        is shared across candidate sets).  When the resolved config caps
        ``max_pool_bytes``, least-recently-used pools are evicted after
        the selection until the cache fits.
        """
        if not isinstance(gaps, GAP):
            raise QueryError(
                f"gaps must be a GAP, got {type(gaps).__name__}"
            )
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        cfg = config if config is not None else self._config
        gen = self._rng if rng is None else make_rng(rng)
        entry = self._pool_entry(regime, gaps, opposite_seeds, cfg)
        before = len(entry.pool)
        generator = self._generator_for(entry, cfg)
        pstats_before = (
            generator.stats.as_dict()
            if isinstance(generator, ParallelEngine)
            else None
        )
        result = run_seed_selection(
            generator,
            k,
            engine=cfg.engine,
            options=cfg.tim_options(),
            imm_options=cfg.imm_options() if cfg.engine == "imm" else None,
            rng=gen,
            pool=entry.pool,
            candidates=candidates,
            pinned_theta=self._pinned_theta(entry, cfg, k, candidates),
        )
        if pstats_before is not None:
            self._absorb_parallel_stats(generator, pstats_before)
        if getattr(result, "degraded", False):
            self.stats.deadline_expiries += 1
            self._events.append(
                {"kind": "deadline", "detail": result.degraded_reason or ""}
            )
        if getattr(result, "pinned", False):
            self.stats.theta_pins += 1
        self._record_selection(entry, cfg, k, candidates, result)
        entry.selections += 1
        grown = len(entry.pool) - before
        self.stats.rr_sets_sampled += grown
        # Write-through before eviction: a pool the byte cap drops stays
        # one (mmap) load away instead of one resampling away.
        if self._store is not None and grown > 0:
            self._persist_entry(entry, cfg, gen)
        self._evict_pools(cfg.max_pool_bytes)
        return result

    def _absorb_parallel_stats(
        self, engine: ParallelEngine, before: dict[str, int]
    ) -> None:
        """Fold one selection's recovery-counter deltas into the session.

        The engine's own :class:`~repro.parallel.ParallelStats` are
        cumulative per engine (and engines die with their cache entry),
        so the session keeps the durable totals — and records a
        provenance event when a batch had to fall back to serial.
        """
        after = engine.stats.as_dict()
        delta = {name: after[name] - before[name] for name in after}
        self.stats.parallel_retries += delta["retries"]
        self.stats.parallel_restarts += delta["restarts"]
        self.stats.parallel_hung_kills += delta["hung_kills"]
        self.stats.serial_fallbacks += delta["serial_fallbacks"]
        if delta["serial_fallbacks"]:
            self._events.append(
                {
                    "kind": "serial_fallback",
                    "detail": (
                        "parallel shard retries exhausted; batch regenerated "
                        "serially in-process (result exact)"
                    ),
                }
            )

    def _pinned_theta(
        self,
        entry: _PoolEntry,
        cfg: EngineConfig,
        k: int,
        candidates: Optional[Sequence[int]],
    ) -> Optional[int]:
        """The certified theta a warm IMM selection may pin, or ``None``.

        Pinning is sound only when the recorded selection answers
        *exactly* this request: same engine (``imm``), same ``k``,
        ``epsilon`` and ``ell``, unrestricted candidates on both sides,
        a theta inside this config's ``[min_rr_sets, max_rr_sets]``
        window, and a pool that already holds that many sets.  Anything
        else falls through to the normal adaptive run.
        """
        record = entry.stored_selection
        if record is None or cfg.engine != "imm" or candidates is not None:
            return None
        try:
            matches = (
                record.get("engine") == "imm"
                and int(record["k"]) == int(k)
                and float(record["epsilon"]) == cfg.epsilon
                and float(record["ell"]) == cfg.ell
            )
            theta = int(record["theta"])
        except (KeyError, TypeError, ValueError):
            return None
        if not matches or not cfg.min_rr_sets <= theta <= cfg.max_rr_sets:
            return None
        if len(entry.pool) < theta:
            return None
        return theta

    @staticmethod
    def _record_selection(
        entry: _PoolEntry,
        cfg: EngineConfig,
        k: int,
        candidates: Optional[Sequence[int]],
        result: SelectionResult,
    ) -> None:
        """Remember a completed IMM selection for later theta pinning.

        Only exact, unrestricted runs qualify: a degraded (deadline-
        clipped) theta was never certified, and a candidate-restricted
        run certifies a different (restricted) optimum whose sample size
        does not transfer.  The record rides into the store manifest's
        provenance on the next write-through.
        """
        if (
            cfg.engine != "imm"
            or candidates is not None
            or getattr(result, "degraded", False)
            or result.theta < 1
        ):
            return
        entry.stored_selection = {
            "engine": "imm",
            "k": int(k),
            "epsilon": cfg.epsilon,
            "ell": cfg.ell,
            "theta": int(result.theta),
        }

    def _shared_worker_pool(self, workers: int) -> WorkerPool:
        """The session-wide worker pool at this count (rebuilt on change)."""
        pool = self._worker_pool
        if pool is None or pool.closed or pool.workers != workers:
            if pool is not None:
                pool.close()
            pool = self._worker_pool = WorkerPool(workers)
        return pool

    def _generator_for(
        self, entry: _PoolEntry, cfg: EngineConfig
    ) -> RRSetGenerator:
        """The generator a selection should sample through.

        ``cfg.workers > 1`` lazily wraps the entry's generator in a
        persistent :class:`~repro.parallel.ParallelEngine` (rebuilt when
        the worker count changes); otherwise the serial generator.

        Every entry's engine rides the one session-shared
        :class:`~repro.parallel.WorkerPool` — K worker processes serve
        *all* cached pools (each worker caches the distinct generators it
        has seen), instead of the former K-per-entry layout whose
        resident process count multiplied with live pools.
        """
        if cfg.workers <= 1:
            return entry.generator
        pool = self._shared_worker_pool(cfg.workers)
        if (
            entry.parallel is None
            or entry.parallel.closed
            or entry.parallel.workers != cfg.workers
            or entry.parallel.shared_pool is not pool
        ):
            entry.close()
            entry.parallel = ParallelEngine(
                entry.generator, cfg.workers, shared_pool=pool
            )
        return entry.parallel

    def _persist_entry(
        self, entry: _PoolEntry, cfg: EngineConfig, gen
    ) -> bool:
        """Write one pool through to the store; never fails the query.

        The store is an accelerator: a full disk or revoked permissions
        must not discard a selection that already succeeded, so save
        failures degrade to a warning (the pool stays cached in memory).
        """
        provenance: dict[str, Any] = {
            "creator": "ComICSession",
            "engine": cfg.engine,
            "workers": cfg.workers,
            "rng": type(gen.bit_generator).__name__,
        }
        if entry.stored_selection is not None:
            # Certified-theta record: lets a later process pin its warm
            # start to zero top-up (see _pinned_theta).
            provenance["selection"] = dict(entry.stored_selection)
        if entry.lineage:
            # Delta-repair provenance: which graph mutations this pool
            # survived (and how surgically) — see apply_delta.
            provenance["lineage"] = [dict(rec) for rec in entry.lineage]
        try:
            self._store.save(
                entry.key,
                entry.pool,
                graph_fingerprint=self._graph.fingerprint(),
                provenance=provenance,
            )
        except (OSError, StoreError) as exc:
            self.stats.store_save_failures += 1
            self._events.append(
                {
                    "kind": "store_save_failure",
                    "detail": (
                        f"pool write-through failed ({exc}); in-memory pool "
                        "retained (result exact)"
                    ),
                }
            )
            warnings.warn(
                f"pool store write-through failed ({exc}); "
                "continuing with the in-memory pool only",
                RuntimeWarning,
                stacklevel=3,
            )
            return False
        self.stats.store_saves += 1
        return True

    def _pool_entry(
        self,
        regime: str,
        gaps: GAP,
        opposite_seeds: Sequence[int],
        cfg: Optional[EngineConfig] = None,
    ) -> _PoolEntry:
        key = self._pool_key(regime, gaps, opposite_seeds)
        cfg = cfg if cfg is not None else self._config
        entry = self._pools.pop(key, None)
        if entry is None:
            factory = registry.generator_factory(regime)
            generator = factory(self._graph, gaps, key.opposite_seeds)
            generator.sweep = cfg.sweep_config()
            pool = self._load_from_store(key)
            entry = _PoolEntry(
                key,
                generator,
                pool
                if pool is not None
                # A store-loaded pool keeps whatever tracking it was saved
                # with; fresh pools track iff the config asks.
                else RRSetPool(
                    self._graph.num_nodes,
                    track_touches=cfg.track_touches,
                ),
                origin="store" if pool is not None else "sampled",
            )
            if pool is not None:
                entry.stored_selection = self._stored_selection_for(key)
            self.stats.pool_misses += 1
        else:
            self.stats.pool_hits += 1
        # Re-insert at the back: dict order is the LRU order.
        self._access_clock += 1
        entry.last_used = self._access_clock
        self._pools[key] = entry
        return entry

    def _stored_selection_for(self, key: PoolKey) -> Optional[dict]:
        """The certified-theta record persisted with a store entry, if any.

        Provenance is free-form and unvalidated, so everything here is
        best-effort: a malformed record just means no pin.
        """
        try:
            manifest = self._store.manifest(key)
        except Exception:
            return None
        if manifest is None:
            return None
        record = manifest.provenance.get("selection")
        return dict(record) if isinstance(record, dict) else None

    def _load_from_store(self, key: PoolKey) -> Optional[RRSetPool]:
        """Warm-start attempt for a cache miss (``None`` when no store)."""
        if self._store is None:
            return None
        invalid_before = self._store.stats.invalidations
        quarantined_before = self._store.stats.quarantined
        reasons_before = dict(self._store.stats.invalidations_by_reason)
        pool = self._store.load(
            key, graph_fingerprint=self._graph.fingerprint()
        )
        invalidated = self._store.stats.invalidations - invalid_before
        quarantined = self._store.stats.quarantined - quarantined_before
        if quarantined:
            self.stats.store_quarantines += quarantined
            reason = next(
                (
                    value
                    for value, count in (
                        self._store.stats.invalidations_by_reason.items()
                    )
                    if count > reasons_before.get(value, 0)
                ),
                None,
            )
            self._events.append(
                {
                    "kind": "store_quarantine",
                    "reason": reason,
                    "detail": (
                        f"rejected store entry for {key} moved to quarantine; "
                        "pool resampled (result exact)"
                    ),
                }
            )
        if pool is not None:
            self.stats.store_hits += 1
        elif invalidated:
            self.stats.store_invalidations += invalidated
        else:
            self.stats.store_misses += 1
        return pool

    def _evict_pools(self, max_pool_bytes: Optional[int]) -> None:
        """Drop least-recently-used pools until the cache fits the cap.

        The most recent entry is evicted last — only when it alone
        exceeds the cap (it is no longer in use by then; the next query
        on its key resamples).
        """
        if max_pool_bytes is None:
            return
        while self._pools and self.pool_bytes_total > max_pool_bytes:
            key = next(iter(self._pools))
            entry = self._pools.pop(key)
            entry.close()
            self.stats.pool_evictions += 1
            self.stats.pool_bytes_evicted += entry.pool.nbytes

    @staticmethod
    def _pool_key(
        regime: str, gaps: GAP, opposite_seeds: Sequence[int]
    ) -> PoolKey:
        return PoolKey.make(regime, gaps, opposite_seeds)

    # ------------------------------------------------------------------
    # Pool accounting
    # ------------------------------------------------------------------
    @property
    def pool_sets_total(self) -> int:
        """Total RR-sets held across all cached pools."""
        return sum(len(entry.pool) for entry in self._pools.values())

    @property
    def pool_bytes_total(self) -> int:
        """Total bytes of RR-set data held across all cached pools."""
        return sum(entry.pool.nbytes for entry in self._pools.values())

    def pool_info(self) -> list[PoolInfo]:
        """Diagnostics snapshot of every cached pool."""
        infos = []
        for key, entry in self._pools.items():
            batched = (
                type(entry.generator).generate_batch
                is not RRSetGenerator.generate_batch
            )
            infos.append(
                PoolInfo(
                    regime=key.regime,
                    gaps=key.gaps,
                    opposite_seeds=key.opposite_seeds,
                    sets=len(entry.pool),
                    nbytes=entry.pool.nbytes,
                    selections=entry.selections,
                    batch_kernel="vectorized" if batched else "oracle-fallback",
                    last_used=entry.last_used,
                    origin=entry.origin,
                )
            )
        return infos

    def save_pools(self) -> int:
        """Persist every cached pool to the attached store now.

        Normally unnecessary — selections write grown pools through — but
        useful before handing a store directory to another process when
        you want untouched warm-started pools re-stamped too.  Returns
        the number of entries written; raises
        :class:`~repro.errors.QueryError` without a store.
        """
        if self._store is None:
            raise QueryError("session has no store attached (pass store=)")
        written = 0
        for entry in self._pools.values():
            if len(entry.pool):
                written += self._persist_entry(entry, self._config, self._rng)
        return written

    def clear_pools(self) -> None:
        """Drop every cached pool (frees memory; next queries resample —
        or warm-start from the attached store, which write-through has
        kept current)."""
        for entry in self._pools.values():
            entry.close()
        self._pools.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the session's worker processes (idempotent).

        Each entry's :class:`~repro.parallel.ParallelEngine` is closed
        exactly once (closing detaches it from the entry, so a double
        ``close`` — or ``close`` after eviction already released it — is
        a no-op), then the session-shared
        :class:`~repro.parallel.WorkerPool` itself is shut down.  The
        session stays usable: cached pools and the store attachment
        survive, and the next parallel selection builds a fresh worker
        pool.  Also usable as a context manager::

            with ComICSession(graph, gaps, config=cfg) as session:
                session.run(query)
        """
        for entry in self._pools.values():
            entry.close()
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None

    def __enter__(self) -> "ComICSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComICSession(nodes={self._graph.num_nodes}, "
            f"pools={len(self._pools)}, sets={self.pool_sets_total}, "
            f"queries={self.stats.queries})"
        )

