"""Smoke tests: every example script parses and exposes a main()."""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in SCRIPTS}
    assert {
        "quickstart.py",
        "phone_watch_campaign.py",
        "complementary_boost.py",
        "learn_gaps_from_logs.py",
        "scalability_sweep.py",
        "imm_vs_tim.py",
        "competitive_blocking.py",
        "campaign_analytics.py",
        "multi_item_bundle.py",
    } <= names


@pytest.mark.parametrize("path", SCRIPTS, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} should define main()"
    # A module docstring documenting how to run it.
    assert ast.get_docstring(tree), f"{path.name} should carry a docstring"


@pytest.mark.parametrize("path", SCRIPTS, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples should demonstrate the public API, not private internals."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            assert not node.module.startswith("_"), node.module
            for alias in node.names:
                assert not alias.name.startswith("_"), (
                    f"{path.name} imports private name {alias.name}"
                )
