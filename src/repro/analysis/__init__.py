"""Post-hoc diffusion analytics on Com-IC cascades.

Tools a campaign analyst would run *after* (or between) seed selections:

* :func:`~repro.analysis.adoption.adoption_probabilities` — per-node
  Monte-Carlo adoption probabilities for both items, with standard errors;
* :func:`~repro.analysis.adoption.adoption_timeline` — expected number of
  new A/B adoptions per time step (the campaign's temporal profile);
* :func:`~repro.analysis.census.joint_state_census` — the final
  (A-state, B-state) population census of one cascade, including the
  Appendix-A.1 check that unreachable joint states stay empty;
* :func:`~repro.analysis.census.cascade_depth` — how many steps the
  cascade ran for each item;
* :mod:`~repro.analysis.seeds` — seed-set comparison metrics (Jaccard
  overlap, rank-weighted overlap) and incremental spread curves.
"""

from repro.analysis.adoption import (
    AdoptionProbabilities,
    AdoptionTimeline,
    adoption_probabilities,
    adoption_timeline,
)
from repro.analysis.census import (
    cascade_depth,
    joint_state_census,
    unreachable_state_violations,
)
from repro.analysis.seeds import (
    SpreadCurve,
    rank_weighted_overlap,
    seed_jaccard,
    spread_curve,
)
from repro.analysis.sensitivity import (
    GAP_PARAMETERS,
    SensitivityResult,
    gap_sensitivity,
    perturb_gap,
)

__all__ = [
    "AdoptionProbabilities",
    "AdoptionTimeline",
    "adoption_probabilities",
    "adoption_timeline",
    "joint_state_census",
    "cascade_depth",
    "unreachable_state_violations",
    "SpreadCurve",
    "seed_jaccard",
    "rank_weighted_overlap",
    "spread_curve",
    "GAP_PARAMETERS",
    "SensitivityResult",
    "gap_sensitivity",
    "perturb_gap",
]
