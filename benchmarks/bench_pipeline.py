"""Log-to-query pipeline benchmark -> BENCH_pipeline.json.

Runs :func:`~repro.experiments.pipeline_fitted_vs_true` — synthetic
logs/episodes generated from a known ground-truth network, pipeline run
cold then warm, fitted model graded against the true one — and gates the
three ISSUE-10 quality floors:

* **gap_contained** — every fitted GAP parameter lies inside its 95%
  Wilson CI around truth (× ``--slack`` halfwidths);
* **spread_ratio** — the fitted model's selected seeds achieve at least
  ``SPREAD_RATIO_FLOOR`` of the true model's seeds' σ_A when both seed
  sets are MC-evaluated on the *true* network;
* **warm_stages_skipped** — a warm re-run with unchanged inputs serves
  stages 1–2 from the content-addressed stage cache (``>= 2``).

The JSON schema mirrors ``BENCH_service.json``: a ``gate`` block with
``passed``/``failures``; the script exits non-zero when a gate fails so
CI turns red on a pipeline regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick] \
        [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.experiments import pipeline_fitted_vs_true

SCHEMA_VERSION = 1

#: gated floor on fitted-seeds vs true-seeds spread under MC evaluation.
SPREAD_RATIO_FLOOR = 0.9

#: gated floor on warm-re-run cache hits (stages 1-2 must be served).
STAGES_SKIPPED_FLOOR = 2


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI budget: smaller graph, log and MC sample")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--slack", type=float, default=1.0,
                        help="CI halfwidth multiplier for the containment gate")
    parser.add_argument("--output", default="BENCH_pipeline.json")
    args = parser.parse_args()

    knobs = dict(
        nodes=200 if args.quick else 300,
        episodes=150 if args.quick else 250,
        num_users=3000 if args.quick else 6000,
        k=4 if args.quick else 5,
        mc_runs=200 if args.quick else 500,
        seed=args.seed,
        slack=args.slack,
    )
    with tempfile.TemporaryDirectory() as workdir:
        metrics = pipeline_fitted_vs_true(workdir=workdir, **knobs)

    table = metrics.pop("table")
    metrics.pop("db_path", None)  # temp dir — gone by now
    report: dict = {
        "schema_version": SCHEMA_VERSION,
        "config": {"quick": bool(args.quick), **knobs},
        **metrics,
        "table_notes": table.notes,
    }

    failures: list[str] = []
    if not metrics["gap_contained"]:
        outside = [
            r["parameter"] for r in metrics["gap_rows"] if not r["inside_ci"]
        ]
        failures.append(
            f"fitted GAP outside 95% CI (slack {args.slack}): {outside}"
        )
    if metrics["spread_ratio"] < SPREAD_RATIO_FLOOR:
        failures.append(
            f"spread_ratio {metrics['spread_ratio']:.3f} < floor "
            f"{SPREAD_RATIO_FLOOR}"
        )
    if metrics["warm_stages_skipped"] < STAGES_SKIPPED_FLOOR:
        failures.append(
            f"warm_stages_skipped {metrics['warm_stages_skipped']} < "
            f"{STAGES_SKIPPED_FLOOR}"
        )
    report["gate"] = {
        "passed": not failures,
        "failures": failures,
        "spread_ratio_floor": SPREAD_RATIO_FLOOR,
        "stages_skipped_floor": STAGES_SKIPPED_FLOOR,
    }

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    for row in metrics["gap_rows"]:
        print(
            f"  {row['parameter']}: true {row['true']:.3f} "
            f"fitted {row['fitted']:.3f} "
            f"CI [{row['ci_lo']:.3f}, {row['ci_hi']:.3f}] "
            f"inside={row['inside_ci']}"
        )
    print(
        f"  spread_ratio {metrics['spread_ratio']:.3f} "
        f"(fitted {metrics['fitted_spread']:.2f} / "
        f"true {metrics['true_spread']:.2f}), "
        f"warm skipped {metrics['warm_stages_skipped']} stages, "
        f"cold {metrics['cold_wall_s']:.2f}s warm {metrics['warm_wall_s']:.2f}s"
    )
    if failures:
        print("GATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
