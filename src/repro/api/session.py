"""`ComICSession`: one network, many queries, shared RR-set pools.

The session is the serving-layer front end of the reproduction: it owns a
graph, default GAPs and an :class:`~repro.api.config.EngineConfig`,
validates them once, and answers declarative queries
(:mod:`repro.api.queries`) through the workload registry.  Its core
economy is the **pool cache**: every RR-set-backed seed selection runs
against a cached :class:`~repro.rrset.pool.RRSetPool` keyed by

    (RR regime, GAP quadruple, opposite-seed set)

so repeated queries over the same network — k-sweeps, epsilon-sweeps,
dashboard refreshes — *top up* the pool IMM-style to whatever ``theta``
they need instead of resampling from scratch.  A query that needs fewer
sets than are pooled samples nothing at all; one that needs more appends
only the difference.  The selection phase then covers every pooled set,
which only sharpens the RR-set estimate.

The cache is optionally *bounded*: when the resolved config sets
``max_pool_bytes``, least-recently-used pools are evicted after each
selection until the cached bytes fit (the access order doubles as the
LRU order; ``SessionStats`` counts evictions and bytes released).

Example::

    session = ComICSession(graph, gaps, config=EngineConfig(engine="imm"))
    for k in (10, 20, 30, 40, 50):
        result = session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=k))
    session.stats.rr_sets_sampled   # far below five independent runs

``session.stats`` and each result's ``diagnostics`` expose the accounting
(`benchmarks/bench_session_reuse.py` turns it into a report).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.api import registry
from repro.api.config import EngineConfig
from repro.api.results import InfluenceResult
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.multi_item import MultiItemGaps
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.engines import SelectionResult, run_seed_selection
from repro.rrset.pool import RRSetPool

#: cache key of one pooled RR-set collection.
PoolKey = tuple[str, tuple[float, float, float, float], tuple[int, ...]]


@dataclass
class SessionStats:
    """Cumulative accounting across every query a session has served."""

    #: queries answered (successful ``run`` calls).
    queries: int = 0
    #: RR-sets actually sampled (pool growth); reuse keeps this below the
    #: sum of per-query theta values.
    rr_sets_sampled: int = 0
    #: seed selections answered from an existing pool entry.
    pool_hits: int = 0
    #: seed selections that had to create a new pool entry.
    pool_misses: int = 0
    #: cached pools dropped by the ``max_pool_bytes`` LRU policy.
    pool_evictions: int = 0
    #: RR-set bytes released by those evictions (resampling cost ceiling).
    pool_bytes_evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return asdict(self)


@dataclass
class _PoolEntry:
    """One cached (generator, pool) pair."""

    generator: RRSetGenerator
    pool: RRSetPool
    selections: int = 0
    #: logical access clock value of the most recent use (LRU order).
    last_used: int = 0


@dataclass
class PoolInfo:
    """Read-only snapshot of one cached pool (diagnostics)."""

    regime: str
    gaps: tuple[float, float, float, float]
    opposite_seeds: tuple[int, ...]
    sets: int
    nbytes: int
    selections: int
    batch_kernel: str = "vectorized"
    #: logical access clock of the last selection served from this pool;
    #: lower values are evicted first under ``max_pool_bytes``.
    last_used: int = 0


class ComICSession:
    """A long-lived query session over one influence network.

    ``gaps`` is the default GAP quadruple (queries may override it per
    call); ``multi_item_gaps`` configures the k-item extension (defaults
    to lifting the pairwise GAPs when only those are given).  ``rng``
    seeds the session-wide random stream; per-query ``rng`` overrides give
    reproducible individual queries.
    """

    def __init__(
        self,
        graph: DiGraph,
        gaps: Optional[GAP] = None,
        *,
        multi_item_gaps: Optional[MultiItemGaps] = None,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        if not isinstance(graph, DiGraph):
            raise QueryError(
                f"graph must be a DiGraph, got {type(graph).__name__}"
            )
        if gaps is not None and not isinstance(gaps, GAP):
            raise QueryError(f"gaps must be a GAP, got {type(gaps).__name__}")
        if multi_item_gaps is not None and not isinstance(
            multi_item_gaps, MultiItemGaps
        ):
            raise QueryError(
                "multi_item_gaps must be a MultiItemGaps, got "
                f"{type(multi_item_gaps).__name__}"
            )
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                "config must be an EngineConfig (legacy TIMOptions/IMMOptions "
                f"lift via EngineConfig.from_tim_options), got "
                f"{type(config).__name__}"
            )
        self._graph = graph
        self._gaps = gaps
        self._multi_item_gaps = multi_item_gaps
        self._config = config if config is not None else EngineConfig()
        self._rng = make_rng(rng)
        # Insertion order is maintained as LRU order: every access
        # re-inserts the entry at the end, eviction pops from the front.
        self._pools: dict[PoolKey, _PoolEntry] = {}
        self._access_clock = 0
        self.stats = SessionStats()

    # ------------------------------------------------------------------
    # Configuration accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The session's influence network."""
        return self._graph

    @property
    def gaps(self) -> Optional[GAP]:
        """The session's default GAPs (queries may override)."""
        return self._gaps

    @property
    def config(self) -> EngineConfig:
        """The session's default engine configuration."""
        return self._config

    def resolve_gaps(self, override: Optional[GAP] = None) -> GAP:
        """The GAPs a query should run under; errors if none are known."""
        gaps = override if override is not None else self._gaps
        if gaps is None:
            raise QueryError(
                "query needs GAPs: set them on the session or on the query"
            )
        return gaps

    def resolve_multi_item_gaps(self) -> MultiItemGaps:
        """The k-item model (explicit, or lifted from the pairwise GAPs)."""
        if self._multi_item_gaps is not None:
            return self._multi_item_gaps
        if self._gaps is not None:
            return MultiItemGaps.from_pairwise_gap(self._gaps)
        raise QueryError(
            "multi-item queries need multi_item_gaps (or pairwise gaps) on "
            "the session"
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def run(
        self,
        query: Any,
        *,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
    ) -> InfluenceResult:
        """Answer one declarative query.

        ``config`` overrides the session's engine configuration for this
        query only (epsilon sweeps); ``rng`` pins this query's randomness
        instead of advancing the session stream.  Note that a pinned
        ``rng`` fixes only the *new* samples and MC draws — RR-set-backed
        results also depend on whatever the session's pools already hold,
        so reproducibility requires an identical session history (or a
        fresh session).
        """
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        cfg = config if config is not None else self._config
        spec = registry.resolve(query, cfg.engine)
        gen = self._rng if rng is None else make_rng(rng)
        sampled_before = self.stats.rr_sets_sampled
        started = time.perf_counter()
        result: InfluenceResult = spec.handler(self, query, cfg, gen)
        self.stats.queries += 1
        result.diagnostics.setdefault("wall_s", time.perf_counter() - started)
        result.diagnostics.setdefault(
            "rr_sets_sampled", self.stats.rr_sets_sampled - sampled_before
        )
        result.diagnostics.setdefault("pool_sets_total", self.pool_sets_total)
        result.diagnostics.setdefault("pool_bytes_total", self.pool_bytes_total)
        return result

    def run_many(
        self,
        queries: Iterable[Any],
        *,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
    ) -> list[InfluenceResult]:
        """Answer a batch of queries in order (sweep helper).

        ``config`` and ``rng`` are threaded through to every
        :meth:`run` call exactly as if passed per query — earlier
        versions silently dropped them, so sweeps got the session
        defaults with no error.  A non-``None`` ``rng`` seeds *one*
        stream that the whole batch consumes in order (so the sweep is
        reproducible as a unit); pass ``rng`` to individual :meth:`run`
        calls instead if each query must be independently pinned.
        """
        gen = None if rng is None else make_rng(rng)
        return [self.run(query, config=config, rng=gen) for query in queries]

    # ------------------------------------------------------------------
    # Pooled seed selection (handlers call this)
    # ------------------------------------------------------------------
    def select_seeds(
        self,
        regime: str,
        gaps: GAP,
        opposite_seeds: Sequence[int],
        k: int,
        config: Optional[EngineConfig] = None,
        rng: SeedLike = None,
        *,
        candidates: Optional[Sequence[int]] = None,
    ) -> SelectionResult:
        """Run TIM/IMM seed selection against the cached pool for
        ``(regime, gaps, opposite_seeds)``, topping the pool up as needed.

        This is the reuse point: handlers (and power users driving the
        RR-set machinery directly) come through here so that every
        selection over the same regime/GAP/opposite-context shares one
        growing pool.  ``candidates`` restricts the pickable seed nodes
        (selection only — sampling stays unrestricted, so the cached pool
        is shared across candidate sets).  When the resolved config caps
        ``max_pool_bytes``, least-recently-used pools are evicted after
        the selection until the cache fits.
        """
        if not isinstance(gaps, GAP):
            raise QueryError(
                f"gaps must be a GAP, got {type(gaps).__name__}"
            )
        if config is not None and not isinstance(config, EngineConfig):
            raise QueryError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        cfg = config if config is not None else self._config
        gen = self._rng if rng is None else make_rng(rng)
        entry = self._pool_entry(regime, gaps, opposite_seeds)
        before = len(entry.pool)
        result = run_seed_selection(
            entry.generator,
            k,
            engine=cfg.engine,
            options=cfg.tim_options(),
            imm_options=cfg.imm_options() if cfg.engine == "imm" else None,
            rng=gen,
            pool=entry.pool,
            candidates=candidates,
        )
        entry.selections += 1
        self.stats.rr_sets_sampled += len(entry.pool) - before
        self._evict_pools(cfg.max_pool_bytes)
        return result

    def _pool_entry(
        self, regime: str, gaps: GAP, opposite_seeds: Sequence[int]
    ) -> _PoolEntry:
        key = self._pool_key(regime, gaps, opposite_seeds)
        entry = self._pools.pop(key, None)
        if entry is None:
            factory = registry.generator_factory(regime)
            generator = factory(self._graph, gaps, key[2])
            entry = _PoolEntry(generator, RRSetPool(self._graph.num_nodes))
            self.stats.pool_misses += 1
        else:
            self.stats.pool_hits += 1
        # Re-insert at the back: dict order is the LRU order.
        self._access_clock += 1
        entry.last_used = self._access_clock
        self._pools[key] = entry
        return entry

    def _evict_pools(self, max_pool_bytes: Optional[int]) -> None:
        """Drop least-recently-used pools until the cache fits the cap.

        The most recent entry is evicted last — only when it alone
        exceeds the cap (it is no longer in use by then; the next query
        on its key resamples).
        """
        if max_pool_bytes is None:
            return
        while self._pools and self.pool_bytes_total > max_pool_bytes:
            key = next(iter(self._pools))
            entry = self._pools.pop(key)
            self.stats.pool_evictions += 1
            self.stats.pool_bytes_evicted += entry.pool.nbytes

    @staticmethod
    def _pool_key(
        regime: str, gaps: GAP, opposite_seeds: Sequence[int]
    ) -> PoolKey:
        seeds = tuple(sorted({int(s) for s in opposite_seeds}))
        return (str(regime), gaps.as_tuple(), seeds)

    # ------------------------------------------------------------------
    # Pool accounting
    # ------------------------------------------------------------------
    @property
    def pool_sets_total(self) -> int:
        """Total RR-sets held across all cached pools."""
        return sum(len(entry.pool) for entry in self._pools.values())

    @property
    def pool_bytes_total(self) -> int:
        """Total bytes of RR-set data held across all cached pools."""
        return sum(entry.pool.nbytes for entry in self._pools.values())

    def pool_info(self) -> list[PoolInfo]:
        """Diagnostics snapshot of every cached pool."""
        infos = []
        for (regime, gap_tuple, seeds), entry in self._pools.items():
            batched = (
                type(entry.generator).generate_batch
                is not RRSetGenerator.generate_batch
            )
            infos.append(
                PoolInfo(
                    regime=regime,
                    gaps=gap_tuple,
                    opposite_seeds=seeds,
                    sets=len(entry.pool),
                    nbytes=entry.pool.nbytes,
                    selections=entry.selections,
                    batch_kernel="vectorized" if batched else "oracle-fallback",
                    last_used=entry.last_used,
                )
            )
        return infos

    def clear_pools(self) -> None:
        """Drop every cached pool (frees memory; next queries resample)."""
        self._pools.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComICSession(nodes={self._graph.num_nodes}, "
            f"pools={len(self._pools)}, sets={self.pool_sets_total}, "
            f"queries={self.stats.queries})"
        )

