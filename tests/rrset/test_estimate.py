"""Tests for RR-set-based objective estimation."""

import numpy as np
import pytest

from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import GAP, estimate_spread, exact_adoption_probabilities
from repro.rrset import (
    RRICGenerator,
    RRSimPlusGenerator,
    rr_estimate_many,
    rr_estimate_objective,
)


class TestRRICEstimate:
    def test_matches_exact_on_fixture(self):
        graph = DiGraph.from_edges(
            4, [(0, 1, 0.6), (1, 2, 0.5), (0, 3, 0.4)]
        )
        seeds = [0]
        estimate = rr_estimate_objective(
            RRICGenerator(graph), seeds, samples=30_000, rng=1
        )
        pa, _ = exact_adoption_probabilities(graph, GAP.classic_ic(), seeds, [])
        assert estimate.mean == pytest.approx(float(pa.sum()), abs=0.1)

    def test_deterministic_star(self):
        graph = star_digraph(20, probability=1.0)
        estimate = rr_estimate_objective(
            RRICGenerator(graph), [0], samples=2000, rng=2
        )
        assert estimate.mean == pytest.approx(20.0)
        assert estimate.std == pytest.approx(0.0)

    def test_empty_seed_set(self):
        graph = path_digraph(4)
        estimate = rr_estimate_objective(RRICGenerator(graph), [], samples=500, rng=3)
        assert estimate.mean == 0.0

    def test_samples_validated(self):
        graph = path_digraph(3)
        with pytest.raises(ValueError):
            rr_estimate_objective(RRICGenerator(graph), [0], samples=0)


class TestRRSimEstimate:
    def test_matches_mc_spread(self):
        graph = star_digraph(30, probability=0.6)
        gaps = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
        seeds_b = [0]
        generator = RRSimPlusGenerator(graph, gaps, seeds_b)
        rr = rr_estimate_objective(generator, [0], samples=20_000, rng=4)
        mc = estimate_spread(graph, gaps, [0], seeds_b, runs=5000, rng=5)
        assert rr.mean == pytest.approx(mc.mean, rel=0.08)


class TestSharedPool:
    def test_ranking_consistent_with_structure(self):
        graph = star_digraph(25, probability=1.0)
        estimates = rr_estimate_many(
            RRICGenerator(graph), [[0], [1], [1, 2]], samples=3000, rng=6
        )
        hub, leaf, leaves = (e.mean for e in estimates)
        assert hub > leaves > leaf

    def test_monotone_in_seed_sets(self):
        graph = star_digraph(15, probability=0.5)
        subset, superset = rr_estimate_many(
            RRICGenerator(graph), [[1], [1, 2, 3]], samples=4000, rng=7
        )
        # Shared pool: a superset can never score below its subset.
        assert superset.mean >= subset.mean

    def test_lengths(self):
        graph = path_digraph(4)
        results = rr_estimate_many(
            RRICGenerator(graph), [[0], [1], [2], [3]], samples=100, rng=8
        )
        assert len(results) == 4
