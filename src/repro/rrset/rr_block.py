"""RR-Block: RR-set generation for influence blocking (Appendix B.4).

Influence blocking in ``Q-`` maximises the *suppression*

    sigma_A(S_A, emptyset) - sigma_A(S_A, S_B)  >= 0

over B-seed sets ``S_B`` ([5, 13]; the paper frames it through
cross-monotonicity, Theorem 3).  The appendix's Example 5 shows per-world
submodularity can fail in ``Q-``, so no RR-set construction can be exact;
this module implements a principled *heuristic* RR regime whose pooled
max-coverage approximates the blocking greedy orders of magnitude faster
than per-evaluation Monte-Carlo CELF.

Valid regime (one-way competition, the ``Q-`` mirror of RR-SIM's
Theorem-7 conditions): mutual competition with B indifferent to A
(``q_{B|emptyset} = q_{B|A}``), so B's diffusion is independent of A's
(Lemma 3) and resolvable on its own.  This is exactly the
campaign-oblivious setting of the influence-blocking literature [5].

Per-world semantics (both sampling paths implement these *identically*):

1. **Forward pass** — run A's cascade from ``S_A`` with no B present and
   record each node's adoption time ``d_A``: seeds adopt at step 0, a
   node first informed at step ``t`` adopts at ``t`` iff
   ``alpha_A < q_{A|emptyset}``.
2. **Root filter** — the suppression set of root ``v`` is empty unless
   ``v`` adopted A (nothing to suppress), is not itself an A-seed (seed
   adoptions are unconditional), and ``alpha_A(v) >= q_{A|B}`` (otherwise
   ``v`` would adopt A even when B-adopted, so no interception flips it).
3. **Suppression set** — the candidates whose *single* B-seeding provably
   flips ``v`` to non-adoption: every ``u`` whose B-wave reaches ``v``
   *before* A's does, i.e. with a live path ``u -> ... -> v`` of length
   ``< d_A(v)`` whose nodes after ``u`` (``v`` included) all pass
   ``alpha_B < q_{B|emptyset}``.  Because B's cascade ignores A entirely
   in this regime, such a ``u`` B-adopts ``v`` before A's (possibly
   delayed) arrival, and ``v``'s A-test then fails by the root filter.
   A ``u`` at distance exactly ``d_A(v)`` arrives *simultaneously* — the
   stochastic model breaks that race with its tie-break machinery, which
   this regime resolves with the node's fair world coin ``tau(u)``
   (otherwise unused here: candidates never carry both seeds), so tied
   candidates join the set with probability 1/2.  A-seeds are excluded
   from the recorded set — the query layer never re-seeds occupied
   nodes — though B-waves still travel *through* them.

Heuristic caveats (documented, and guarded by an MC cross-check in
``tests/api/test_session.py``): interception-at-the-root is sufficient
but not necessary (a B-wave that merely cuts A's paths without reaching
``v`` is missed), and the fair-coin tie is a proxy for the model's
informer-order race.  Max-coverage over pooled suppression sets (empty
sets kept for dropped roots so the ``n * coverage / theta`` estimate
stays normalised over uniform roots) therefore *approximates* greedy
blocking rather than carrying the ``Q+`` regimes' guarantees.

Batched fast path
-----------------

:meth:`RRBlockGenerator.generate_batch` processes a chunk of independent
worlds at once in the style of the other kernels, but computes ``d_A``
*in reverse*: the root's forward adoption time equals the length of the
shortest live path from an A-seed whose non-seed nodes (root included)
all pass ``alpha_A`` — the standard BFS-time argument — so a reverse
A-search from the root that retires its lane the moment a seed enters
the frontier finds ``d_A(root)`` while touching only the root's
neighbourhood.  That keeps batch cost proportional to output size where
a forward sweep would re-cascade ``S_A`` across every world (hub seed
sets made that quadratic in practice).  Roots are pre-filtered by one
uniform draw realising ``alpha_A(root)`` (outside ``[q_{A|B}, q_{A|∅})``
the set is empty before any search).  Every phase-1 coin is recorded
into a :class:`~repro.rrset.pool.ChunkCoinMemo` (record fast lane — each
node expands at most once per world) and the bounded reverse B-sweep
replays them via ``lookup_or_draw``, so an edge keeps one coin across
both passes exactly like the oracle's memoised ``WorldSource``.  Output
distribution is identical to :meth:`generate`;
``tests/rrset/test_rr_block.py`` verifies fixed-world equality and
aggregate frequencies.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.possible_world import PossibleWorld
from repro.models.sources import ITEM_A, ITEM_B, WorldSource
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import (
    ChunkCoinMemo,
    RRSetPool,
    expand_csr,
    flatten_members,
    touches_from_keys,
)
from repro.rrset.sweep import make_flags

#: Target size of one chunk's coin memo (entries) — bounds batch memory on
#: worlds whose reverse A-regions are dense.
_COIN_BUDGET = 16 << 20


def check_rr_block_regime(gaps: GAP) -> None:
    """Raise :class:`RegimeError` unless one-way competition holds."""
    if not (gaps.is_mutually_competitive and gaps.b_indifferent_to_a):
        raise RegimeError(
            "RR-Block requires one-way competition: q_{A|B} <= q_{A|0} and "
            f"q_{{B|0}} = q_{{B|A}}; got {gaps}"
        )


def forward_a_times(
    graph: DiGraph,
    world: WorldSource,
    q_a: float,
    seeds_a: Iterable[int],
) -> dict[int, int]:
    """Forward pass: A-adoption times under ``(S_A, emptyset)``.

    Returns ``{node: step}`` for every A-adopted node; seeds adopt at 0,
    a non-seed first informed at step ``t`` adopts then iff
    ``alpha_A < q_{A|emptyset}`` (the NLA runs once, like the memoised
    oracle).  With no B present there is no reconsideration in ``Q-``.
    """
    times: dict[int, int] = {}
    failed: set[int] = set()
    frontier: list[int] = []
    for s in seeds_a:
        s = int(s)
        if s not in times:
            times[s] = 0
            frontier.append(s)
    t = 0
    while frontier:
        t += 1
        nxt: list[int] = []
        for u in frontier:
            targets, probs, eids = graph.out_edges(u)
            for idx in range(targets.size):
                v = int(targets[idx])
                if v in times or v in failed:
                    continue
                if not world.edge_live(int(eids[idx]), float(probs[idx])):
                    continue
                if world.alpha(v, ITEM_A) < q_a:
                    times[v] = t
                    nxt.append(v)
                else:
                    failed.add(v)
        frontier = nxt
    return times


def suppression_search(
    graph: DiGraph,
    world: WorldSource,
    gaps: GAP,
    root: int,
    a_times: dict[int, int],
    seeds_a: frozenset,
) -> np.ndarray:
    """Bounded reverse B-search producing the suppression set of ``root``.

    Empty unless the root filter keeps ``root`` (see module docstring);
    otherwise a reverse BFS from ``root`` over live edges, relaying only
    through nodes passing ``alpha_B < q_{B|emptyset}``, down to depth
    ``d_A(root)`` — every reached non-A-seed node joins the set, except
    that nodes at exactly depth ``d_A(root)`` (simultaneous arrival)
    join only when their fair world coin resolves the race for B.
    """
    empty = np.empty(0, dtype=np.int64)
    if root in seeds_a or root not in a_times:
        return empty
    if world.alpha(root, ITEM_A) < gaps.q_a_given_b:
        return empty  # root adopts A even while B-adopted: unflippable
    budget = a_times[root]
    members = [root]
    visited = {root}
    frontier = [root]
    depth = 0
    q_b = gaps.q_b
    while frontier and depth < budget:
        depth += 1
        nxt: list[int] = []
        for x in frontier:
            if world.alpha(x, ITEM_B) >= q_b:
                continue  # x cannot relay B onward
            sources, probs, eids = graph.in_edges(x)
            for idx in range(sources.size):
                y = int(sources[idx])
                if y in visited:
                    continue
                if world.edge_live(int(eids[idx]), float(probs[idx])):
                    visited.add(y)
                    nxt.append(y)
                    if y not in seeds_a and (
                        depth < budget or not world.seed_a_first(y)
                    ):
                        members.append(y)
        frontier = nxt
    return np.asarray(members, dtype=np.int64)


class RRBlockGenerator(RRSetGenerator):
    """Random suppression-set sampler for influence blocking (Q-)."""

    # All liveness coins flow through the chunk memo (reverse-A records,
    # reverse-B replays), giving the exact edge-touch signature repair
    # needs — even for worlds that produced an empty suppression set.
    touch_mode = "recorded"

    def __init__(self, graph: DiGraph, gaps: GAP, seeds_a: Iterable[int]) -> None:
        super().__init__(graph)
        check_rr_block_regime(gaps)
        self._gaps = gaps
        self._seeds_a = [int(s) for s in seeds_a]
        for s in self._seeds_a:
            if not 0 <= s < graph.num_nodes:
                raise RegimeError(f"A-seed {s} out of range")
        self._seed_set = frozenset(self._seeds_a)

    @property
    def gaps(self) -> GAP:
        """The GAP configuration (one-way competition)."""
        return self._gaps

    @property
    def seeds_a(self) -> list[int]:
        """The fixed A-seed set whose spread is being suppressed."""
        return list(self._seeds_a)

    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None, world=None
    ) -> np.ndarray:
        """``world`` injects a fixed possible world (tests/ablations)."""
        gen = make_rng(rng)
        if root is None:
            root = int(gen.integers(0, self._graph.num_nodes))
        if world is None:
            world = WorldSource(gen)
        a_times = forward_a_times(
            self._graph, world, self._gaps.q_a, self._seeds_a
        )
        return suppression_search(
            self._graph, world, self._gaps, root, a_times, self._seed_set
        )

    def _reverse_a_times(
        self,
        b: int,
        chunk_roots: np.ndarray,
        lanes: np.ndarray,
        gen: np.random.Generator,
        world: Optional[PossibleWorld],
        memo: ChunkCoinMemo,
        backend: str,
    ) -> np.ndarray:
        """Phase 1: per-lane reverse A-search resolving ``d_A(root)``.

        ``lanes`` lists the chunk worlds whose (non-seed) roots survived
        the ``alpha_A`` pre-filter — their roots are known to pass.  The
        forward adoption time equals the shortest live path from a seed
        whose non-seed nodes all pass ``alpha_A``, so each lane walks
        backwards from its root and resolves at the first depth a seed
        enters the frontier; lanes whose frontier dies resolve to -1
        (root never adopts).  Each node expands at most once per world,
        so coins go through the memo's record fast lane and ``alpha_A``
        gates draw fresh.
        """
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        q_a = self._gaps.q_a
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        seeds = np.unique(np.asarray(self._seeds_a, dtype=np.int64))
        budget = np.full(b, -1, dtype=np.int64)
        if lanes.size == 0 or seeds.size == 0:
            return budget
        visited = make_flags(b, n, backend)
        fw, fn = lanes, chunk_roots[lanes]
        visited.mark(fw * n + fn)
        depth = 0
        while fn.size:
            if depth > 0:
                # Seed hit: the lane resolves at this depth (a BFS first
                # hit is the minimum; several seeds in one frontier agree).
                pos = np.minimum(
                    np.searchsorted(seeds, fn), seeds.size - 1
                )
                hit = seeds[pos] == fn
                if hit.any():
                    budget[fw[hit]] = depth
                    live_lane = budget[fw] == -1
                    fw, fn = fw[live_lane], fn[live_lane]
                    if fn.size == 0:
                        break
                # Relay gate: expanding past x makes it path-interior, so
                # x must pass alpha_A (the depth-0 root already did, via
                # the pre-filter draw).
                if world is None:
                    relay = gen.random(fn.size) < q_a
                else:
                    relay = world.alpha_a[fn] < q_a
                fw, fn = fw[relay], fn[relay]
                if fn.size == 0:
                    break
            reps, flat = expand_csr(in_indptr, fn)
            if flat.size == 0:
                break
            if world is None:
                live = gen.random(flat.size) < in_prob[flat]
                memo.record(fw[reps] * m + in_eid[flat], live)
            else:
                live = world.live[in_eid[flat]]
            key = visited.mark_new(fw[reps[live]] * n + in_src[flat[live]])
            if key.size == 0:
                break
            fw, fn = np.divmod(key, n)
            depth += 1
        return budget

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
        world: Optional[PossibleWorld] = None,
    ) -> RRSetPool:
        """Vectorized batch sampling (see module docstring).

        ``world`` pins one eagerly-sampled possible world shared by every
        set in the batch (fixed-world equivalence tests); by default each
        set samples its own independent world lazily, materialising coins
        and thresholds only where the sweeps touch.
        """
        gen = make_rng(rng)
        graph = self._graph
        n, m = graph.num_nodes, graph.num_edges
        gaps = self._gaps
        pool = out if out is not None else RRSetPool(n)
        if roots is None:
            roots = self.random_roots(count, rng=gen)
        else:
            roots = np.asarray(roots, dtype=np.int64)
        if roots.size == 0:
            return pool
        in_indptr, in_src, in_prob, in_eid = graph.csr_in()
        seeds = np.unique(np.asarray(self._seeds_a, dtype=np.int64))
        # Two visited bitmaps per (world, node) dense: the sweep engine
        # budgets them, then chunks re-size from the observed memo load
        # like the other adaptive kernels.
        backend = self.sweep.resolve_backend(n)
        max_chunk = self.sweep.chunk_size(
            n, backend, state_bytes_per_node=2, max_members=8192
        )
        chunk = min(max_chunk, 256)
        start = 0
        while start < roots.size:
            chunk_roots = roots[start : start + chunk]
            b = chunk_roots.size
            start += b
            memo = ChunkCoinMemo()
            # Root pre-filter: one uniform draw realises alpha_A(root).
            # Only roots with alpha in [q_{A|B}, q_{A|∅}) can both adopt
            # A and be flipped by an interception; seeds adopt
            # unconditionally and are never blockable.
            if world is None:
                alpha_root = gen.random(b)
            else:
                alpha_root = world.alpha_a[chunk_roots]
            viable = (alpha_root >= gaps.q_a_given_b) & (alpha_root < gaps.q_a)
            if seeds.size:
                viable &= ~np.isin(chunk_roots, seeds)
            root_time = self._reverse_a_times(
                b, chunk_roots, np.flatnonzero(viable), gen, world, memo,
                backend,
            )
            if world is None:
                coins_per_world = max(memo.size / b, 1.0)
                chunk = int(np.clip(_COIN_BUDGET / coins_per_world, 1, max_chunk))
            track = pool.track_touches and world is None

            def chunk_touches():
                # The phase-1 reverse-A coins live in the memo even for
                # worlds whose suppression set came out empty, so both
                # append sites must extract the record.
                if not track:
                    return None, None
                return touches_from_keys(memo.touched_keys(), m, b)

            lanes = np.flatnonzero(root_time > 0)
            if lanes.size == 0:
                touch_edges, touch_lengths = chunk_touches()
                pool.append_flat(
                    np.empty(0, dtype=np.int32),
                    np.zeros(b, dtype=np.int64),
                    roots=chunk_roots,
                    touch_edges=touch_edges,
                    touch_lengths=touch_lengths,
                )
                continue
            lane_roots = chunk_roots[lanes]
            visited = make_flags(b, n, backend)
            visited.mark(lanes * n + lane_roots)
            member_ids = [lanes]
            member_nodes = [lane_roots]
            frontier_world, frontier_node = lanes, lane_roots
            depth = 0
            q_b = gaps.q_b
            while frontier_node.size:
                # Relay gate: a frontier node expands iff its lane still
                # has depth budget and it passes alpha_B (each node is
                # gated at most once per world, so a fresh draw realises
                # the threshold exactly).
                deepen = root_time[frontier_world] > depth
                fw, fn = frontier_world[deepen], frontier_node[deepen]
                if fn.size == 0:
                    break
                if world is None:
                    relay = gen.random(fn.size) < q_b
                else:
                    relay = world.alpha_b[fn] < q_b
                fw, fn = fw[relay], fn[relay]
                if fn.size == 0:
                    break
                depth += 1
                reps, flat = expand_csr(in_indptr, fn)
                if flat.size == 0:
                    break
                if world is None:
                    live = memo.lookup_or_draw(
                        fw[reps] * m + in_eid[flat], in_prob[flat], gen
                    )
                else:
                    live = world.live[in_eid[flat]]
                key = visited.mark_new(
                    fw[reps[live]] * n + in_src[flat[live]]
                )
                if key.size == 0:
                    break
                frontier_world, frontier_node = np.divmod(key, n)
                record = np.ones(frontier_node.size, dtype=bool)
                if seeds.size:
                    # A-seeds relay B but are not recorded as candidates.
                    pos = np.searchsorted(seeds, frontier_node)
                    pos_c = np.minimum(pos, seeds.size - 1)
                    record &= seeds[pos_c] != frontier_node
                # Simultaneous arrival (depth == d_A): the node's fair
                # world coin resolves the race; each (world, node) is
                # discovered once, so a fresh draw realises tau exactly.
                tie = np.flatnonzero(
                    record & (root_time[frontier_world] == depth)
                )
                if tie.size:
                    if world is None:
                        a_first = gen.random(tie.size) < 0.5
                    else:
                        a_first = world.tau_a_first[frontier_node[tie]]
                    record[tie[a_first]] = False
                member_ids.append(frontier_world[record])
                member_nodes.append(frontier_node[record])
            nodes, lengths = flatten_members(member_nodes, member_ids, b)
            touch_edges, touch_lengths = chunk_touches()
            pool.append_flat(
                nodes,
                lengths,
                roots=chunk_roots,
                touch_edges=touch_edges,
                touch_lengths=touch_lengths,
            )
        return pool
