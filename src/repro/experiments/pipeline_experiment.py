"""Fitted-vs-true pipeline experiment (the ISSUE 10 quality gates).

Because the action log and episode corpus are *generated from known
ground truth* (the NLA simulator of :mod:`repro.learning.synthetic_logs`
and IC cascades on a known graph), the full pipeline can be graded
against an oracle no real dataset provides:

1. build a ground-truth network: a power-law graph with weighted-cascade
   probabilities and the bench GAP (one-way complementarity, so the
   rr-sim fast path is exercised);
2. synthesise its action log and episode corpus;
3. run the pipeline **cold** (all stages compute) and **warm** (stages
   1–2 must be served by the content-addressed cache);
4. grade the fit: every GAP parameter inside its 95% CI (× ``slack``),
   and the fitted model's selected seeds within ``spread_floor`` of the
   true model's seeds when both are MC-evaluated *on the true network*.

Returned as a metrics dict with a :class:`TableResult` under
``"table"``; ``benchmarks/bench_pipeline.py`` turns the dict into the
gated ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Union

from repro.api.config import EngineConfig
from repro.api.queries import SelfInfMaxQuery
from repro.api.session import ComICSession
from repro.experiments.harness import TableResult
from repro.graph.generators import power_law_digraph
from repro.graph.weights import weighted_cascade_probabilities
from repro.learning.em_cascades import generate_ic_episodes
from repro.learning.synthetic_logs import generate_synthetic_log
from repro.models.gaps import GAP
from repro.models.spread import estimate_spread
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import run_pipeline
from repro.rng import derive_seed

__all__ = ["pipeline_fitted_vs_true", "TRUE_GAP"]

#: the ground-truth GAP of the experiment: *strictly* mutually
#: complementary (q_a_given_b > q_a AND q_b_given_a > q_b).  SelfInfMax
#: requires Q+, and a truth sitting exactly on the boundary
#: (q_b_given_a == q_b) would let estimation noise push the fitted GAP
#: outside the regime about half the time; the 0.15 margin keeps the
#: fitted quadruple inside Q+ at the experiment's sample sizes.
TRUE_GAP = GAP(q_a=0.3, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.65)

_GAP_PARAMS = ("q_a", "q_a_given_b", "q_b", "q_b_given_a")


def pipeline_fitted_vs_true(
    *,
    workdir: Union[str, os.PathLike],
    nodes: int = 300,
    episodes: int = 150,
    seeds_per_episode: int = 3,
    num_users: int = 4000,
    k: int = 5,
    seeds_b: tuple = (0, 1),
    mc_runs: int = 400,
    em_initial: float = 0.1,
    slack: float = 1.0,
    seed: int = 7,
    engine: Optional[EngineConfig] = None,
) -> dict[str, Any]:
    """Run the synthetic fitted-vs-true experiment; returns the metrics.

    The dict carries the three gate inputs — ``gap_contained`` (all four
    parameters within ``slack`` CI halfwidths of truth),
    ``spread_ratio`` (fitted-seeds vs true-seeds σ_A on the true model),
    ``warm_stages_skipped`` — plus per-parameter rows, both runs' stage
    records, and a rendered :class:`TableResult` under ``"table"``.
    """
    if engine is None:
        engine = EngineConfig()
    true_graph = weighted_cascade_probabilities(
        power_law_digraph(nodes, rng=derive_seed(seed, 1))
    )
    log = generate_synthetic_log(
        [("a", "b", TRUE_GAP)],
        num_users=num_users,
        rng=derive_seed(seed, 2),
    )
    corpus = generate_ic_episodes(
        true_graph,
        episodes,
        seeds_per_episode=seeds_per_episode,
        rng=derive_seed(seed, 3),
    )
    query = SelfInfMaxQuery(seeds_b=tuple(seeds_b), k=k)
    config = PipelineConfig(
        item_a="a",
        item_b="b",
        edge_backend="em",
        em_initial=em_initial,
        queries=(query,),
        engine=engine,
        seed=seed,
    )

    started = time.perf_counter()
    cold = run_pipeline(
        true_graph, log, config, episodes=corpus, workdir=workdir,
        truth=TRUE_GAP,
    )
    cold_wall_s = time.perf_counter() - started
    started = time.perf_counter()
    warm = run_pipeline(
        true_graph, log, config, episodes=corpus, workdir=workdir,
        truth=TRUE_GAP,
    )
    warm_wall_s = time.perf_counter() - started

    # The oracle: the same query answered on the *true* network.
    session = ComICSession(
        true_graph, TRUE_GAP, config=engine, rng=derive_seed(seed, 4)
    )
    try:
        true_result = session.run(query)
    finally:
        session.close()

    # Both seed sets graded by MC on the true network — the paper's
    # "how much influence does the fitted model actually buy" measure.
    fitted_spread = estimate_spread(
        true_graph, TRUE_GAP, cold.results[0].seeds, seeds_b,
        runs=mc_runs, rng=derive_seed(seed, 5),
    )
    true_spread = estimate_spread(
        true_graph, TRUE_GAP, true_result.seeds, seeds_b,
        runs=mc_runs, rng=derive_seed(seed, 5),
    )
    spread_ratio = (
        fitted_spread.mean / true_spread.mean if true_spread.mean > 0 else 1.0
    )

    learned = cold.learned_gap
    gap_rows = []
    for name in _GAP_PARAMS:
        lo, hi = learned.interval(name)
        gap_rows.append(
            {
                "parameter": name,
                "true": getattr(TRUE_GAP, name),
                "fitted": getattr(learned.gap, name),
                "ci_lo": lo,
                "ci_hi": hi,
                "halfwidth": learned.halfwidths[name],
                "samples": learned.samples[name],
                "inside_ci": bool(lo <= getattr(TRUE_GAP, name) <= hi),
            }
        )
    table = TableResult(
        title="Pipeline fitted-vs-true recovery",
        columns=[
            "parameter", "true", "fitted", "ci_lo", "ci_hi",
            "halfwidth", "samples", "inside_ci",
        ],
        rows=gap_rows,
        notes=(
            f"spread ratio {spread_ratio:.3f} "
            f"(fitted {fitted_spread.mean:.2f} vs true {true_spread.mean:.2f}, "
            f"{mc_runs} MC runs); warm re-run skipped "
            f"{warm.stages_skipped} stages"
        ),
    )
    return {
        "nodes": nodes,
        "edges": true_graph.num_edges,
        "episodes": episodes,
        "num_users": num_users,
        "k": k,
        "seed": seed,
        "gap_rows": gap_rows,
        "gap_contained": learned.contains_truth(TRUE_GAP, slack=slack),
        "em_iterations": cold.em.iterations if cold.em is not None else None,
        "em_converged": cold.em.converged if cold.em is not None else None,
        "fitted_seeds": list(cold.results[0].seeds),
        "true_seeds": list(true_result.seeds),
        "fitted_spread": fitted_spread.mean,
        "true_spread": true_spread.mean,
        "spread_ratio": spread_ratio,
        "cold_wall_s": cold_wall_s,
        "warm_wall_s": warm_wall_s,
        "cold_stages": [
            {"stage": s.stage, "status": s.status, "wall_s": s.wall_s}
            for s in cold.stages
        ],
        "warm_stages": [
            {"stage": s.stage, "status": s.status, "wall_s": s.wall_s}
            for s in warm.stages
        ],
        "warm_stages_skipped": warm.stages_skipped,
        "run_ids": [cold.run_id, warm.run_id],
        "db_path": cold.db_path,
        "table": table,
    }
