"""PoolKey: normalisation, transport, digests, API re-export."""

import pytest

from repro.errors import StoreError
from repro.models import GAP
from repro.store import PoolKey

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)


class TestMake:
    def test_normalises_seeds_sorted_unique_int(self):
        key = PoolKey.make("rr-sim", GAPS, [5, 1, 5, 3, 1])
        assert key.opposite_seeds == (1, 3, 5)
        assert all(isinstance(s, int) for s in key.opposite_seeds)

    def test_gap_object_and_quadruple_agree(self):
        from_gap = PoolKey.make("rr-sim", GAPS, [0])
        from_tuple = PoolKey.make("rr-sim", GAPS.as_tuple(), [0])
        assert from_gap == from_tuple
        assert hash(from_gap) == hash(from_tuple)

    def test_equal_keys_for_equal_pools(self):
        a = PoolKey.make("rr-sim", GAPS, (2, 1))
        b = PoolKey.make("rr-sim", GAPS, (1, 2, 2))
        assert a == b
        assert {a: "x"}[b] == "x"

    def test_distinct_components_distinct_keys(self):
        base = PoolKey.make("rr-sim", GAPS, [1])
        assert base != PoolKey.make("rr-cim", GAPS, [1])
        assert base != PoolKey.make("rr-sim", GAPS, [1, 2])
        other = GAP(q_a=0.4, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
        assert base != PoolKey.make("rr-sim", other, [1])

    def test_bad_gap_arity_rejected(self):
        with pytest.raises(StoreError, match="quadruple"):
            PoolKey.make("rr-sim", (0.1, 0.2, 0.3), [0])


class TestTransport:
    def test_dict_round_trip(self):
        key = PoolKey.make("rr-block", GAPS, [4, 2])
        assert PoolKey.from_dict(key.to_dict()) == key

    def test_from_dict_missing_field_rejected(self):
        with pytest.raises(StoreError, match="missing"):
            PoolKey.from_dict({"regime": "rr-sim"})

    def test_canonical_json_is_deterministic(self):
        key = PoolKey.make("rr-sim", GAPS, [9, 0])
        assert key.canonical_json() == key.canonical_json()
        assert '"regime":"rr-sim"' in key.canonical_json()


class TestDigest:
    def test_digest_is_stable_and_hexlike(self):
        key = PoolKey.make("rr-sim", GAPS, [1, 2])
        digest = key.digest()
        assert digest == PoolKey.make("rr-sim", GAPS, [2, 1]).digest()
        assert len(digest) == 16
        int(digest, 16)  # hex

    def test_digest_separates_keys(self):
        a = PoolKey.make("rr-sim", GAPS, [1]).digest()
        b = PoolKey.make("rr-sim", GAPS, [2]).digest()
        assert a != b


class TestReExport:
    def test_api_exports_the_same_class(self):
        from repro.api import PoolKey as ApiPoolKey

        assert ApiPoolKey is PoolKey
