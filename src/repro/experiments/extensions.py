"""Extension experiments: comparisons beyond the paper's evaluation.

These runners follow the same :class:`~repro.experiments.harness.ExperimentScale`
protocol as the Table/Figure reproductions, so they share the CLI and the
benchmark harness:

* :func:`extension_engine_comparison` — GeneralTIM [24] vs IMM [23] as
  the seed-selection engine over identical RR-SIM+ instances;
* :func:`extension_heuristic_comparison` — the [9] discount heuristics
  against the paper's structural baselines on a SelfInfMax workload;
* :func:`extension_gap_sensitivity` — Theorem 10 measured: the A-spread
  response to perturbing each GAP parameter around a learned-style Q+.
"""

from __future__ import annotations

import time

from repro.algorithms import (
    degree_discount_seeds,
    high_degree_seeds,
    single_discount_seeds,
)
from repro.analysis import GAP_PARAMETERS, gap_sensitivity
from repro.datasets import load_dataset
from repro.experiments.harness import ExperimentScale, TableResult
from repro.models import GAP, estimate_spread
from repro.rng import derive_seed
from repro.rrset import (
    RRSimPlusGenerator,
    general_imm,
    general_tim,
)
from repro.rrset.engines import imm_options_from_tim

#: one-way complementary GAPs on the provably-submodular path (Theorem 4).
ENGINE_GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)


def extension_engine_comparison(
    scale: ExperimentScale = ExperimentScale(),
) -> TableResult:
    """TIM vs IMM on identical SelfInfMax instances, per dataset.

    Reports RR-set counts, wall time, and the MC spread of each engine's
    seeds.  Expected shape: comparable spreads, IMM with far fewer RR-sets
    whenever the theoretical bounds (not the cap) bind.
    """
    rows = []
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base_seed = derive_seed(scale.seed, 60, d_index) or 0
        seeds_b = list(range(scale.opposite_size))
        generator = RRSimPlusGenerator(graph, ENGINE_GAPS, seeds_b)
        cap = scale.tim_options.max_rr_sets
        if scale.tim_options.theta_override is not None:
            cap = min(cap, scale.tim_options.theta_override * 4)

        started = time.perf_counter()
        tim = general_tim(
            generator, scale.k, options=scale.tim_options,
            rng=derive_seed(base_seed, 1),
        )
        tim_seconds = time.perf_counter() - started

        imm_options = imm_options_from_tim(scale.tim_options)
        started = time.perf_counter()
        imm = general_imm(
            generator, scale.k,
            options=type(imm_options)(
                epsilon=imm_options.epsilon,
                ell=imm_options.ell,
                max_rr_sets=cap,
                min_rr_sets=imm_options.min_rr_sets,
            ),
            rng=derive_seed(base_seed, 2),
        )
        imm_seconds = time.perf_counter() - started

        eval_rng = derive_seed(base_seed, 3)
        spread_tim = estimate_spread(
            graph, ENGINE_GAPS, tim.seeds, seeds_b,
            runs=scale.mc_runs, rng=eval_rng,
        ).mean
        spread_imm = estimate_spread(
            graph, ENGINE_GAPS, imm.seeds, seeds_b,
            runs=scale.mc_runs, rng=eval_rng,
        ).mean
        rows.append({
            "dataset": name,
            "tim_rr_sets": tim.theta,
            "imm_rr_sets": imm.theta,
            "tim_time_s": round(tim_seconds, 3),
            "imm_time_s": round(imm_seconds, 3),
            "tim_spread": round(spread_tim, 2),
            "imm_spread": round(spread_imm, 2),
        })
    return TableResult(
        title="Extension: GeneralTIM vs IMM engines (SelfInfMax, RR-SIM+)",
        columns=[
            "dataset", "tim_rr_sets", "imm_rr_sets",
            "tim_time_s", "imm_time_s", "tim_spread", "imm_spread",
        ],
        rows=rows,
        notes=f"one-way complementary GAPs {ENGINE_GAPS}, k={scale.k}",
    )


def extension_heuristic_comparison(
    scale: ExperimentScale = ExperimentScale(),
) -> TableResult:
    """DegreeDiscount / SingleDiscount vs HighDegree per dataset."""
    rows = []
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base_seed = derive_seed(scale.seed, 61, d_index) or 0
        seeds_b = list(range(scale.opposite_size))
        selections = {
            "degree_discount": degree_discount_seeds(graph, scale.k),
            "single_discount": single_discount_seeds(graph, scale.k),
            "high_degree": high_degree_seeds(graph, scale.k),
        }
        row: dict = {"dataset": name}
        eval_rng = derive_seed(base_seed, 1)
        for label, seeds in selections.items():
            row[label] = round(
                estimate_spread(
                    graph, ENGINE_GAPS, seeds, seeds_b,
                    runs=scale.mc_runs, rng=eval_rng,
                ).mean,
                2,
            )
        rows.append(row)
    return TableResult(
        title="Extension: discount heuristics vs HighDegree (SelfInfMax)",
        columns=["dataset", "degree_discount", "single_discount", "high_degree"],
        rows=rows,
        notes=f"GAPs {ENGINE_GAPS}, k={scale.k}",
    )


#: a learned-style mutually complementary configuration with headroom for
#: ±0.1 sweeps in every direction.
SENSITIVITY_GAPS = GAP(q_a=0.3, q_a_given_b=0.7, q_b=0.4, q_b_given_a=0.8)


def extension_gap_sensitivity(
    scale: ExperimentScale = ExperimentScale(),
) -> TableResult:
    """Theorem 10 measured: per-parameter A-spread response to ±0.1 shifts.

    For each GAP parameter, sweeps {-0.1, 0, +0.1} around
    :data:`SENSITIVITY_GAPS` with high-degree A-seeds and the usual fixed
    opposite seeds; all sweeps stay inside Q+, so each row's spread series
    must be non-decreasing (up to MC noise).
    """
    rows = []
    deltas = (-0.1, 0.0, 0.1)
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base_seed = derive_seed(scale.seed, 62, d_index) or 0
        seeds_a = high_degree_seeds(graph, scale.k)
        seeds_b = list(range(scale.opposite_size))
        for p_index, parameter in enumerate(GAP_PARAMETERS):
            result = gap_sensitivity(
                graph, SENSITIVITY_GAPS, seeds_a, seeds_b,
                parameter=parameter, deltas=deltas,
                runs=scale.mc_runs, rng=derive_seed(base_seed, p_index),
            )
            rows.append({
                "dataset": name,
                "parameter": parameter,
                "spread_minus": round(result.spreads[0], 2),
                "spread_base": round(result.spreads[1], 2),
                "spread_plus": round(result.spreads[2], 2),
                "range": round(result.range_width(), 2),
                "in_q_plus": result.all_in_q_plus,
            })
    return TableResult(
        title="Extension: GAP sensitivity (Theorem 10 measured)",
        columns=[
            "dataset", "parameter", "spread_minus", "spread_base",
            "spread_plus", "range", "in_q_plus",
        ],
        rows=rows,
        notes=f"base GAPs {SENSITIVITY_GAPS}, deltas {deltas}, "
              f"A-seeds = top-{scale.k} by degree",
    )
