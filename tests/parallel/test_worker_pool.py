"""WorkerPool: one executor time-shared across engines and regimes."""

import numpy as np
import pytest

from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery
from repro.errors import ParallelError
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.parallel import ParallelEngine, WorkerPool
from repro.rrset.rr_ic import RRICGenerator
from repro.rrset.rr_sim import RRSimGenerator

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(120, rng=5))


class TestWorkerPoolLifecycle:
    def test_lazy_spawn_and_generation(self):
        pool = WorkerPool(2)
        assert pool.workers == 2 and not pool.closed
        executor, gen = pool.executor()
        assert executor is pool.executor()[0]  # cached
        assert pool.executor()[1] == gen
        pool.close()
        assert pool.closed

    def test_closed_pool_rejects_executor(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(ParallelError, match="closed"):
            pool.executor()

    def test_kill_bumps_generation(self):
        pool = WorkerPool(2)
        _, gen = pool.executor()
        pool.kill(gen, wait=True)
        _, gen2 = pool.executor()
        assert gen2 == gen + 1
        pool.close()

    def test_stale_generation_kill_is_a_noop(self):
        pool = WorkerPool(2)
        _, gen = pool.executor()
        pool.kill(gen, wait=True)
        executor2, gen2 = pool.executor()
        pool.kill(gen, wait=True)  # stale: another engine already killed
        assert pool.executor()[0] is executor2
        pool.close()

    def test_context_manager(self):
        with WorkerPool(2) as pool:
            pool.executor()
        assert pool.closed

    def test_worker_mismatch_rejected(self, graph):
        pool = WorkerPool(2)
        with pytest.raises(ValueError, match="workers"):
            ParallelEngine(RRICGenerator(graph), 3, shared_pool=pool)
        pool.close()


class TestSharedGeneration:
    def test_two_regimes_share_one_pool(self, graph):
        with WorkerPool(2) as pool:
            ic = ParallelEngine(
                RRICGenerator(graph), 2,
                shared_pool=pool, min_batch_per_worker=8,
            )
            sim = ParallelEngine(
                RRSimGenerator(graph, GAPS, (0, 1)), 2,
                shared_pool=pool, min_batch_per_worker=8,
            )
            ic_sets = ic.generate_batch(64, rng=7)
            sim_sets = sim.generate_batch(64, rng=7)
            assert len(ic_sets) == 64 and len(sim_sets) == 64
            assert ic.shared_pool is pool and sim.shared_pool is pool
            assert ic.stats.batches == 1
            assert sim.stats.batches == 1
            ic.close()
            sim.close()
            assert not pool.closed  # engines detach, never kill

    def test_shared_output_matches_private_pool(self, graph):
        private = ParallelEngine(
            RRICGenerator(graph), 2, min_batch_per_worker=8
        )
        with WorkerPool(2) as pool:
            shared = ParallelEngine(
                RRICGenerator(graph), 2,
                shared_pool=pool, min_batch_per_worker=8,
            )
            a = private.generate_batch(96, rng=13)
            b = shared.generate_batch(96, rng=13)
        private.close()
        assert np.array_equal(a.nodes, b.nodes)
        assert np.array_equal(a.indptr, b.indptr)


class TestSessionSharing:
    def test_session_entries_share_one_worker_pool(self, graph):
        config = EngineConfig(engine="imm", max_rr_sets=800, workers=2)
        session = ComICSession(graph, GAPS, config=config, rng=1)
        session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=3))
        session.run(SelfInfMaxQuery(seeds_b=(2, 3), k=3))
        entries = list(session._pools.values())
        assert len(entries) == 2
        pools = {id(e.parallel.shared_pool) for e in entries if e.parallel}
        assert len(pools) == 1
        assert session._worker_pool is not None
        session.close()
        assert session._worker_pool is None

    def test_serial_session_builds_no_worker_pool(self, graph):
        session = ComICSession(graph, GAPS, rng=1)
        session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=3))
        assert session._worker_pool is None
        session.close()
