"""SNAP-style edge-list datasets: real graphs at million-node scale.

The paper's scalability story (§7.3) is told on graphs far larger than
the synthetic Table-1 stand-ins; public million-node networks ship as
SNAP_-style plain-text edge lists — one ``src dst`` pair per line,
``#``-prefixed comments, arbitrary (non-contiguous) node ids.
:func:`load_snap_graph` turns such a file into a
:class:`~repro.graph.DiGraph`: ids are relabelled to ``0..n-1`` with
``np.unique``, self-loops and duplicate edges are dropped, and the
influence probabilities come from the standard schemes of
:mod:`repro.graph.weights`.

Because the repository cannot ship a multi-hundred-MB crawl,
:func:`synthesize_power_law_edges` generates a million-node power-law
edge list *vectorised* (the per-node loop of
:func:`~repro.graph.generators.power_law_digraph` is fine at test scale
and hopeless at 10^6 nodes): out-degrees from the paper's exponent-2.16
discrete power law, uniform random targets, self-loops and duplicates
removed in one ``np.unique`` over flat ``src * n + dst`` keys.  The CLI

.. code-block:: console

    python -m repro.datasets.snap --synthesize 1000000 --out graph.txt

writes exactly the file format the loader reads; the nightly scale
benchmark synthesises (and caches) its 1M-node input this way.

.. _SNAP: https://snap.stanford.edu/data/
"""

from __future__ import annotations

import argparse
import os
from typing import Optional, Union

import numpy as np

from repro.errors import ExperimentError
from repro.graph.digraph import DiGraph
from repro.graph.weights import (
    constant_probabilities,
    trivalency_probabilities,
    weighted_cascade_probabilities,
)
from repro.rng import SeedLike, make_rng

PathLike = Union[str, os.PathLike]

SNAP_WEIGHTINGS = ("weighted-cascade", "trivalency", "constant")


def read_snap_edges(path: PathLike) -> tuple[np.ndarray, np.ndarray]:
    """Parse a SNAP-style edge list into raw ``(src, dst)`` id arrays.

    Lines are whitespace-separated ``src dst`` pairs (extra columns are
    ignored — some SNAP dumps carry timestamps); ``#`` comment lines and
    blank lines are skipped.  Ids are returned exactly as written — no
    relabelling, deduplication, or range checks happen here.
    """
    try:
        data = np.loadtxt(
            path, dtype=np.int64, comments="#", usecols=(0, 1), ndmin=2
        )
    except ValueError as exc:
        raise ExperimentError(f"malformed edge list {path}: {exc}") from exc
    if data.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return data[:, 0].copy(), data[:, 1].copy()


def relabel_edges(
    src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map arbitrary node ids onto ``0..n-1``; returns ``(src, dst, ids)``.

    ``ids`` is the sorted array of distinct original ids — ``ids[new]``
    recovers the original id of relabelled node ``new``.  Nodes that
    appear in no edge vanish (a SNAP file carries no isolated nodes
    anyway).
    """
    if np.asarray(src).size and int(min(src.min(), dst.min())) < 0:
        raise ExperimentError("edge list contains negative node ids")
    ids = np.unique(np.concatenate((src, dst)))
    return (
        np.searchsorted(ids, src),
        np.searchsorted(ids, dst),
        ids,
    )


def clean_edges(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Drop self-loops and duplicate edges; returns sorted distinct edges.

    One ``np.unique`` over flat ``src * n + dst`` keys — O(m log m) and
    fully vectorised, which is what makes million-edge inputs cheap.
    """
    keep = src != dst
    keys = src[keep] * np.int64(num_nodes) + dst[keep]
    keys = np.unique(keys)
    return keys // num_nodes, keys % num_nodes


def load_snap_graph(
    path: PathLike,
    *,
    weighting: str = "weighted-cascade",
    constant: float = 0.1,
    rng: SeedLike = None,
) -> DiGraph:
    """Load a SNAP-style edge list as a weighted :class:`DiGraph`.

    Node ids are relabelled to ``0..n-1`` (``n`` = number of distinct
    endpoint ids), self-loops and duplicate edges are dropped, and
    ``weighting`` assigns influence probabilities: ``"weighted-cascade"``
    (``1/indeg``), ``"trivalency"`` (seeded by ``rng``), or
    ``"constant"`` (the ``constant`` value on every edge).
    """
    if weighting not in SNAP_WEIGHTINGS:
        raise ExperimentError(
            f"unknown weighting {weighting!r}; available: {SNAP_WEIGHTINGS}"
        )
    raw_src, raw_dst = read_snap_edges(path)
    if raw_src.size == 0:
        raise ExperimentError(f"edge list {path} holds no edges")
    src, dst, ids = relabel_edges(raw_src, raw_dst)
    src, dst = clean_edges(src, dst, ids.size)
    graph = DiGraph.from_arrays(
        ids.size, src, dst, np.ones(src.size, dtype=np.float64)
    )
    if weighting == "weighted-cascade":
        return weighted_cascade_probabilities(graph)
    if weighting == "trivalency":
        return trivalency_probabilities(graph, rng=rng)
    return constant_probabilities(graph, constant)


def synthesize_power_law_edges(
    num_nodes: int,
    *,
    average_degree: float = 5.0,
    exponent: float = 2.16,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised million-scale power-law edge sampler.

    Out-degrees follow the paper's truncated discrete power law
    (``P(d) ∝ d^-exponent`` on ``[1, n-1]``, rescaled to the requested
    mean); every out-edge picks a uniform random target.  Self-loops and
    duplicate edges are removed, so the realised average degree runs a
    hair under the request.  Deterministic given ``rng``.
    """
    if num_nodes < 2:
        raise ExperimentError(f"need num_nodes >= 2, got {num_nodes}")
    if exponent <= 1.0:
        raise ExperimentError(f"exponent must exceed 1, got {exponent}")
    if average_degree <= 0:
        raise ExperimentError(
            f"average_degree must be positive, got {average_degree}"
        )
    gen = make_rng(rng)
    support = np.arange(1, num_nodes, dtype=np.float64)
    weights = support ** (-exponent)
    weights /= weights.sum()
    degrees = gen.choice(
        support.astype(np.int64), size=num_nodes, p=weights
    )
    mean = degrees.mean()
    if mean > 0:
        degrees = np.maximum(
            1, np.round(degrees * (average_degree / mean))
        ).astype(np.int64)
    degrees = np.minimum(degrees, num_nodes - 1)
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    dst = gen.integers(0, num_nodes, size=src.size, dtype=np.int64)
    return clean_edges(src, dst, num_nodes)


def write_snap_edge_list(
    path: PathLike,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    comment: str = "",
) -> None:
    """Write ``src``/``dst`` pairs in the SNAP format the loader reads."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in comment.splitlines():
            handle.write(f"# {line}\n")
        np.savetxt(handle, np.column_stack((src, dst)), fmt="%d")


def _main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets.snap",
        description=(
            "Synthesize a SNAP-style power-law edge list, or report the "
            "size of an existing one."
        ),
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--synthesize",
        type=int,
        metavar="N",
        help="generate an N-node power-law edge list",
    )
    group.add_argument(
        "--info",
        metavar="PATH",
        help="print 'nodes edges' of an existing edge list and exit",
    )
    parser.add_argument("--out", help="output path (required with --synthesize)")
    parser.add_argument(
        "--average-degree", type=float, default=5.0, metavar="D"
    )
    parser.add_argument("--exponent", type=float, default=2.16)
    parser.add_argument("--seed", type=int, default=2016)
    args = parser.parse_args(argv)
    if args.info is not None:
        src, dst, ids = relabel_edges(*read_snap_edges(args.info))
        src, dst = clean_edges(src, dst, max(ids.size, 1))
        print(f"{ids.size} {src.size}")
        return 0
    if args.out is None:
        parser.error("--synthesize requires --out")
    src, dst = synthesize_power_law_edges(
        args.synthesize,
        average_degree=args.average_degree,
        exponent=args.exponent,
        rng=args.seed,
    )
    write_snap_edge_list(
        args.out,
        src,
        dst,
        comment=(
            f"synthetic power-law digraph: n={args.synthesize} "
            f"exponent={args.exponent} average_degree={args.average_degree} "
            f"seed={args.seed}"
        ),
    )
    print(f"{args.out}: {args.synthesize} nodes, {src.size} edges")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
