"""Profile-aware Hypothesis budgets for the property suite.

Each property pins a base ``max_examples`` tuned for the PR-gate budget.
The nightly CI job exports ``HYPOTHESIS_PROFILE=ci-deep``, which scales
every budget by :data:`DEEP_SCALE` — more examples catch rarer
counter-examples than a PR gate can afford to hunt for.  (A plain
Hypothesis profile cannot do this: an explicit ``@settings`` on a test
overrides the loaded profile, so the scaling has to happen where the
decorator is built.)
"""

import os

from hypothesis import settings

#: Example multiplier of the ``ci-deep`` (nightly) profile.
DEEP_SCALE = 10

_ACTIVE = os.environ.get("HYPOTHESIS_PROFILE", "ci")
_SCALE = DEEP_SCALE if _ACTIVE == "ci-deep" else 1


def ci_settings(max_examples: int, **kwargs) -> settings:
    """``@settings`` with the profile-scaled example budget.

    ``deadline`` defaults to ``None`` (property bodies run whole
    diffusions; wall-clock per example is expected to vary).
    """
    kwargs.setdefault("deadline", None)
    return settings(max_examples=max(int(max_examples) * _SCALE, 1), **kwargs)
