"""General reverse-reachable set framework and the GeneralTIM algorithm (§6).

The key abstraction is :class:`~repro.rrset.base.RRSetGenerator`
(Definition 1 of the paper): a generator samples a possible world lazily and
returns, for a random root ``v``, the set of nodes ``u`` whose singleton
seed set would activate ``v`` in that world.  Under properties (P1)/(P2) —
per-world monotonicity and submodularity of activation — RR-sets satisfy
the activation-equivalence property (Lemmas 4–5) and plugging any generator
into :func:`~repro.rrset.tim.general_tim` yields a
``(1 - 1/e - eps)``-approximation with high probability (Theorem 6).
"""

from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool
from repro.rrset.sweep import (
    DEFAULT_CHUNK_STATE_BYTES,
    SweepConfig,
    make_flags,
    make_values,
)
from repro.rrset.rr_ic import RRICGenerator
from repro.rrset.rr_lt import RRLTGenerator, vanilla_lt_seeds
from repro.rrset.rr_sim import RRSimGenerator
from repro.rrset.rr_sim_plus import RRSimPlusGenerator
from repro.rrset.rr_sim_product import RRSimProductGenerator
from repro.rrset.rr_block import RRBlockGenerator
from repro.rrset.rr_cim import RRCimGenerator
from repro.rrset.tim import (
    TIMOptions,
    TIMResult,
    general_tim,
    greedy_max_coverage,
    greedy_max_coverage_legacy,
)
from repro.rrset.imm import IMMOptions, IMMResult, general_imm
from repro.rrset.engines import SelectionResult, run_seed_selection
from repro.rrset.estimate import rr_estimate_many, rr_estimate_objective
from repro.rrset.repair import RepairReport, repair_pool

__all__ = [
    "RRSetGenerator",
    "RRSetPool",
    "SweepConfig",
    "DEFAULT_CHUNK_STATE_BYTES",
    "make_flags",
    "make_values",
    "RepairReport",
    "repair_pool",
    "RRICGenerator",
    "RRLTGenerator",
    "vanilla_lt_seeds",
    "RRSimGenerator",
    "RRSimPlusGenerator",
    "RRSimProductGenerator",
    "RRBlockGenerator",
    "RRCimGenerator",
    "TIMOptions",
    "TIMResult",
    "general_tim",
    "greedy_max_coverage",
    "greedy_max_coverage_legacy",
    "IMMOptions",
    "IMMResult",
    "general_imm",
    "SelectionResult",
    "run_seed_selection",
    "rr_estimate_objective",
    "rr_estimate_many",
]
