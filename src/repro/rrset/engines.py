"""Seed-selection engine dispatch: GeneralTIM [24] or IMM [23].

Both engines consume the same :class:`~repro.rrset.base.RRSetGenerator`
abstraction and return a result exposing ``seeds``, ``theta``,
``coverage`` and ``estimated_objective``, so callers (the SelfInfMax /
CompInfMax solvers, the experiment harness) can switch between them with a
string knob.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.deadline import Deadline
from repro.rng import SeedLike
from repro.rrset.base import RRSetGenerator
from repro.rrset.imm import IMMOptions, IMMResult, general_imm
from repro.rrset.pool import RRSetPool
from repro.rrset.tim import TIMOptions, TIMResult, general_tim

SelectionResult = Union[TIMResult, IMMResult]

ENGINES = ("tim", "imm")


def imm_options_from_tim(options: TIMOptions) -> IMMOptions:
    """Map TIM knobs onto the equivalent IMM knobs (same eps/ell/caps)."""
    return IMMOptions(
        epsilon=options.epsilon,
        ell=options.ell,
        max_rr_sets=options.max_rr_sets,
        min_rr_sets=options.min_rr_sets,
    )


def run_seed_selection(
    generator: RRSetGenerator,
    k: int,
    *,
    engine: str = "tim",
    options: Optional[TIMOptions] = None,
    imm_options: Optional[IMMOptions] = None,
    rng: SeedLike = None,
    pool: Optional[RRSetPool] = None,
    candidates=None,
    deadline: Optional[Deadline] = None,
    pinned_theta: Optional[int] = None,
) -> SelectionResult:
    """Select ``k`` seeds with the requested engine.

    ``options`` always configures TIM; for ``engine="imm"`` the explicit
    ``imm_options`` win, otherwise IMM inherits epsilon/ell/caps from
    ``options``.  ``pool`` threads a caller-owned RR-set pool through to
    the engine for cross-run reuse (see
    :class:`~repro.api.session.ComICSession`); ``candidates`` restricts
    the pickable seed nodes without restricting sampling.  ``deadline``
    makes sampling cooperative (see :mod:`repro.deadline`): on expiry
    the engine selects best-effort and stamps its result ``degraded``.
    ``pinned_theta`` (IMM only) skips the adaptive sampling phase when
    ``pool`` already satisfies a previously-certified theta for the same
    request — see :func:`~repro.rrset.imm.general_imm`; TIM ignores it
    (its theta is already a closed-form function of the options).
    """
    if options is None:
        options = TIMOptions()
    if engine == "tim":
        return general_tim(
            generator, k, options=options, rng=rng, pool=pool,
            candidates=candidates, deadline=deadline,
        )
    if engine == "imm":
        resolved = imm_options if imm_options is not None else imm_options_from_tim(options)
        return general_imm(
            generator, k, options=resolved, rng=rng, pool=pool,
            candidates=candidates, deadline=deadline,
            pinned_theta=pinned_theta,
        )
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
