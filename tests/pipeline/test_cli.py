"""``python -m repro.pipeline``: run and runs subcommands, error paths."""

import json

import pytest

from repro.learning import save_action_log, save_episodes
from repro.pipeline.__main__ import _main

from .conftest import make_config


@pytest.fixture(scope="module")
def cli_inputs(tmp_path_factory):
    from repro.graph import power_law_digraph, weighted_cascade_probabilities
    from repro.learning import generate_ic_episodes, generate_synthetic_log

    from .conftest import TRUTH

    root = tmp_path_factory.mktemp("cli-inputs")
    graph = weighted_cascade_probabilities(power_law_digraph(80, rng=3))
    edges = root / "edges.txt"
    with open(edges, "w", encoding="utf-8") as fh:
        fh.write("# source target\n")
        for u, v in zip(graph.edge_sources, graph.edge_targets):
            fh.write(f"{u} {v}\n")
    log_path = root / "log.tsv"
    save_action_log(
        generate_synthetic_log([("a", "b", TRUTH)], num_users=800, rng=5),
        log_path,
    )
    episodes_path = root / "episodes.npz"
    save_episodes(
        generate_ic_episodes(graph, 50, seeds_per_episode=2, rng=9),
        episodes_path,
    )
    config_path = root / "config.json"
    config_path.write_text(make_config().to_json(), encoding="utf-8")
    return {
        "edges": str(edges),
        "log": str(log_path),
        "episodes": str(episodes_path),
        "config": str(config_path),
    }


def run_cli(capsys, *argv):
    code = _main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRunCommand:
    def test_run_prints_summary_json(self, cli_inputs, tmp_path, capsys):
        code, out, _err = run_cli(
            capsys, "run",
            "--graph", cli_inputs["edges"],
            "--log", cli_inputs["log"],
            "--episodes", cli_inputs["episodes"],
            "--config", cli_inputs["config"],
            "--workdir", str(tmp_path / "wd"),
            "--truth", "0.3,0.75,0.5,0.65",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["stages_run"] == 3
        assert set(summary["gap"]) == {
            "q_a", "q_a_given_b", "q_b", "q_b_given_a",
        }

    def test_flag_overrides_reach_the_config(
        self, cli_inputs, tmp_path, capsys
    ):
        code, out, _err = run_cli(
            capsys, "run",
            "--graph", cli_inputs["edges"],
            "--log", cli_inputs["log"],
            "--episodes", cli_inputs["episodes"],
            "--config", cli_inputs["config"],
            "--workdir", str(tmp_path / "wd"),
            "--seed", "23",
        )
        assert code == 0
        assert json.loads(out)["config"]["seed"] == 23

    def test_missing_log_file_exits_one(self, cli_inputs, tmp_path, capsys):
        code, _out, err = run_cli(
            capsys, "run",
            "--graph", cli_inputs["edges"],
            "--log", str(tmp_path / "missing.tsv"),
            "--episodes", cli_inputs["episodes"],
            "--workdir", str(tmp_path / "wd"),
        )
        assert code == 1 and "error:" in err

    def test_bad_truth_exits_one(self, cli_inputs, tmp_path, capsys):
        with pytest.raises(SystemExit):
            _main([
                "run",
                "--graph", cli_inputs["edges"],
                "--log", cli_inputs["log"],
                "--workdir", str(tmp_path / "wd"),
                "--truth", "0.3,0.75",  # argparse type error -> exit 2
            ])
        capsys.readouterr()


class TestRunsCommand:
    def test_runs_lists_history(self, cli_inputs, tmp_path, capsys):
        workdir = tmp_path / "wd"
        code, _out, _err = run_cli(
            capsys, "run",
            "--graph", cli_inputs["edges"],
            "--log", cli_inputs["log"],
            "--episodes", cli_inputs["episodes"],
            "--config", cli_inputs["config"],
            "--workdir", str(workdir),
        )
        assert code == 0
        code, out, _err = run_cli(capsys, "runs", "--workdir", str(workdir))
        assert code == 0
        rows = json.loads(out)["runs"]
        assert len(rows) == 1 and rows[0]["status"] == "ok"

    def test_runs_on_fresh_workdir_is_empty(self, tmp_path, capsys):
        code, out, _err = run_cli(
            capsys, "runs", "--workdir", str(tmp_path / "empty")
        )
        assert code == 0 and json.loads(out) == {"runs": []}
