"""Experiment harness regenerating every table and figure of §7.

Each runner returns a :class:`~repro.experiments.harness.TableResult`
that :func:`~repro.experiments.reporting.render_table` turns into the
paper's row/series layout.  Knobs live in
:class:`~repro.experiments.harness.ExperimentScale`; the defaults are
scaled for pure-Python runtimes (see DESIGN.md §4 for the mapping to the
paper's parameters and EXPERIMENTS.md for paper-vs-measured results).
"""

from repro.experiments.harness import ExperimentScale, TableResult, timed
from repro.experiments.reporting import render_series, render_table, save_results
from repro.experiments.extensions import (
    extension_engine_comparison,
    extension_gap_sensitivity,
    extension_heuristic_comparison,
)
from repro.experiments.pipeline_experiment import pipeline_fitted_vs_true
from repro.experiments.tables import (
    table1_dataset_stats,
    table2_improvement,
    table3_improvement_random,
    table4_improvement_top,
    table8_sandwich_ratio,
    tables5to7_learned_gaps,
)
from repro.experiments.figures import (
    figure4_epsilon_effect,
    figure5_selfinfmax_spread,
    figure6_compinfmax_boost,
    figure7a_runtime,
    figure7b_scalability,
    figure8_sa_stress,
)

__all__ = [
    "ExperimentScale",
    "TableResult",
    "timed",
    "render_table",
    "render_series",
    "save_results",
    "extension_engine_comparison",
    "extension_heuristic_comparison",
    "extension_gap_sensitivity",
    "pipeline_fitted_vs_true",
    "table1_dataset_stats",
    "table2_improvement",
    "table3_improvement_random",
    "table4_improvement_top",
    "tables5to7_learned_gaps",
    "table8_sandwich_ratio",
    "figure4_epsilon_effect",
    "figure5_selfinfmax_spread",
    "figure6_compinfmax_boost",
    "figure7a_runtime",
    "figure7b_scalability",
    "figure8_sa_stress",
]
