"""Deadline plumbing and best-effort degradation in TIM/IMM."""

import time

import pytest

from repro.deadline import Deadline, current_deadline, deadline_scope
from repro.errors import DeadlineExceeded
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP
from repro.rrset import (
    IMMOptions,
    RRSimGenerator,
    TIMOptions,
    general_imm,
    general_tim,
)
from repro.rrset.tim import cooperative_top_up
from repro.rrset.pool import RRSetPool

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)

#: a budget that is already gone by the first cooperative check.
INSTANT = 1e-6


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(250, rng=9))


@pytest.fixture(scope="module")
def generator(graph):
    return RRSimGenerator(graph, GAPS, [0, 1])


class TestDeadline:
    def test_expiry_and_remaining(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        past = Deadline(INSTANT)
        time.sleep(0.01)
        assert past.expired()
        assert past.remaining() < 0

    def test_check_raises_when_expired(self):
        past = Deadline(INSTANT)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded, match="sampling"):
            past.check("sampling")
        Deadline(60.0).check("sampling")  # no raise

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0.0)

    def test_scope_installs_nests_and_suspends(self):
        assert current_deadline() is None
        outer = Deadline(60.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(None):  # explicit suspension
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None


class TestCooperativeTopUp:
    def test_without_deadline_is_single_batch(self, generator):
        pool = RRSetPool(generator.graph.num_nodes)
        assert cooperative_top_up(generator, 50, pool, 3) is True
        assert len(pool) == 50

    def test_expired_deadline_still_samples_the_floor(self, generator):
        pool = RRSetPool(generator.graph.num_nodes)
        deadline = Deadline(INSTANT)
        time.sleep(0.01)
        completed = cooperative_top_up(
            generator, 1000, pool, 3, deadline=deadline, floor=40
        )
        assert completed is False
        assert len(pool) == 40  # the floor, nothing more

    def test_generous_deadline_reaches_target(self, generator):
        pool = RRSetPool(generator.graph.num_nodes)
        completed = cooperative_top_up(
            generator, 300, pool, 3, deadline=Deadline(60.0), floor=40
        )
        assert completed is True
        assert len(pool) == 300


class TestEngineDegradation:
    def test_tim_degrades_to_best_effort(self, generator):
        deadline = Deadline(INSTANT)
        time.sleep(0.01)
        options = TIMOptions(min_rr_sets=60, max_rr_sets=5000)
        result = general_tim(
            generator, 5, options=options, rng=0, deadline=deadline
        )
        assert result.degraded is True
        assert "expired" in result.degraded_reason
        assert result.theta == 60  # selected over exactly the floor
        assert len(result.seeds) == 5  # still a full answer

    def test_tim_within_budget_is_not_degraded(self, generator):
        result = general_tim(
            generator,
            5,
            options=TIMOptions(max_rr_sets=500),
            rng=0,
            deadline=Deadline(600.0),
        )
        assert result.degraded is False
        assert result.degraded_reason is None

    def test_tim_picks_up_ambient_deadline(self, generator):
        deadline = Deadline(INSTANT)
        time.sleep(0.01)
        with deadline_scope(deadline):
            result = general_tim(
                generator, 5, options=TIMOptions(min_rr_sets=60), rng=0
            )
        assert result.degraded is True

    def test_imm_degrades_to_best_effort(self, generator):
        deadline = Deadline(INSTANT)
        time.sleep(0.01)
        options = IMMOptions(min_rr_sets=60, max_rr_sets=5000)
        result = general_imm(
            generator, 5, options=options, rng=0, deadline=deadline
        )
        assert result.degraded is True
        assert "expired" in result.degraded_reason
        assert result.theta >= 60
        assert len(result.seeds) == 5

    def test_imm_within_budget_is_not_degraded(self, generator):
        result = general_imm(
            generator,
            5,
            options=IMMOptions(max_rr_sets=500),
            rng=0,
            deadline=Deadline(600.0),
        )
        assert result.degraded is False
        assert result.degraded_reason is None

    def test_deadline_runs_are_deterministic(self, generator):
        """Chunked cooperative sampling is still a pure function of the
        seed: two generously-budgeted runs agree exactly."""
        options = TIMOptions(theta_override=400)

        def run():
            return general_tim(
                generator, 5, options=options, rng=7,
                deadline=Deadline(600.0),
            )

        first, second = run(), run()
        assert first.seeds == second.seeds
        assert first.coverage == second.coverage
