"""Unit tests for edge-list I/O."""

import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, load_edge_list, save_edge_list


def sample() -> DiGraph:
    return DiGraph.from_edges(4, [(0, 1, 0.5), (1, 2, 0.125), (3, 0, 1.0)])


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "g.txt"
        g = sample()
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_round_trip_preserves_isolated_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        g = DiGraph.from_edges(10, [(0, 1, 0.5)])
        save_edge_list(g, path)
        assert load_edge_list(path).num_nodes == 10

    def test_comment_written_and_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(sample(), path, comment="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert load_edge_list(path) == sample()

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "g.txt"
        g = DiGraph.from_edges(0, [])
        save_edge_list(g, path)
        assert load_edge_list(path).num_nodes == 0


class TestLoadErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# only comments\n")
        with pytest.raises(GraphError, match="no header"):
            load_edge_list(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3\n")
        with pytest.raises(GraphError, match="header"):
            load_edge_list(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 2\n0 1 0.5\n")
        with pytest.raises(GraphError, match="declared 2 edges"):
            load_edge_list(path)

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 1\n0 1 0.5 9 9\n")
        with pytest.raises(GraphError, match="malformed"):
            load_edge_list(path)

    def test_probability_defaults_to_one(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("2 1\n0 1\n")
        g = load_edge_list(path)
        assert g.edge_probability(0, 1) == pytest.approx(1.0)
