"""Runners regenerating the paper's Tables 1–8 (§7).

Tables 2–4 share one engine (:func:`_improvement_table`) parameterised by
how the *opposite* seed set is chosen — mid-tier VanillaIC ranks (Table 2),
uniform random (Table 3), or top VanillaIC ranks (Table 4).  Reported cells
are percentage improvements of GeneralTIM(+SA) over the VanillaIC and
Copying baselines, exactly the paper's layout.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms import copying_seeds, random_seeds, vanilla_ic_seeds
from repro.api import (
    ComICSession,
    CompInfMaxQuery,
    EngineConfig,
    SelfInfMaxQuery,
)
from repro.datasets import load_dataset, PAPER_DATASETS
from repro.experiments.harness import ExperimentScale, TableResult, percent_improvement
from repro.graph.digraph import DiGraph
from repro.graph.stats import graph_stats
from repro.learning import generate_synthetic_log, learn_gap_pair
from repro.models.gaps import GAP
from repro.models.spread import estimate_boost, estimate_spread
from repro.rng import derive_seed, stable_hash

#: SelfInfMax GAP settings of §7.1: q_{A|B} = q_{B|A} = 0.75, q_{B|∅} = 0.5,
#: q_{A|∅} in {0.1, 0.3, 0.5} (strong / moderate / low complementarity).
SIM_SETTINGS: dict[float, GAP] = {
    q_a: GAP(q_a=q_a, q_a_given_b=0.75, q_b=0.5, q_b_given_a=0.75)
    for q_a in (0.1, 0.3, 0.5)
}

#: CompInfMax GAP settings of §7.1: q_{A|∅} = 0.1, q_{A|B} = q_{B|A} = 0.9,
#: q_{B|∅} in {0.1, 0.5, 0.8}.
CIM_SETTINGS: dict[float, GAP] = {
    q_b: GAP(q_a=0.1, q_a_given_b=0.9, q_b=q_b, q_b_given_a=0.9)
    for q_b in (0.1, 0.5, 0.8)
}

#: Item pairs with the paper's learned GAPs (Tables 5–7) used as ground
#: truth for the synthetic action logs.
PAPER_LEARNED_PAIRS: dict[str, list[tuple[str, str, GAP]]] = {
    "flixster": [
        ("Monster Inc.", "Shrek", GAP(0.88, 0.92, 0.92, 0.96)),
        ("Gone in 60 Seconds", "Armageddon", GAP(0.63, 0.77, 0.67, 0.82)),
        ("HP: Prisoner of Azkaban", "What a Girl Wants", GAP(0.85, 0.84, 0.66, 0.67)),
        ("Shrek", "The Fast and The Furious", GAP(0.92, 0.94, 0.80, 0.79)),
    ],
    "douban-book": [
        ("Unbearable Lightness of Being", "Norwegian Wood", GAP(0.75, 0.85, 0.92, 0.97)),
        ("HP: Philosopher's Stone", "HP: Half-Blood Prince", GAP(0.99, 1.0, 0.97, 0.98)),
        ("Ming Dynasty III", "Ming Dynasty VI", GAP(0.94, 1.0, 0.88, 0.98)),
        ("Fortress Besieged", "Love Letter", GAP(0.89, 0.91, 0.82, 0.83)),
    ],
    "douban-movie": [
        ("Up", "3 Idiots", GAP(0.92, 0.94, 0.92, 0.93)),
        ("Pulp Fiction", "Leon", GAP(0.81, 0.83, 0.95, 0.98)),
        ("The Silence of the Lambs", "Inception", GAP(0.90, 0.86, 0.92, 0.98)),
        ("Fight Club", "Se7en", GAP(0.84, 0.89, 0.89, 0.95)),
    ],
}


def table1_dataset_stats(scale: ExperimentScale = ExperimentScale()) -> TableResult:
    """Table 1: statistics of the (scaled synthetic) graph data."""
    rows = []
    for name in scale.datasets:
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        stats = graph_stats(graph).as_row()
        spec = PAPER_DATASETS[name]
        rows.append(
            {
                "dataset": name,
                **stats,
                "paper_nodes": spec.paper_nodes,
                "paper_avg_out_degree": spec.avg_out_degree,
            }
        )
    return TableResult(
        title="Table 1: statistics of graph data (scaled synthetic stand-ins)",
        columns=[
            "dataset", "nodes", "edges", "avg_out_degree", "max_out_degree",
            "paper_nodes", "paper_avg_out_degree",
        ],
        rows=rows,
        notes=f"scale factor {scale.scale} of the paper's node counts",
    )


OppositeSelector = Callable[[DiGraph, ExperimentScale, int], list[int]]


def _mid_tier_opposite(graph: DiGraph, scale: ExperimentScale, seed: int) -> list[int]:
    """Paper Table 2: VanillaIC ranks ``101..200`` (scaled)."""
    needed = scale.mid_rank_start + scale.opposite_size
    ranked = vanilla_ic_seeds(graph, needed, options=scale.tim_options, rng=seed)
    return ranked[scale.mid_rank_start:needed]


def _random_opposite(graph: DiGraph, scale: ExperimentScale, seed: int) -> list[int]:
    """Paper Table 3: uniform random opposite seeds."""
    return random_seeds(graph, scale.opposite_size, rng=seed)


def _top_opposite(graph: DiGraph, scale: ExperimentScale, seed: int) -> list[int]:
    """Paper Table 4: VanillaIC top ranks."""
    return vanilla_ic_seeds(
        graph, scale.opposite_size, options=scale.tim_options, rng=seed
    )


def _improvement_table(
    scale: ExperimentScale, title: str, opposite: OppositeSelector, notes: str
) -> TableResult:
    rows: list[dict] = []
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base_seed = derive_seed(scale.seed, d_index) or 0
        # One session serves every GAP setting of this dataset.  Settings
        # use distinct GAPs, so their pools never overlap — clear after
        # each query to keep peak memory at the legacy single-run level.
        session = ComICSession(
            graph, config=EngineConfig.from_tim_options(scale.tim_options)
        )

        # --- SelfInfMax block -----------------------------------------
        seeds_b = opposite(graph, scale, derive_seed(base_seed, 1))
        for q_a, gaps in SIM_SETTINGS.items():
            rng = derive_seed(base_seed, 2, int(q_a * 100))
            ours = session.run(
                SelfInfMaxQuery(
                    seeds_b=tuple(seeds_b), k=scale.k, gaps=gaps,
                    evaluation_runs=scale.mc_runs,
                ),
                rng=rng,
            ).seeds
            session.clear_pools()
            vanilla = vanilla_ic_seeds(
                graph, scale.k, options=scale.tim_options, rng=derive_seed(rng, 3)
            )
            copying = copying_seeds(graph, scale.k, seeds_b, rng=derive_seed(rng, 4))
            eval_rng = derive_seed(rng, 5)

            def sigma(seeds):
                return estimate_spread(
                    graph, gaps, seeds, seeds_b, runs=scale.mc_runs, rng=eval_rng
                ).mean

            ours_value = sigma(ours)
            vanilla_value = sigma(vanilla)
            copying_value = sigma(copying)
            rows.append(
                {
                    "problem": "SelfInfMax",
                    "dataset": name,
                    "q": q_a,
                    "ours": round(ours_value, 1),
                    "vanilla_ic": round(vanilla_value, 1),
                    "copying": round(copying_value, 1),
                    "impr_vs_vanilla_pct": round(
                        percent_improvement(ours_value, vanilla_value), 2
                    ),
                    "impr_vs_copying_pct": round(
                        percent_improvement(ours_value, copying_value), 2
                    ),
                }
            )

        # --- CompInfMax block -----------------------------------------
        seeds_a = opposite(graph, scale, derive_seed(base_seed, 6))
        for q_b, gaps in CIM_SETTINGS.items():
            rng = derive_seed(base_seed, 7, int(q_b * 100))
            ours = session.run(
                CompInfMaxQuery(
                    seeds_a=tuple(seeds_a), k=scale.k, gaps=gaps,
                    evaluation_runs=scale.mc_runs,
                ),
                rng=rng,
            ).seeds
            session.clear_pools()
            vanilla = vanilla_ic_seeds(
                graph, scale.k, options=scale.tim_options, rng=derive_seed(rng, 3)
            )
            copying = copying_seeds(graph, scale.k, seeds_a, rng=derive_seed(rng, 4))
            eval_rng = derive_seed(rng, 5)

            def boost(seeds):
                return estimate_boost(
                    graph, gaps, seeds_a, seeds, runs=scale.mc_runs, rng=eval_rng
                ).mean

            ours_value = boost(ours)
            vanilla_value = boost(vanilla)
            copying_value = boost(copying)
            rows.append(
                {
                    "problem": "CompInfMax",
                    "dataset": name,
                    "q": q_b,
                    "ours": round(ours_value, 1),
                    "vanilla_ic": round(vanilla_value, 1),
                    "copying": round(copying_value, 1),
                    "impr_vs_vanilla_pct": round(
                        percent_improvement(ours_value, vanilla_value), 2
                    ),
                    "impr_vs_copying_pct": round(
                        percent_improvement(ours_value, copying_value), 2
                    ),
                }
            )
    return TableResult(
        title=title,
        columns=[
            "problem", "dataset", "q", "ours", "vanilla_ic", "copying",
            "impr_vs_vanilla_pct", "impr_vs_copying_pct",
        ],
        rows=rows,
        notes=notes,
    )


def table2_improvement(scale: ExperimentScale = ExperimentScale()) -> TableResult:
    """Table 2: improvement over baselines, mid-tier opposite seeds."""
    return _improvement_table(
        scale,
        "Table 2: % improvement of GeneralTIM over VanillaIC & Copying "
        "(opposite seeds = mid-tier VanillaIC ranks)",
        _mid_tier_opposite,
        f"opposite = VanillaIC ranks [{scale.mid_rank_start}, "
        f"{scale.mid_rank_start + scale.opposite_size}) — the paper's 101st-200th, scaled",
    )


def table3_improvement_random(scale: ExperimentScale = ExperimentScale()) -> TableResult:
    """Table 3: improvement over baselines, random opposite seeds."""
    return _improvement_table(
        scale,
        "Table 3: % improvement of GeneralTIM over VanillaIC & Copying "
        "(opposite seeds = random)",
        _random_opposite,
        "opposite seed set drawn uniformly at random",
    )


def table4_improvement_top(scale: ExperimentScale = ExperimentScale()) -> TableResult:
    """Table 4: improvement over baselines, top VanillaIC opposite seeds."""
    return _improvement_table(
        scale,
        "Table 4: % improvement of GeneralTIM over VanillaIC & Copying "
        "(opposite seeds = top VanillaIC ranks)",
        _top_opposite,
        "opposite = most influential nodes; the paper observes near-zero "
        "(occasionally negative) improvements here",
    )


def tables5to7_learned_gaps(
    scale: ExperimentScale = ExperimentScale(),
    *,
    num_users: int = 12_000,
) -> TableResult:
    """Tables 5–7: GAPs learned from (synthetic) action logs with 95% CIs.

    Ground truths are the paper's published values; a row "recovers" when
    every learned interval contains its ground truth.
    """
    rows = []
    for d_index, dataset in enumerate(PAPER_LEARNED_PAIRS):
        pairs = PAPER_LEARNED_PAIRS[dataset]
        log = generate_synthetic_log(
            pairs, num_users=num_users, rng=derive_seed(scale.seed, 40, d_index)
        )
        for item_a, item_b, truth in pairs:
            learned = learn_gap_pair(log, item_a, item_b)
            row = {"dataset": dataset, "item_a": item_a, "item_b": item_b}
            for attr in ("q_a", "q_a_given_b", "q_b", "q_b_given_a"):
                row[attr] = (
                    f"{getattr(learned.gap, attr):.2f}"
                    f"±{learned.halfwidths[attr]:.2f}"
                )
                row[f"true_{attr}"] = getattr(truth, attr)
            row["recovered"] = learned.contains_truth(truth, slack=2.0)
            rows.append(row)
    return TableResult(
        title="Tables 5-7: GAPs learned from action logs (synthetic stand-in, "
        "95% confidence intervals)",
        columns=[
            "dataset", "item_a", "item_b",
            "q_a", "true_q_a", "q_a_given_b", "true_q_a_given_b",
            "q_b", "true_q_b", "q_b_given_a", "true_q_b_given_a", "recovered",
        ],
        rows=rows,
        notes="ground truths are the paper's learned values; logs are "
        "generated from them and re-learned",
    )


#: Table 8 stress settings (§7.3): q_{A|∅}=0.3, q_{A|B}=0.8 throughout.
SIM_STRESS: dict[str, GAP] = {
    "SIM_0.1": GAP(0.3, 0.8, 0.1, 1.0),
    "SIM_0.5": GAP(0.3, 0.8, 0.5, 1.0),
    "SIM_0.9": GAP(0.3, 0.8, 0.9, 1.0),
}
CIM_STRESS: dict[str, GAP] = {
    "CIM_0.1": GAP(0.3, 0.8, 0.1, 0.1),
    "CIM_0.5": GAP(0.3, 0.8, 0.1, 0.5),
    "CIM_0.9": GAP(0.3, 0.8, 0.1, 0.9),
}
#: "Learned" rows use a close-GAP pair as in the data-derived settings.
SIM_LEARNED = GAP(0.88, 0.92, 0.92, 0.96)
CIM_LEARNED = GAP(0.88, 0.92, 0.92, 0.96)


def table8_sandwich_ratio(scale: ExperimentScale = ExperimentScale()) -> TableResult:
    """Table 8: the computable SA factor ``sigma(S_nu) / nu(S_nu)``.

    For each setting, ``S_nu`` maximises the submodular upper bound; the
    ratio of its value under the true GAPs to its value under the bound
    GAPs lower-bounds the data-dependent approximation factor (Thm. 9).
    """
    rows = []
    for d_index, name in enumerate(scale.datasets):
        graph = load_dataset(name, scale=scale.scale, rng=scale.seed)
        base_seed = derive_seed(scale.seed, 80, d_index) or 0
        seeds_b = _mid_tier_opposite(graph, scale, derive_seed(base_seed, 1))
        # Labels use distinct GAPs (no pool overlap): clear per selection
        # below to keep peak memory at the legacy single-run level.
        session = ComICSession(
            graph, config=EngineConfig.from_tim_options(scale.tim_options)
        )
        row: dict = {"dataset": name}

        sim_cases = {"SIM_learn": SIM_LEARNED, **SIM_STRESS}
        for label, gaps in sim_cases.items():
            nu_gaps = gaps.with_b_indifferent_high()
            tim = session.select_seeds(
                "rr-sim+", nu_gaps, seeds_b, scale.k,
                rng=derive_seed(base_seed, 2, stable_hash(label)),
            )
            session.clear_pools()
            eval_rng = derive_seed(base_seed, 3, stable_hash(label))
            sigma_val = estimate_spread(
                graph, gaps, tim.seeds, seeds_b, runs=scale.mc_runs, rng=eval_rng
            ).mean
            nu_val = estimate_spread(
                graph, nu_gaps, tim.seeds, seeds_b, runs=scale.mc_runs, rng=eval_rng
            ).mean
            row[label] = round(min(sigma_val / nu_val, 1.0), 3) if nu_val > 0 else 1.0

        seeds_a = seeds_b  # the paper fixes the opposite set the same way
        cim_cases = {"CIM_learn": CIM_LEARNED, **CIM_STRESS}
        for label, gaps in cim_cases.items():
            nu_gaps = gaps.with_q_b_given_a_one()
            tim = session.select_seeds(
                "rr-cim", nu_gaps, seeds_a, scale.k,
                rng=derive_seed(base_seed, 4, stable_hash(label)),
            )
            session.clear_pools()
            eval_rng = derive_seed(base_seed, 5, stable_hash(label))
            sigma_val = estimate_boost(
                graph, gaps, seeds_a, tim.seeds, runs=scale.mc_runs, rng=eval_rng
            ).mean
            nu_val = estimate_boost(
                graph, nu_gaps, seeds_a, tim.seeds, runs=scale.mc_runs, rng=eval_rng
            ).mean
            row[label] = round(min(sigma_val / nu_val, 1.0), 3) if nu_val > 0 else 1.0
        rows.append(row)
    return TableResult(
        title="Table 8: Sandwich Approximation ratio sigma(S_nu)/nu(S_nu)",
        columns=[
            "dataset",
            "SIM_learn", "SIM_0.1", "SIM_0.5", "SIM_0.9",
            "CIM_learn", "CIM_0.1", "CIM_0.5", "CIM_0.9",
        ],
        rows=rows,
        notes="SIM stress: q_B|A=1, q_B|0 varies; CIM stress: q_B|0=0.1, "
        "q_B|A varies; learned rows use close GAPs",
    )
