"""The Com-IC query daemon: sessions behind a stdlib HTTP/1.1 front.

:class:`ComICServer` keeps one :class:`~repro.api.session.ComICSession`
per registered graph alive across requests, so everything the session
layer already amortises — cached RR-set pools, persistent worker
processes, store warm starts, pinned thetas — is amortised across
*clients* too.  The transport is deliberately boring:
``http.server.ThreadingHTTPServer`` (one daemon thread per connection)
speaking JSON, no dependencies beyond the standard library.

Four behaviours turn the session into a service:

* **Serialised sessions** — ``ComICSession`` is not thread-safe, so each
  graph's session runs under its own lock.  Different graphs answer
  concurrently; requests for one graph queue.
* **Single-flight coalescing** — K identical queries arriving together
  cost one execution: the first request in becomes the *leader* and
  computes, the rest park on an event and receive the leader's envelope
  verbatim (``ServerStats.coalesced`` counts the followers).  Identity is
  the canonical JSON of (graph, query payload, config overrides, rng
  pin); requests with no rng pin are never coalesced — each is entitled
  to advance the session stream.
* **Deadlines end-to-end** — a per-request ``deadline_s`` merges into the
  effective :class:`~repro.api.config.EngineConfig`, riding the PR 6
  cooperative-budget machinery, so a slow cold query degrades instead of
  holding the graph lock indefinitely.
* **Graceful drain** — :meth:`ComICServer.close` first flips the server
  into a draining state (new queries and deltas are refused with
  **503**), then waits for every in-flight execution — leaders *and*
  the coalesced followers parked on their flight events — to complete
  or hit its deadline before any session is closed.  A stuck request
  only delays the drain up to ``drain_timeout_s``
  (``ServerStats.drain_timeouts`` counts overruns); session closes are
  still serialised under each graph's lock either way.

The HTTP layer is a thin shell over :meth:`ComICServer.handle_query`,
which tests drive directly (no sockets needed).

Endpoints (see ``docs/service.md`` for the operator guide)::

    GET  /health            liveness + registered graph names
    GET  /stats             server counters + per-graph session stats
    GET  /graphs            graph name -> {nodes, edges, fingerprint}
    GET  /catalog[/<name>]  pool-catalog rows (CatalogedPoolStore only)
    GET  /pipeline/<name>/runs  debug-DB run rows of the graph's pipelines
    POST /query/<name>      {"query": {...}, "config"?, "rng"?, "deadline_s"?}
    POST /graph/<name>/delta  {"delta": {...GraphDelta.to_dict...}, "rng"?}
    POST /pipeline/<name>   {"config": {...}, "log_path": ..., "episodes_path"?,
                             "truth"?} — run a pipeline under the graph lock

The pipeline endpoints need a ``pipeline_dir`` (constructor knob): each
graph's runs live in ``pipeline_dir/<name>/`` (stage cache + debug DB).
They run against the *registered graph's structure*; the action log and
episode corpus are read server-side from the request's paths.

POST bodies are capped at ``max_body_bytes`` (constructor knob, default
8 MiB); oversized requests are refused with **413** before the body is
read.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional

from pathlib import Path

from repro.api import ComICSession, EngineConfig, InfluenceResult, registry
from repro.errors import (
    ActionLogError,
    DeltaError,
    EstimationError,
    GapError,
    PipelineError,
    QueryError,
    ReproError,
    SeedSetError,
)
from repro.graph.delta import GraphDelta
from repro.graph.digraph import DiGraph
from repro.learning.log_io import load_action_log, load_episodes
from repro.models.gaps import GAP
from repro.pipeline import (
    DEBUG_DB_FILE,
    PipelineConfig,
    PipelineDebugDB,
    run_pipeline,
)
from repro.service.catalog import CatalogedPoolStore

__all__ = ["ComICServer", "ServerStats", "ServiceError"]


class ServiceError(ReproError):
    """A request the service rejects, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServerStats:
    """Service-level counters (sessions keep their own ``SessionStats``)."""

    #: HTTP requests accepted (all endpoints, all statuses).
    requests: int = 0
    #: queries executed by a session (coalesced followers excluded).
    queries: int = 0
    #: requests answered with a 4xx/5xx envelope.
    errors: int = 0
    #: followers served a leader's result without executing.
    coalesced: int = 0
    #: single-flight leaderships taken (== cold executions of coalescible
    #: requests; ``coalesced / max(flights, 1)`` is the fan-in ratio).
    flights: int = 0
    #: graph deltas applied (POST /graph/<name>/delta successes).
    deltas: int = 0
    #: pipelines executed (POST /pipeline/<name> successes).
    pipelines: int = 0
    #: queries/deltas refused with 503 because the server was draining.
    draining_rejections: int = 0
    #: ``close()`` drain waits that timed out with requests in flight.
    drain_timeouts: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class _Flight:
    """One in-flight coalescible execution: leader computes, rest wait."""

    __slots__ = ("event", "payload", "status")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[dict[str, Any]] = None
        self.status: int = 500


@dataclass
class _GraphService:
    """One registered graph: its session and the lock serialising it."""

    name: str
    session: ComICSession
    lock: threading.Lock = field(default_factory=threading.Lock)


class ComICServer:
    """A multi-graph Com-IC query service.

    Construct, :meth:`register_graph` one or more graphs, then either
    :meth:`start` the HTTP front (returns the bound address) or call
    :meth:`handle_query` directly (tests, embedding).  ``close`` drains
    in-flight work gracefully, then shuts down the HTTP server and every
    session (worker pools included).
    """

    #: default cap on POST request bodies (8 MiB fits any realistic
    #: query envelope; deltas near this size should ship as several
    #: batches anyway).
    DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

    #: default bound on how long :meth:`close` waits for in-flight
    #: requests to finish.  Well above any sane per-request deadline, so
    #: a drain normally ends because the work did — the timeout only
    #: caps a pathologically stuck request.
    DEFAULT_DRAIN_TIMEOUT_S = 30.0

    def __init__(
        self,
        *,
        max_body_bytes: Optional[int] = None,
        pipeline_dir: Optional[Any] = None,
    ) -> None:
        if max_body_bytes is None:
            max_body_bytes = self.DEFAULT_MAX_BODY_BYTES
        if max_body_bytes <= 0:
            raise QueryError(
                f"max_body_bytes must be positive, got {max_body_bytes}"
            )
        self.max_body_bytes = int(max_body_bytes)
        #: where per-graph pipeline runs live (stage cache + debug DB);
        #: None disables the /pipeline endpoints with a 400.
        self.pipeline_dir = (
            Path(pipeline_dir) if pipeline_dir is not None else None
        )
        self._graphs: dict[str, _GraphService] = {}
        self._graphs_lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        # Drain bookkeeping: every handle_query/handle_delta holds one
        # unit of _inflight between _begin_request and _end_request;
        # close() flips _closing and waits on the condition until the
        # count reaches zero.
        self._drain = threading.Condition()
        self._inflight = 0
        self._closing = False
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.stats = ServerStats()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: DiGraph,
        gaps: Optional[GAP] = None,
        *,
        config: Optional[EngineConfig] = None,
        store: Any = None,
        multi_item_gaps: Any = None,
        rng: Any = None,
    ) -> ComICSession:
        """Create and own a session for ``graph`` under ``name``.

        Keyword arguments pass through to
        :class:`~repro.api.session.ComICSession` unchanged.  Returns the
        session (callers may pre-warm pools before :meth:`start`).
        """
        if not name or "/" in name:
            raise QueryError(
                f"graph name must be non-empty and slash-free, got {name!r}"
            )
        with self._graphs_lock:
            if name in self._graphs:
                raise QueryError(f"graph {name!r} is already registered")
            session = ComICSession(
                graph,
                gaps,
                multi_item_gaps=multi_item_gaps,
                config=config,
                rng=rng,
                store=store,
            )
            self._graphs[name] = _GraphService(name=name, session=session)
            return session

    def graph_names(self) -> list[str]:
        """Registered graph names, sorted."""
        with self._graphs_lock:
            return sorted(self._graphs)

    def _service(self, name: str) -> _GraphService:
        with self._graphs_lock:
            service = self._graphs.get(name)
        if service is None:
            raise ServiceError(
                404,
                f"unknown graph {name!r}; registered: {self.graph_names()}",
            )
        return service

    def session(self, name: str) -> ComICSession:
        """The session owned for a registered graph (testing/embedding)."""
        return self._service(name).session

    # ------------------------------------------------------------------
    # Drain accounting
    # ------------------------------------------------------------------
    def _begin_request(self) -> None:
        """Admit one query/delta, or refuse it if the server is draining."""
        with self._drain:
            if self._closing:
                self.stats.draining_rejections += 1
                raise ServiceError(
                    503, "server is draining; no new work is accepted"
                )
            self._inflight += 1

    def _end_request(self) -> None:
        with self._drain:
            self._inflight -= 1
            if self._inflight == 0:
                self._drain.notify_all()

    def _wait_drained(self, timeout: Optional[float]) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        with self._drain:
            while self._inflight:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._drain.wait(remaining)
            return True

    @property
    def draining(self) -> bool:
        """True once :meth:`close` has begun refusing new work."""
        with self._drain:
            return self._closing

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def handle_query(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Answer one POST /query payload; returns (status, body).

        The body on success is the
        :meth:`~repro.api.results.InfluenceResult.to_dict` envelope
        (objective, seeds, objective estimate, full diagnostics including
        ``diagnostics.resilience``); on failure ``{"error": ...}``.
        A server mid-:meth:`close` answers **503** without executing.
        """
        try:
            self._begin_request()
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}
        try:
            return self._handle_query_admitted(graph_name, payload)
        finally:
            self._end_request()

    def _handle_query_admitted(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        try:
            service = self._service(graph_name)
            query, config, rng, coalescible = self._parse_request(
                service, payload
            )
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}

        flight_key = (
            self._flight_key(graph_name, payload) if coalescible else None
        )
        if flight_key is not None:
            status, body = self._run_single_flight(
                flight_key, service, query, config, rng
            )
        else:
            status, body = self._execute(service, query, config, rng)
        if status != 200:
            self.stats.errors += 1
        return status, body

    def _parse_request(
        self, service: _GraphService, payload: Mapping[str, Any]
    ) -> tuple[Any, Optional[EngineConfig], Optional[int], bool]:
        """Validate the request envelope into (query, config, rng, coalescible)."""
        if not isinstance(payload, Mapping):
            raise ServiceError(400, "request body must be a JSON object")
        query_payload = payload.get("query")
        if not isinstance(query_payload, Mapping):
            raise ServiceError(
                400, "request needs a 'query' object (query.to_dict payload)"
            )
        unknown = set(payload) - {"query", "config", "rng", "deadline_s"}
        if unknown:
            raise ServiceError(
                400, f"unknown request fields: {sorted(unknown)}"
            )
        try:
            query = registry.query_from_dict(query_payload)
        except (QueryError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad query: {exc}") from exc

        config: Optional[EngineConfig] = None
        overrides = payload.get("config")
        if overrides is not None:
            if not isinstance(overrides, Mapping):
                raise ServiceError(
                    400, "'config' must be an object of EngineConfig fields"
                )
            base = service.session.config.to_dict()
            base.update(overrides)
            try:
                config = EngineConfig.from_dict(base)
            except QueryError as exc:
                raise ServiceError(400, f"bad config: {exc}") from exc

        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or isinstance(
                deadline_s, bool
            ):
                raise ServiceError(400, "'deadline_s' must be a number")
            effective = config if config is not None else service.session.config
            try:
                config = dataclasses.replace(
                    effective, deadline_s=float(deadline_s)
                )
            except QueryError as exc:
                raise ServiceError(400, f"bad deadline_s: {exc}") from exc

        rng = payload.get("rng")
        if rng is not None and (
            not isinstance(rng, int) or isinstance(rng, bool)
        ):
            raise ServiceError(
                400, "'rng' must be an integer seed (omit for session stream)"
            )
        # Without a pinned rng each request must advance the session's
        # stream independently — coalescing would silently hand two
        # clients one draw.  With a pin, identical requests are
        # deterministic replicas: safe (and profitable) to coalesce.
        return query, config, rng, rng is not None

    @staticmethod
    def _flight_key(graph_name: str, payload: Mapping[str, Any]) -> str:
        return json.dumps(
            {"graph": graph_name, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    def _run_single_flight(
        self,
        key: str,
        service: _GraphService,
        query: Any,
        config: Optional[EngineConfig],
        rng: Optional[int],
    ) -> tuple[int, dict[str, Any]]:
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self.stats.flights += 1
            else:
                leader = False
        if not leader:
            flight.event.wait()
            self.stats.coalesced += 1
            assert flight.payload is not None
            return flight.status, flight.payload
        try:
            status, body = self._execute(service, query, config, rng)
            flight.status, flight.payload = status, body
            return status, body
        except BaseException:
            # Never strand followers: an unexpected leader crash turns
            # into a 500 envelope for everyone parked on the event.
            flight.status = 500
            flight.payload = {"error": "internal error in coalesced leader"}
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.event.set()

    def _execute(
        self,
        service: _GraphService,
        query: Any,
        config: Optional[EngineConfig],
        rng: Optional[int],
    ) -> tuple[int, dict[str, Any]]:
        try:
            with service.lock:
                result: InfluenceResult = service.session.run(
                    query, config=config, rng=rng
                )
            self.stats.queries += 1
            return 200, result.to_dict()
        except (QueryError, SeedSetError, GapError) as exc:
            # malformed *request* semantics (bad knobs, k > n, invalid
            # GAPs): the client's fault, not the service's
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # Dynamic graphs
    # ------------------------------------------------------------------
    def handle_delta(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Answer one POST /graph/<name>/delta payload; returns (status, body).

        The body on success is the
        :meth:`~repro.api.session.DeltaReport.as_dict` envelope — edit
        count, churn, old/new fingerprints and the per-pool
        repaired/regenerated breakdown.  The session mutates under the
        graph's lock, so queries racing a delta see either the old graph
        (old pools) or the new one (repaired pools), never a mix.
        A server mid-:meth:`close` answers **503** without mutating.
        """
        try:
            self._begin_request()
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}
        try:
            return self._handle_delta_admitted(graph_name, payload)
        finally:
            self._end_request()

    def _handle_delta_admitted(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        try:
            service = self._service(graph_name)
            if not isinstance(payload, Mapping):
                raise ServiceError(400, "request body must be a JSON object")
            unknown = set(payload) - {"delta", "rng"}
            if unknown:
                raise ServiceError(
                    400, f"unknown request fields: {sorted(unknown)}"
                )
            delta_payload = payload.get("delta")
            if not isinstance(delta_payload, Mapping):
                raise ServiceError(
                    400,
                    "request needs a 'delta' object (GraphDelta.to_dict payload)",
                )
            try:
                delta = GraphDelta.from_dict(delta_payload)
            except (DeltaError, TypeError, ValueError, KeyError) as exc:
                raise ServiceError(400, f"bad delta: {exc}") from exc
            rng = payload.get("rng")
            if rng is not None and (
                not isinstance(rng, int) or isinstance(rng, bool)
            ):
                raise ServiceError(
                    400,
                    "'rng' must be an integer seed (omit for session stream)",
                )
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}
        try:
            with service.lock:
                report = service.session.apply_delta(delta, rng=rng)
            self.stats.deltas += 1
            return 200, report.as_dict()
        except DeltaError as exc:
            # the delta contradicts the graph (removing a missing edge,
            # adding a present one): the client's fault
            self.stats.errors += 1
            return 400, {"error": str(exc)}
        except ReproError as exc:
            self.stats.errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------
    def _pipeline_workdir(self, graph_name: str) -> Path:
        if self.pipeline_dir is None:
            raise ServiceError(
                400,
                "pipelines are disabled: the server was constructed "
                "without pipeline_dir",
            )
        return self.pipeline_dir / graph_name

    def handle_pipeline(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Answer one POST /pipeline/<name> payload; returns (status, body).

        The payload is ``{"config": PipelineConfig.to_dict, "log_path":
        ..., "episodes_path"?, "truth"?}``; the log/episodes are read
        server-side and the pipeline runs against the registered graph's
        *structure* under its lock (queries for the graph queue behind
        it).  The success body is the
        :meth:`~repro.pipeline.PipelineResult.to_dict` run summary; the
        run is also recorded in the graph's debug DB
        (``GET /pipeline/<name>/runs``).
        """
        try:
            self._begin_request()
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}
        try:
            return self._handle_pipeline_admitted(graph_name, payload)
        finally:
            self._end_request()

    def _handle_pipeline_admitted(
        self, graph_name: str, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        try:
            service = self._service(graph_name)
            workdir = self._pipeline_workdir(graph_name)
            if not isinstance(payload, Mapping):
                raise ServiceError(400, "request body must be a JSON object")
            unknown = set(payload) - {
                "config", "log_path", "episodes_path", "truth",
            }
            if unknown:
                raise ServiceError(
                    400, f"unknown request fields: {sorted(unknown)}"
                )
            config_payload = payload.get("config")
            if not isinstance(config_payload, Mapping):
                raise ServiceError(
                    400,
                    "request needs a 'config' object "
                    "(PipelineConfig.to_dict payload)",
                )
            try:
                config = PipelineConfig.from_dict(config_payload)
            except (PipelineError, QueryError, TypeError, ValueError) as exc:
                raise ServiceError(400, f"bad config: {exc}") from exc
            log_path = payload.get("log_path")
            if not isinstance(log_path, str) or not log_path:
                raise ServiceError(
                    400, "request needs a 'log_path' string (action-log TSV)"
                )
            episodes_path = payload.get("episodes_path")
            if episodes_path is not None and not isinstance(episodes_path, str):
                raise ServiceError(400, "'episodes_path' must be a string")
            truth_payload = payload.get("truth")
            truth: Optional[GAP] = None
            if truth_payload is not None:
                if not isinstance(truth_payload, Mapping):
                    raise ServiceError(
                        400, "'truth' must be a GAP object (q_a, ...)"
                    )
                try:
                    truth = GAP.from_mapping(truth_payload)
                except (GapError, TypeError, ValueError, KeyError) as exc:
                    raise ServiceError(400, f"bad truth: {exc}") from exc
            try:
                log = load_action_log(log_path)
                episodes = (
                    load_episodes(episodes_path)
                    if episodes_path is not None
                    else None
                )
            except (ActionLogError, EstimationError, OSError) as exc:
                raise ServiceError(400, f"bad pipeline input: {exc}") from exc
        except ServiceError as exc:
            self.stats.errors += 1
            return exc.status, {"error": str(exc)}
        try:
            with service.lock:
                result = run_pipeline(
                    service.session.graph,
                    log,
                    config,
                    episodes=episodes,
                    workdir=workdir,
                    truth=truth,
                )
            self.stats.pipelines += 1
            return 200, result.to_dict()
        except (PipelineError, EstimationError, QueryError, GapError) as exc:
            # the config contradicts the inputs (unlearnable pair, EM
            # without episodes, bad query): the client's fault
            self.stats.errors += 1
            return 400, {"error": str(exc)}
        except ReproError as exc:
            self.stats.errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def handle_pipeline_runs(
        self, graph_name: str
    ) -> tuple[int, dict[str, Any]]:
        """Answer GET /pipeline/<name>/runs: the graph's debug-DB run rows.

        Graphs that never ran a pipeline answer ``{"runs": []}``.
        """
        service = self._service(graph_name)
        workdir = self._pipeline_workdir(graph_name)
        db_path = workdir / DEBUG_DB_FILE
        if not db_path.exists():
            return 200, {"graph": service.name, "runs": []}
        db = PipelineDebugDB(db_path)
        try:
            return 200, {"graph": service.name, "runs": db.runs()}
        finally:
            db.close()

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def handle_health(self) -> tuple[int, dict[str, Any]]:
        return 200, {"status": "ok", "graphs": self.graph_names()}

    def handle_stats(self) -> tuple[int, dict[str, Any]]:
        sessions: dict[str, Any] = {}
        with self._graphs_lock:
            services = list(self._graphs.values())
        for service in services:
            session = service.session
            entry: dict[str, Any] = {
                "session": session.stats.as_dict(),
                "pool_sets_total": session.pool_sets_total,
                "pool_bytes_total": session.pool_bytes_total,
            }
            store = session.store
            if store is not None:
                entry["store"] = dataclasses.asdict(store.stats)
            sessions[service.name] = entry
        return 200, {"server": self.stats.as_dict(), "graphs": sessions}

    def handle_graphs(self) -> tuple[int, dict[str, Any]]:
        out: dict[str, Any] = {}
        with self._graphs_lock:
            services = list(self._graphs.values())
        for service in services:
            graph = service.session.graph
            out[service.name] = {
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
                "fingerprint": graph.fingerprint(),
            }
        return 200, out

    def handle_catalog(
        self, graph_name: Optional[str] = None
    ) -> tuple[int, dict[str, Any]]:
        """Catalog rows per graph (graphs without a cataloged store: null)."""
        names = [graph_name] if graph_name is not None else self.graph_names()
        out: dict[str, Any] = {}
        for name in names:
            service = self._service(name)
            store = service.session.store
            if isinstance(store, CatalogedPoolStore):
                out[name] = {
                    "rows": store.catalog.rows(),
                    "total_bytes": store.catalog.total_bytes(),
                    "max_store_bytes": store.max_store_bytes,
                    "gc_evictions": store.gc_evictions,
                }
            else:
                out[name] = None
        return 200, out

    # ------------------------------------------------------------------
    # HTTP front
    # ------------------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, port)."""
        if self._httpd is not None:
            raise ReproError("server is already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="comic-server",
            daemon=True,
        )
        self._thread.start()
        bound_host, bound_port = self._httpd.server_address[:2]
        return str(bound_host), int(bound_port)

    @property
    def address(self) -> Optional[tuple[str, int]]:
        """The bound (host, port), or ``None`` before :meth:`start`."""
        if self._httpd is None:
            return None
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def close(
        self, *, drain_timeout_s: Optional[float] = DEFAULT_DRAIN_TIMEOUT_S
    ) -> None:
        """Drain in-flight work, stop serving, close every session.

        The shutdown is graceful and ordered: the server first refuses
        new queries/deltas with **503**, then waits up to
        ``drain_timeout_s`` for every admitted request — single-flight
        leaders, their parked followers, and uncoalesced executions
        alike — to complete or hit its deadline, and only then closes
        the HTTP front and the sessions (worker pools included).  Pass
        ``drain_timeout_s=None`` to wait indefinitely; a timed-out
        drain bumps ``stats.drain_timeouts`` and proceeds — stragglers
        still serialise against session closes via each graph's lock.
        Idempotent.
        """
        with self._drain:
            self._closing = True
        if self._httpd is not None:
            # Stops the accept loop; connection threads already inside a
            # handler keep running and are covered by the drain wait.
            self._httpd.shutdown()
        if not self._wait_drained(drain_timeout_s):
            self.stats.drain_timeouts += 1
        if self._httpd is not None:
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._graphs_lock:
            services = list(self._graphs.values())
            self._graphs.clear()
        for service in services:
            with service.lock:
                service.session.close()

    def __enter__(self) -> "ComICServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _make_handler(server: ComICServer) -> type[BaseHTTPRequestHandler]:
    """The request-handler class bound to one :class:`ComICServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "ComICServer/1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # quiet by default; stats cover observability

        def _reply(self, status: int, body: dict[str, Any]) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            server.stats.requests += 1
            path = self.path.rstrip("/") or "/"
            if path == "/health":
                self._reply(*server.handle_health())
            elif path == "/stats":
                self._reply(*server.handle_stats())
            elif path == "/graphs":
                self._reply(*server.handle_graphs())
            elif path == "/catalog":
                self._reply(*server.handle_catalog())
            elif path.startswith("/catalog/"):
                name = path[len("/catalog/"):]
                try:
                    self._reply(*server.handle_catalog(name))
                except ServiceError as exc:
                    server.stats.errors += 1
                    self._reply(exc.status, {"error": str(exc)})
            elif path.startswith("/pipeline/") and path.endswith("/runs"):
                name = path[len("/pipeline/"):-len("/runs")]
                try:
                    self._reply(*server.handle_pipeline_runs(name))
                except ServiceError as exc:
                    server.stats.errors += 1
                    self._reply(exc.status, {"error": str(exc)})
            else:
                server.stats.errors += 1
                self._reply(404, {"error": f"no such endpoint: {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            server.stats.requests += 1
            path = self.path.rstrip("/")
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                server.stats.errors += 1
                self._reply(400, {"error": "bad Content-Length header"})
                return
            if length > server.max_body_bytes:
                # Refused before reading: the unread body would desync
                # the keep-alive stream, so close this connection.
                server.stats.errors += 1
                self.close_connection = True
                self._reply(
                    413,
                    {
                        "error": (
                            f"request body of {length} bytes exceeds the "
                            f"{server.max_body_bytes}-byte limit"
                        )
                    },
                )
                return
            try:
                raw = self.rfile.read(length) if length > 0 else b""
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as exc:
                server.stats.errors += 1
                self._reply(400, {"error": f"bad JSON body: {exc}"})
                return
            if path.startswith("/query/"):
                graph_name = path[len("/query/"):]
                self._reply(*server.handle_query(graph_name, payload))
            elif path.startswith("/graph/") and path.endswith("/delta"):
                graph_name = path[len("/graph/"):-len("/delta")]
                self._reply(*server.handle_delta(graph_name, payload))
            elif path.startswith("/pipeline/"):
                graph_name = path[len("/pipeline/"):]
                self._reply(*server.handle_pipeline(graph_name, payload))
            else:
                server.stats.errors += 1
                self._reply(404, {"error": f"no such endpoint: {self.path}"})

    return Handler
