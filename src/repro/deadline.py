"""Cooperative wall-clock deadlines for query execution.

A :class:`Deadline` is a fixed point on the monotonic clock that the
sampling layers poll at natural pause points — TIM/IMM top-up
boundaries, KPT estimation rounds, parallel shard joins.  Nothing is
preempted: a vectorized kernel that is already running finishes its
batch, which is why deadline expiry bounds a query's wall-clock only up
to one batch granularity (the engines chunk their top-ups when a
deadline is active precisely to keep that granularity small).

Expiry is signalled two ways, matching the two kinds of consumer:

* ``deadline.expired()`` — a cheap poll for code that can stop cleanly
  and degrade (the TIM/IMM top-up loops: stop sampling, select over
  what the pool already holds).
* ``deadline.check()`` — raises :class:`~repro.errors.DeadlineExceeded`
  for code that is *waiting* (a parallel shard join) and has nothing
  partial worth keeping.

The active deadline travels through a :class:`contextvars.ContextVar`
rather than through every ``generate_batch`` signature:
:meth:`ComICSession.run` opens a :func:`deadline_scope` around the whole
query when ``EngineConfig.deadline_s`` is set, and the engines pick it
up with :func:`current_deadline`.  ``deadline_scope(None)`` explicitly
*clears* the deadline for a block — the engines use that to guarantee a
minimum best-effort sample floor even after expiry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.errors import DeadlineExceeded

_ACTIVE_DEADLINE: ContextVar[Optional["Deadline"]] = ContextVar(
    "repro_active_deadline", default=None
)


class Deadline:
    """A wall-clock budget anchored to the monotonic clock."""

    __slots__ = ("budget_s", "expires_at")

    def __init__(self, budget_s: float, *, expires_at: Optional[float] = None) -> None:
        budget_s = float(budget_s)
        if budget_s <= 0.0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = budget_s
        self.expires_at = (
            expires_at if expires_at is not None else time.monotonic() + budget_s
        )

    @classmethod
    def after(cls, budget_s: float) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        return cls(budget_s)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return time.monotonic() >= self.expires_at

    def check(self, where: str = "query") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:g}s expired during {where}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(budget_s={self.budget_s:g}, remaining={self.remaining():.3f}s)"


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current context, or ``None``."""
    return _ACTIVE_DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the context's active deadline.

    ``deadline_scope(None)`` suspends any outer deadline for the block —
    used to carve out the minimum-sample floor that keeps best-effort
    results meaningful.
    """
    token = _ACTIVE_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE_DEADLINE.reset(token)
