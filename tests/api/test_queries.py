"""Query/config dataclasses: validation and JSON round-trips."""

import pytest

from repro.api import (
    BlockingQuery,
    CompInfMaxQuery,
    EngineConfig,
    MultiItemQuery,
    SelfInfMaxQuery,
    query_from_dict,
    query_from_json,
)
from repro.errors import QueryError
from repro.models import GAP

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)

ROUND_TRIP_QUERIES = [
    SelfInfMaxQuery(seeds_b=(3, 1, 4), k=5),
    SelfInfMaxQuery(
        seeds_b=(0,), k=2, gaps=GAPS, use_rr_sim_plus=False,
        evaluation_runs=80, include_greedy_candidate=True, greedy_runs=10,
    ),
    CompInfMaxQuery(seeds_a=(2, 7), k=3, gaps=GAPS, evaluation_runs=50),
    BlockingQuery(seeds_a=(1, 2), k=4, runs=60, candidates=(5, 6, 7)),
    BlockingQuery(seeds_a=(0,), k=1),
    MultiItemQuery(budget=6, runs=30),
    MultiItemQuery(
        budget=2, item=1, fixed_seed_sets=((1, 2), (), (9,)),
        runs=40, candidates=(3, 4),
    ),
]


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "query", ROUND_TRIP_QUERIES, ids=lambda q: type(q).__name__
    )
    def test_from_json_inverts_to_json(self, query):
        assert type(query).from_json(query.to_json()) == query

    @pytest.mark.parametrize(
        "query", ROUND_TRIP_QUERIES, ids=lambda q: type(q).__name__
    )
    def test_generic_dispatch_by_objective_tag(self, query):
        rebuilt = query_from_json(query.to_json())
        assert type(rebuilt) is type(query)
        assert rebuilt == query

    def test_engine_config_round_trip(self):
        config = EngineConfig(
            engine="imm", epsilon=0.25, ell=2.0,
            max_rr_sets=1234, min_rr_sets=56,
        )
        assert EngineConfig.from_json(config.to_json()) == config
        override = EngineConfig(theta_override=999)
        assert EngineConfig.from_json(override.to_json()) == override

    def test_dict_payload_is_plain_json_types(self):
        payload = ROUND_TRIP_QUERIES[1].to_dict()
        assert payload["objective"] == "selfinfmax"
        assert payload["seeds_b"] == [0]
        assert payload["gaps"] == {
            "q_a": 0.3, "q_a_given_b": 0.8, "q_b": 0.5, "q_b_given_a": 0.5,
        }
        assert query_from_dict(payload) == ROUND_TRIP_QUERIES[1]


class TestNormalization:
    def test_seed_lists_become_int_tuples(self):
        query = SelfInfMaxQuery(seeds_b=[3.0, 1], k=2)
        assert query.seeds_b == (3, 1)

    def test_nested_seed_sets_normalized(self):
        query = MultiItemQuery(
            budget=1, item=0, fixed_seed_sets=([1, 2], [3]),
        )
        assert query.fixed_seed_sets == ((1, 2), (3,))


class TestValidation:
    def test_negative_k_rejected(self):
        with pytest.raises(QueryError):
            SelfInfMaxQuery(seeds_b=(0,), k=-1)
        with pytest.raises(QueryError):
            CompInfMaxQuery(seeds_a=(0,), k=-2)
        with pytest.raises(QueryError):
            MultiItemQuery(budget=-1)

    def test_focal_query_needs_fixed_seed_sets(self):
        with pytest.raises(QueryError):
            MultiItemQuery(budget=1, item=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown"):
            SelfInfMaxQuery.from_dict(
                {"objective": "selfinfmax", "seeds_b": [0], "k": 1, "bogus": 2}
            )

    def test_wrong_objective_tag_rejected(self):
        payload = SelfInfMaxQuery(seeds_b=(0,), k=1).to_dict()
        with pytest.raises(QueryError, match="selfinfmax"):
            CompInfMaxQuery.from_dict(payload)

    def test_untagged_generic_payload_rejected(self):
        with pytest.raises(QueryError, match="objective"):
            query_from_dict({"seeds_b": [0], "k": 1})

    def test_bad_engine_config(self):
        with pytest.raises(QueryError, match="unknown engine"):
            EngineConfig(engine="celf")
        with pytest.raises(QueryError):
            EngineConfig(epsilon=0.0)
        with pytest.raises(QueryError):
            EngineConfig(theta_override=0)
        with pytest.raises(QueryError, match="unknown EngineConfig"):
            EngineConfig.from_dict({"engine": "tim", "bogus": 1})

    def test_string_seeds_rejected(self):
        with pytest.raises(QueryError, match="got a string"):
            SelfInfMaxQuery(seeds_b="012", k=1)

    def test_missing_required_fields_raise_query_error(self):
        with pytest.raises(QueryError, match="invalid SelfInfMaxQuery"):
            query_from_dict({"objective": "selfinfmax"})

    def test_wrong_typed_gaps_rejected_at_construction(self):
        with pytest.raises(QueryError, match="gaps must be a GAP"):
            SelfInfMaxQuery(seeds_b=(0,), k=1, gaps={"q_a": 0.3})
        with pytest.raises(QueryError, match="gaps must be a GAP"):
            CompInfMaxQuery(seeds_a=(0,), k=1, gaps=(0.3, 0.8, 0.5, 0.5))
        with pytest.raises(QueryError, match="gaps must be a GAP"):
            BlockingQuery(seeds_a=(0,), k=1, gaps="Q-")

    def test_theta_override_rejected_for_imm(self):
        from repro.rrset import TIMOptions

        with pytest.raises(QueryError, match="theta_override"):
            EngineConfig(engine="imm", theta_override=1000)
        # Legacy shim path: TIM options carrying an override map onto IMM
        # by dropping it, exactly as imm_options_from_tim always did.
        config = EngineConfig.from_tim_options(
            TIMOptions(theta_override=1000), engine="imm"
        )
        assert config.theta_override is None
        assert config.engine == "imm"
