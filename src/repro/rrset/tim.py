"""GeneralTIM: two-phase influence maximization over general RR-sets.

Implements Algorithm 1 of the paper, which instantiates the TIM algorithm
of Tang et al. [24] on any :class:`~repro.rrset.base.RRSetGenerator`:

1. **Parameter estimation** — a lower bound ``KPT`` of ``OPT_k`` is
   estimated from pilot RR-sets (the ``KptEstimation`` routine of [24]):
   for a random RR-set ``R``, ``kappa(R) = 1 - (1 - w(R)/m)^k`` with
   ``w(R)`` the number of edges entering ``R``; its mean, scaled by ``n``,
   lower-bounds the optimum.  The required sample count follows Eq. (3)::

       theta = (8 + 2 eps) n (ell ln n + ln C(n, k) + ln 2) / (eps^2 KPT)

2. **Node selection** — greedy maximum coverage over the ``theta``
   sampled RR-sets (:func:`greedy_max_coverage`).

Both phases run on the batched RR-set engine: sampling goes through
:meth:`~repro.rrset.base.RRSetGenerator.generate_batch` into one flat
:class:`~repro.rrset.pool.RRSetPool`, widths and coverage statistics are
``np.bincount`` passes over the pool, and :func:`greedy_max_coverage`
invalidates covered sets with vectorized ``np.subtract.at`` updates — so
selection is O(total RR-set size) with no inner Python loop.  The original
per-list implementation survives as :func:`greedy_max_coverage_legacy`,
the oracle the pooled path is tested against.

Pure Python cannot afford the paper's million-edge ``theta`` values, so
``TIMOptions.max_rr_sets`` caps the sample size (and ``theta_override``
pins it for benchmarks); the cap trades the formal guarantee for bounded
running time exactly as larger ``eps`` does, and the Fig.-4 reproduction
shows seed quality is insensitive to it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro import faults
from repro.deadline import Deadline, current_deadline, deadline_scope
from repro.errors import DeadlineExceeded, SeedSetError
from repro.graph.digraph import expand_csr
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool

RRSets = Union[RRSetPool, Sequence[np.ndarray]]


@dataclass(frozen=True)
class TIMOptions:
    """Knobs of :func:`general_tim`.

    ``epsilon`` trades accuracy for speed (paper Fig. 4 uses 0.5); ``ell``
    sets the success probability ``1 - n^-ell``.  ``max_rr_sets`` caps the
    sample size for tractability; ``theta_override`` skips estimation
    entirely and uses the given count.
    """

    epsilon: float = 0.5
    ell: float = 1.0
    max_rr_sets: int = 50_000
    min_rr_sets: int = 200
    theta_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.ell <= 0.0:
            raise ValueError(f"ell must be positive, got {self.ell}")
        if self.max_rr_sets < 1:
            raise ValueError(f"max_rr_sets must be >= 1, got {self.max_rr_sets}")


@dataclass
class TIMResult:
    """Output of :func:`general_tim`."""

    seeds: list[int]
    theta: int
    kpt: float
    coverage: int
    #: ``n * coverage / theta`` — the RR-set estimate of the objective
    #: (spread for SelfInfMax-style problems, boost for CompInfMax).
    estimated_objective: float
    #: marginal coverage gain of each selected seed, in selection order.
    marginal_coverage: list[int] = field(default_factory=list)
    #: whether a wall-clock deadline clipped sampling: the seeds were
    #: selected best-effort over fewer RR-sets than the accuracy target.
    degraded: bool = False
    #: human-readable reason when ``degraded`` (machine consumers should
    #: key off the flag, not parse this).
    degraded_reason: Optional[str] = None


def _log_n_choose_k(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma (exact enough for Eq. (3))."""
    if k < 0 or k > n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def _arm_top_up_fault() -> None:
    """Fault-injection hook fired once per sampling chunk (test-only)."""
    spec = faults.fire("engine.top_up")
    if spec is None:
        return
    if spec.kind == "slow":
        time.sleep(spec.delay_s)
    elif spec.kind == "error":
        raise faults.InjectedFault(spec.site, spec.kind)


def cooperative_top_up(
    generator: RRSetGenerator,
    target: int,
    pool: RRSetPool,
    rng: SeedLike,
    *,
    deadline: Optional[Deadline] = None,
    floor: int = 0,
) -> bool:
    """Grow ``pool`` to ``target`` sets, cooperating with ``deadline``.

    Without a deadline this is one ``generate_batch`` call — the
    original top-up, bit-for-bit.  With one, the request is split into
    chunks with an expiry check between them (so a runaway theta cannot
    blow the budget by more than one chunk), and the first ``floor``
    sets are sampled with the deadline *suspended* — a best-effort
    answer over zero RR-sets would be meaningless, so every selection is
    guaranteed at least the floor even when the budget is already gone.

    Returns whether ``target`` was reached; ``False`` means the caller
    should select over what the pool holds and mark the result degraded.
    """
    target = int(target)
    if deadline is None:
        if len(pool) < target:
            _arm_top_up_fault()
            generator.generate_batch(target - len(pool), rng=rng, out=pool)
        return True
    floor = min(int(floor), target)
    if len(pool) < floor:
        _arm_top_up_fault()
        with deadline_scope(None):
            generator.generate_batch(floor - len(pool), rng=rng, out=pool)
    chunk = max(512, (target - len(pool) + 7) // 8)
    while len(pool) < target:
        if deadline.expired():
            return False
        _arm_top_up_fault()
        try:
            step = min(chunk, target - len(pool))
            generator.generate_batch(step, rng=rng, out=pool)
        except DeadlineExceeded:
            return False
    return True


def estimate_kpt(
    generator: RRSetGenerator,
    k: int,
    *,
    ell: float = 1.0,
    rng: SeedLike = None,
    max_rr_sets: int = 10_000,
    pool: Optional[RRSetPool] = None,
    deadline: Optional[Deadline] = None,
) -> float:
    """The ``KptEstimation`` lower bound on ``OPT_k`` from [24], §4.1.

    Iterates ``i = 1 .. log2(n) - 1``, sampling ``c_i ∝ 2^i`` RR-sets; stops
    when the mean ``kappa`` exceeds ``2^-i`` and returns ``n * mean / 2``.
    Falls back to 1 (every seed set reaches at least its own seeds).
    Each round samples through the batched engine and evaluates every
    width ``w(R)`` in one pooled ``bincount`` pass.

    With ``pool`` (the session-reuse path) rounds consume consecutive
    slices of the shared pool instead of throwaway batches, topping the
    pool up only when it runs short — so pilot RR-sets are sampled at most
    once per session and are reused by the selection phase afterwards.

    ``deadline`` makes the estimation cooperative: an expired budget ends
    the iteration early and returns the weakest valid bound seen so far
    (the caller's theta then clips at ``max_rr_sets`` and its own top-up
    degrades in turn).
    """
    graph = generator.graph
    n, m = graph.num_nodes, graph.num_edges
    if n < 2 or m == 0:
        return 1.0
    gen = make_rng(rng)
    in_degrees = graph.in_degrees
    log2n = max(int(math.log2(n)), 1)
    budget = max_rr_sets
    offset = 0
    for i in range(1, log2n):
        if deadline is not None and deadline.expired():
            break
        c_i = int(math.ceil((6 * ell * math.log(n) + 6 * math.log(log2n)) * 2**i))
        c_i = min(c_i, budget)
        if c_i <= 0:
            break
        try:
            if pool is None:
                batch = generator.generate_batch(c_i, rng=gen)
                widths = batch.widths(in_degrees)
            else:
                if len(pool) < offset + c_i:
                    generator.generate_batch(
                        offset + c_i - len(pool), rng=gen, out=pool
                    )
                widths = pool.widths(in_degrees, start=offset, stop=offset + c_i)
                offset += c_i
        except DeadlineExceeded:
            break
        mean_kappa = float(np.mean(1.0 - (1.0 - widths / m) ** k))
        budget -= c_i
        if mean_kappa > 1.0 / (2**i):
            return max(n * mean_kappa / 2.0, 1.0)
        if budget <= 0:
            break
    return 1.0


def compute_theta(
    n: int, k: int, kpt: float, *, epsilon: float, ell: float
) -> int:
    """Required number of RR-sets per Eq. (3) with ``KPT`` in place of OPT."""
    lam = (
        (8.0 + 2.0 * epsilon)
        * n
        * (ell * math.log(n) + _log_n_choose_k(n, k) + math.log(2.0))
        / (epsilon**2)
    )
    return max(int(math.ceil(lam / max(kpt, 1.0))), 1)


def _candidate_array(candidates, n: int) -> np.ndarray:
    """Validate a candidate node pool into a sorted unique id array."""
    cand = np.unique(np.asarray(list(candidates), dtype=np.int64))
    if cand.size and (cand[0] < 0 or cand[-1] >= n):
        raise SeedSetError(
            f"candidate node ids must lie in [0, {n - 1}]"
        )
    return cand


def greedy_max_coverage(
    rr_sets: RRSets, n: int, k: int, *, candidates=None
) -> tuple[list[int], int, list[int]]:
    """Greedy maximum coverage: pick ``k`` nodes covering most RR-sets.

    Returns ``(seeds, total_covered, marginal_gains)``.  Accepts a flat
    :class:`~repro.rrset.pool.RRSetPool` (the fast path; sequences of
    per-set arrays are packed into one first).  The counting structure is
    fully vectorized: initial per-node counts are one ``bincount``, the
    inverted node → sets index one stable argsort of the flat pool, and
    invalidating a pick's covered sets decrements all their members with a
    single ``np.subtract.at`` — every flat entry is touched O(1) times, so
    selection is O(total RR-set size + k) after the O(size log size) index
    build.  Tie-breaking (lowest node id among maxima) matches
    :func:`greedy_max_coverage_legacy` exactly.

    ``candidates`` restricts the pickable nodes (the blocking / focal
    multi-item workloads exclude occupied seeds this way); sets are still
    counted in full, only the argmax is confined.  At most
    ``min(k, len(candidates))`` seeds are returned.
    """
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    pool = (
        rr_sets
        if isinstance(rr_sets, RRSetPool)
        else RRSetPool.from_sets(n, rr_sets)
    )
    nodes = pool.nodes
    indptr = pool.indptr
    num_sets = len(pool)
    incidence = np.bincount(nodes, minlength=n)[:n]
    counts = incidence.astype(np.int64)
    picks = min(k, n)
    if candidates is not None:
        cand = _candidate_array(candidates, n)
        allowed = np.zeros(n, dtype=bool)
        allowed[cand] = True
        counts[~allowed] = -1
        picks = min(k, int(cand.size))
    # Inverted index: entries of the flat pool grouped by node.
    order = np.argsort(nodes, kind="stable")
    sets_by_node = pool.set_ids()[order]
    node_starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(incidence, out=node_starts[1:])
    covered = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    gains: list[int] = []
    total = 0
    for _ in range(picks):
        best = int(np.argmax(counts))
        gain = int(counts[best])
        seeds.append(best)
        gains.append(gain)
        total += gain
        if gain == 0:
            # No RR-set left uncovered; remaining picks are arbitrary but we
            # avoid repeating an already-chosen node.
            counts[best] = -1
            continue
        incident = sets_by_node[node_starts[best] : node_starts[best + 1]]
        newly = incident[~covered[incident]]
        covered[newly] = True
        _reps, flat = expand_csr(indptr, newly, with_reps=False)
        if flat.size:
            np.subtract.at(counts, nodes[flat], 1)
        counts[best] = -1
    return seeds, total, gains


def greedy_max_coverage_legacy(
    rr_sets: Sequence[np.ndarray], n: int, k: int, *, candidates=None
) -> tuple[list[int], int, list[int]]:
    """The original per-list greedy (inner Python loops).

    Kept as the correctness oracle for :func:`greedy_max_coverage`; both
    produce identical seeds, coverage and gains on the same input
    (``candidates`` restriction included).
    """
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    counts = np.zeros(n, dtype=np.int64)
    index: dict[int, list[int]] = {}
    for set_id, rr_set in enumerate(rr_sets):
        for node in rr_set:
            node = int(node)
            counts[node] += 1
            index.setdefault(node, []).append(set_id)
    picks = min(k, n)
    if candidates is not None:
        cand = _candidate_array(candidates, n)
        allowed = np.zeros(n, dtype=bool)
        allowed[cand] = True
        counts[~allowed] = -1
        picks = min(k, int(cand.size))
    covered = np.zeros(len(rr_sets), dtype=bool)
    seeds: list[int] = []
    gains: list[int] = []
    total = 0
    for _ in range(picks):
        best = int(np.argmax(counts))
        gain = int(counts[best])
        seeds.append(best)
        gains.append(gain)
        total += gain
        if gain == 0:
            counts[best] = -1
            continue
        for set_id in index.get(best, ()):  # invalidate covered sets
            if covered[set_id]:
                continue
            covered[set_id] = True
            for node in rr_sets[set_id]:
                counts[int(node)] -= 1
        counts[best] = -1
    return seeds, total, gains


def general_tim(
    generator: RRSetGenerator,
    k: int,
    *,
    options: Optional[TIMOptions] = None,
    rng: SeedLike = None,
    pool: Optional[RRSetPool] = None,
    candidates=None,
    deadline: Optional[Deadline] = None,
) -> TIMResult:
    """Run GeneralTIM (Algorithm 1) and return the selected seed set.

    ``pool`` opts into cross-run RR-set reuse: KPT pilots and selection
    samples are appended to (and read back from) the caller-owned pool, so
    a later run that needs a larger ``theta`` tops the pool up instead of
    resampling from scratch.  The pool may come from anywhere sets of the
    right distribution do — a live session cache, an on-disk
    :class:`~repro.store.PoolStore` snapshot (possibly memory-mapped), or
    a :class:`~repro.parallel.ParallelEngine` merge — and ``generator``
    may itself be a parallel wrapper; both phases are agnostic.  Selection then covers *every* pooled set
    (``>= theta``), which only sharpens the estimate; ``TIMResult.theta``
    reports the number of sets actually used.  Without ``pool`` the
    original single-shot behaviour is unchanged.  ``candidates`` restricts
    the pickable seed nodes (see :func:`greedy_max_coverage`); sampling is
    unrestricted, so pools stay shareable across candidate sets.

    ``deadline`` (explicit, or ambient via
    :func:`repro.deadline.current_deadline`) makes sampling cooperative:
    when the budget expires, selection runs best-effort over whatever
    the pool holds (never fewer than ``min_rr_sets``) and the result is
    stamped ``degraded=True``.
    """
    if options is None:
        options = TIMOptions()
    if deadline is None:
        deadline = current_deadline()
    graph = generator.graph
    n = graph.num_nodes
    if k < 0 or k > n:
        raise SeedSetError(f"k must lie in [0, {n}], got {k}")
    gen = make_rng(rng)
    if options.theta_override is not None:
        kpt = float("nan")
        theta = int(options.theta_override)
    else:
        kpt = estimate_kpt(
            generator,
            k,
            ell=options.ell,
            rng=gen,
            max_rr_sets=max(options.max_rr_sets // 4, 100),
            pool=pool,
            deadline=deadline,
        )
        theta = compute_theta(n, k, kpt, epsilon=options.epsilon, ell=options.ell)
    theta = int(np.clip(theta, options.min_rr_sets, options.max_rr_sets))
    if pool is None:
        pool = RRSetPool(n)
    completed = cooperative_top_up(
        generator, theta, pool, gen,
        deadline=deadline, floor=min(options.min_rr_sets, theta),
    )
    selection = pool
    if options.theta_override is not None and len(pool) > theta:
        # A pinned theta is a pin even against a warm pool: select over
        # exactly theta sets so fixed-sample-count comparisons stay honest.
        selection = pool.prefix(theta)
    elif len(pool) > options.max_rr_sets:
        # max_rr_sets is the tractability contract: a warm pool larger than
        # this query's cap is consumed only up to the cap.
        selection = pool.prefix(options.max_rr_sets)
    used = len(selection)
    seeds, covered, gains = greedy_max_coverage(
        selection, n, k, candidates=candidates
    )
    degraded_reason = None
    if not completed:
        degraded_reason = (
            f"deadline of {deadline.budget_s:g}s expired during sampling: "
            f"selected best-effort over {used} of {theta} RR-sets"
        )
    return TIMResult(
        seeds=seeds,
        theta=used,
        kpt=kpt,
        coverage=covered,
        estimated_objective=n * covered / used if used else 0.0,
        marginal_coverage=gains,
        degraded=not completed,
        degraded_reason=degraded_reason,
    )
