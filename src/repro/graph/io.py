"""Plain-text graph serialisation.

Graphs are stored as whitespace-separated edge lists, one ``src dst prob``
triple per line, with ``#``-prefixed comment lines.  The first non-comment
line is a header ``n m`` giving node and edge counts so that isolated nodes
round-trip correctly.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

PathLike = Union[str, os.PathLike]


def save_edge_list(graph: DiGraph, path: PathLike, *, comment: str = "") -> None:
    """Write ``graph`` to ``path`` in the library's edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"{graph.num_nodes} {graph.num_edges}\n")
        src = graph.edge_sources
        dst = graph.edge_targets
        prob = graph.edge_probabilities
        for i in range(graph.num_edges):
            handle.write(f"{src[i]} {dst[i]} {prob[i]:.10g}\n")


def load_edge_list(path: PathLike) -> DiGraph:
    """Read a graph previously written by :func:`save_edge_list`."""
    n = -1
    m = -1
    src_list: list[int] = []
    dst_list: list[int] = []
    prob_list: list[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if n < 0:
                if len(parts) != 2:
                    raise GraphError(
                        f"expected 'n m' header, got {line!r} in {path}"
                    )
                n, m = int(parts[0]), int(parts[1])
                continue
            if len(parts) not in (2, 3):
                raise GraphError(f"malformed edge line {line!r} in {path}")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
            prob_list.append(float(parts[2]) if len(parts) == 3 else 1.0)
    if n < 0:
        raise GraphError(f"no header line found in {path}")
    if len(src_list) != m:
        raise GraphError(
            f"header declared {m} edges but {len(src_list)} were found in {path}"
        )
    return DiGraph.from_arrays(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        np.asarray(prob_list, dtype=np.float64),
    )
