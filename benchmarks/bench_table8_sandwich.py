"""Benchmark: Table 8 — the Sandwich Approximation ratio sigma(S_nu)/nu(S_nu).

Shape check (paper): close-to-1 for learned (close) GAPs; degraded but
mostly still sizable under stress settings, falling as the gap between
q_{B|∅} and q_{B|A} widens.
"""

from repro.experiments import table8_sandwich_ratio


def bench_table8_sandwich_ratio(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: table8_sandwich_ratio(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "table8_sandwich_ratio")
    for row in result.rows:
        assert row["SIM_learn"] > 0.9
        assert row["CIM_learn"] > 0.5
        # SIM stress: the ratio improves as q_B|0 approaches q_B|A = 1.
        assert row["SIM_0.9"] >= row["SIM_0.1"] - 0.15
