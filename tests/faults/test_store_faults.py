"""Injected disk faults against PoolStore: quarantine, GC, degradation."""

import json
import os

import numpy as np
import pytest

from repro.errors import StoreError
from repro.faults import FaultPlan, FaultSpec, InjectedFault, fault_scope
from repro.models import GAP
from repro.rrset.pool import RRSetPool
from repro.store import PoolKey, PoolStore
from repro.store.pool_store import (
    MANIFEST_FILE,
    NODES_FILE,
    QUARANTINE_DIR,
    REASON_FILE,
)

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "a" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])


def make_pool(num_nodes=40, sets=25, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    pool = RRSetPool(num_nodes)
    for _ in range(sets):
        pool.append(gen.integers(0, num_nodes, size=int(gen.integers(0, 6))))
    return pool


@pytest.fixture
def store(tmp_path):
    return PoolStore(tmp_path / "pools")


class TestQuarantine:
    def test_corrupted_entry_quarantined_on_first_touch_never_reread(
        self, store
    ):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        plan = FaultPlan([FaultSpec("store.load", "corrupt", at=0)], seed=5)
        with fault_scope(plan):
            assert store.load(KEY, graph_fingerprint=FP) is None
        assert plan.fired[0]["kind"] == "corrupt"
        assert store.stats.invalidations == 1
        assert store.stats.quarantined == 1
        # the bad entry is gone from its slot: later loads are plain
        # misses that never touch (or re-validate) the bad bytes again.
        assert not store.entry_dir(KEY).exists()
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.misses == 1
        assert store.stats.invalidations == 1  # unchanged
        assert store.stats.quarantined == 1  # unchanged

    def test_quarantine_records_reason(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        with fault_scope(FaultPlan([FaultSpec("store.load", "corrupt")])):
            store.load(KEY, graph_fingerprint=FP)
        (record,) = store.quarantined_entries()
        assert record["path"].parent.name == QUARANTINE_DIR
        assert record["path"].name == f"{KEY.digest()}-0"
        assert "CRC-32" in record["reason"]
        assert record["key"] == KEY.to_dict()
        assert record["quarantined_unix"] > 0
        # the quarantined directory still holds the bad bytes + sidecar
        assert (record["path"] / NODES_FILE).exists()
        assert (record["path"] / REASON_FILE).exists()

    def test_foreign_fingerprint_entry_quarantined(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        assert store.load(KEY, graph_fingerprint="b" * 64) is None
        assert store.stats.quarantined == 1
        assert not store.entry_dir(KEY).exists()

    def test_quarantine_suffixes_do_not_collide(self, store):
        for n in range(3):
            store.save(KEY, make_pool(rng_seed=n), graph_fingerprint=FP)
            assert store.load(KEY, graph_fingerprint="b" * 64) is None
        names = {record["path"].name for record in store.quarantined_entries()}
        assert names == {f"{KEY.digest()}-{i}" for i in range(3)}

    def test_valid_save_after_quarantine_serves_again(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.load(KEY, graph_fingerprint="b" * 64)  # quarantined
        fresh = make_pool(rng_seed=9)
        store.save(KEY, fresh, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert loaded is not None and len(loaded) == len(fresh)

    def test_quarantine_not_counted_as_inventory(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.load(KEY, graph_fingerprint="b" * 64)
        assert list(store.entries()) == []


class TestTornManifest:
    def test_torn_manifest_write_is_quarantined_on_load(self, store):
        plan = FaultPlan([FaultSpec("store.save.manifest", "torn")])
        with fault_scope(plan):
            store.save(KEY, make_pool(), graph_fingerprint=FP)
        # the torn JSON really is on disk
        raw = (store.entry_dir(KEY) / MANIFEST_FILE).read_text()
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw)
        assert store.load(KEY, graph_fingerprint=FP) is None
        assert store.stats.invalidations == 1
        assert store.stats.quarantined == 1


class TestSaveDegradation:
    @pytest.mark.parametrize("kind,errno_name", [
        ("enospc", "ENOSPC"),
        ("eacces", "EACCES"),
    ])
    def test_failed_column_write_raises_and_counts(
        self, store, kind, errno_name
    ):
        import errno as errno_module

        plan = FaultPlan([FaultSpec("store.save.columns", kind)])
        with fault_scope(plan):
            with pytest.raises(OSError) as excinfo:
                store.save(KEY, make_pool(), graph_fingerprint=FP)
        assert excinfo.value.errno == getattr(errno_module, errno_name)
        assert store.stats.save_failures == 1
        assert store.stats.saves == 0
        # failed staging is cleaned up, nothing half-written remains
        assert not store.entry_dir(KEY).exists()
        assert not any(
            child.name.startswith(".staging.")
            for child in store.root.iterdir()
        )

    def test_genuine_store_errors_also_count(self, store, monkeypatch):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        real_replace = os.replace

        def failing_replace(src, dst):
            if ".trash." in os.fspath(dst):
                raise OSError("permission denied")
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.store.pool_store.os.replace", failing_replace
        )
        with pytest.raises(StoreError, match="failed to retire"):
            store.save(KEY, make_pool(rng_seed=1), graph_fingerprint=FP)
        assert store.stats.save_failures == 1


class TestStagingLeakAndGC:
    def test_install_crash_leaves_staging_behind(self, store):
        """Regression: a writer killed between stage and rename leaves its
        staging directory; it must neither be inventory nor survive GC."""
        plan = FaultPlan([FaultSpec("store.save.install", "crash")])
        with fault_scope(plan):
            with pytest.raises(InjectedFault):
                store.save(KEY, make_pool(), graph_fingerprint=FP)
        orphans = [
            child
            for child in store.root.iterdir()
            if child.name.startswith(".staging.")
        ]
        assert len(orphans) == 1  # the leak the GC exists for
        assert not store.entry_dir(KEY).exists()
        assert list(store.entries()) == []  # staging is not inventory

        # a reopen with an immediate cutoff sweeps the orphan
        reopened = PoolStore(store.root, stale_temp_age_s=0)
        assert reopened.stats.temp_dirs_gcd == 1
        assert not orphans[0].exists()

    def test_open_time_gc_respects_age_cutoff(self, store, tmp_path):
        fresh = store.root / ".staging.deadbeef.1"
        stale = store.root / ".trash.deadbeef.2"
        fresh.mkdir()
        stale.mkdir()
        old = 1_000_000_000  # well past any cutoff
        os.utime(stale, (old, old))
        reopened = PoolStore(store.root, stale_temp_age_s=3600)
        assert reopened.stats.temp_dirs_gcd == 1
        assert fresh.exists() and not stale.exists()

    def test_gc_disabled_with_none(self, store):
        orphan = store.root / ".staging.deadbeef.3"
        orphan.mkdir()
        os.utime(orphan, (1_000_000_000, 1_000_000_000))
        reopened = PoolStore(store.root, stale_temp_age_s=None)
        assert reopened.stats.temp_dirs_gcd == 0
        assert orphan.exists()

    def test_gc_ignores_installed_entries_and_quarantine(self, store):
        store.save(KEY, make_pool(), graph_fingerprint=FP)
        store.load(KEY, graph_fingerprint="b" * 64)  # populate quarantine
        entry_dirs = sorted(p.name for p in store.root.iterdir())
        reopened = PoolStore(store.root, stale_temp_age_s=0)
        assert reopened.stats.temp_dirs_gcd == 0
        assert sorted(p.name for p in store.root.iterdir()) == entry_dirs

    def test_negative_cutoff_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="stale_temp_age_s"):
            PoolStore(tmp_path / "p", stale_temp_age_s=-1)
