"""Incremental column appends: fast path, fallbacks, crash tolerance."""

import numpy as np
import pytest

from repro.models import GAP
from repro.rrset.pool import RRSetPool
from repro.store import PoolKey, PoolStore
from repro.store.pool_store import (
    APPEND_LOCK_FILE,
    INDPTR_FILE,
    NODES_FILE,
)

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
FP = "a" * 64
KEY = PoolKey.make("rr-sim", GAPS, [0, 1])


def make_pool(num_nodes=40, sets=25, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    pool = RRSetPool(num_nodes)
    for _ in range(sets):
        size = int(gen.integers(0, 6))
        pool.append(gen.integers(0, num_nodes, size=size))
    return pool


def grow(pool, extra, rng_seed=1):
    gen = np.random.default_rng(rng_seed)
    for _ in range(extra):
        size = int(gen.integers(0, 6))
        pool.append(gen.integers(0, pool.num_nodes, size=size))
    return pool


@pytest.fixture
def store(tmp_path):
    return PoolStore(tmp_path / "pools")


class TestAppendFastPath:
    def test_grown_resave_appends_instead_of_rewriting(self, store):
        pool = make_pool(sets=30)
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.appends == 0
        grow(pool, 20)
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.appends == 1
        assert store.stats.saves == 2
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert np.array_equal(loaded.nodes, pool.nodes)
        assert np.array_equal(loaded.indptr, pool.indptr)

    def test_repeated_appends_accumulate(self, store):
        pool = make_pool(sets=10)
        store.save(KEY, pool, graph_fingerprint=FP)
        for round_ in range(3):
            grow(pool, 10, rng_seed=round_ + 1)
            store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.appends == 3
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert np.array_equal(loaded.nodes, pool.nodes)
        assert len(loaded) == 40

    def test_appended_entry_passes_strict_validation(self, store):
        pool = make_pool(sets=15)
        store.save(KEY, pool, graph_fingerprint=FP)
        grow(pool, 15)
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.load_strict(KEY, graph_fingerprint=FP) is not None
        assert store.stats.invalidations == 0

    def test_identical_resave_appends_nothing(self, store):
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        store.save(KEY, pool, graph_fingerprint=FP)
        # same length is not growth: full rewrite path (still correct)
        assert store.stats.appends == 0


class TestAppendFallbacks:
    def test_non_prefix_content_falls_back_to_rewrite(self, store):
        store.save(KEY, make_pool(sets=20, rng_seed=0), graph_fingerprint=FP)
        different = make_pool(sets=40, rng_seed=9)  # longer but not a prefix
        store.save(KEY, different, graph_fingerprint=FP)
        assert store.stats.appends == 0
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert np.array_equal(loaded.nodes, different.nodes)

    def test_different_fingerprint_falls_back_to_rewrite(self, store):
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        grow(pool, 10)
        store.save(KEY, pool, graph_fingerprint="b" * 64)
        assert store.stats.appends == 0
        assert store.load(KEY, graph_fingerprint="b" * 64) is not None

    def test_lock_contention_defers_without_writing(self, store):
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        lock = store.entry_dir(KEY) / APPEND_LOCK_FILE
        lock.write_text("held")
        before = store.manifest(KEY)
        grow(pool, 10)
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.append_contentions == 1
        assert store.stats.appends == 0
        # the loser left the installed entry alone
        assert store.manifest(KEY).to_dict() == before.to_dict()
        lock.unlink()

    def test_stale_lock_is_broken(self, tmp_path):
        store = PoolStore(tmp_path / "pools", stale_temp_age_s=0.0)
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        lock = store.entry_dir(KEY) / APPEND_LOCK_FILE
        lock.write_text("crashed writer")
        grow(pool, 10)
        store.save(KEY, pool, graph_fingerprint=FP)
        assert store.stats.appends == 1
        assert not lock.exists()


class TestCrashTolerance:
    def test_trailing_garbage_beyond_manifest_is_served_as_prefix(self, store):
        """Data-then-header ordering: a crash between them leaves surplus
        column bytes the old manifest doesn't describe — loads still see
        exactly the installed prefix."""
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        manifest_before = store.manifest(KEY)
        entry = store.entry_dir(KEY)
        # simulate the crash: append data written, header/manifest not yet
        for name, dtype, extra in (
            (NODES_FILE, np.int32, 7),
            (INDPTR_FILE, np.int64, 2),
        ):
            with open(entry / name, "ab") as fh:
                fh.write(np.zeros(extra, dtype=dtype).tobytes())
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert loaded is not None
        assert len(loaded) == len(pool)
        assert np.array_equal(loaded.nodes, pool.nodes)
        assert store.stats.invalidations == 0
        assert store.manifest(KEY).to_dict() == manifest_before.to_dict()

    def test_append_after_simulated_crash_recovers(self, store):
        pool = make_pool(sets=20)
        store.save(KEY, pool, graph_fingerprint=FP)
        entry = store.entry_dir(KEY)
        with open(entry / NODES_FILE, "ab") as fh:
            fh.write(b"\x00" * 12)
        # next save sees a non-prefix nodes file (npy header count stale
        # vs on-disk size is fine; content CRC prefix still matches) —
        # either append or rewrite, the result must round-trip
        grow(pool, 10)
        store.save(KEY, pool, graph_fingerprint=FP)
        loaded = store.load(KEY, graph_fingerprint=FP)
        assert np.array_equal(loaded.nodes, pool.nodes)
