"""EM estimation of IC edge probabilities from cascade episodes.

The paper learns its edge probabilities with the frequentist counting of
Goyal et al. [12] (:mod:`repro.learning.influence_probs`).  This module
adds the other standard estimator from the same literature — the
expectation-maximisation algorithm of Saito, Nakano & Kimura (KES 2008) —
which models the *credit assignment* problem explicitly: when several
parents of ``v`` were active the step before ``v`` activated, each only
probabilistically caused the activation.

Episodes are arrays of activation times (``-1`` = never activated), the
natural trace of a timestamped adoption log.  For every edge ``(u, v)``
an episode is

* a **success** when ``t_v = t_u + 1`` (``u`` may have caused ``v``), or
* a **failure** when ``u`` activated but ``v`` was idle at ``t_u + 1``
  and stayed idle or activated even later (``u`` certainly failed),

and the EM update distributes each success among the candidate parents::

    E-step:  xi_e(u, v) = p_uv / (1 - prod_parents (1 - p_wv))
    M-step:  p_uv = sum_successes xi_e / (#successes + #failures)

Monotone in likelihood; iterations stop on parameter stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import EstimationError, SeedSetError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rngs


def simulate_ic_with_times(
    graph: DiGraph,
    seeds: Iterable[int],
    *,
    rng: SeedLike = None,
) -> np.ndarray:
    """One IC cascade returning per-node activation times (-1 = never)."""
    gen = make_rng(rng)
    n = graph.num_nodes
    times = np.full(n, -1, dtype=np.int64)
    frontier: list[int] = []
    for s in seeds:
        v = int(s)
        if not 0 <= v < n:
            raise SeedSetError(f"seed {v} out of range [0, {n - 1}]")
        if times[v] < 0:
            times[v] = 0
            frontier.append(v)
    t = 0
    while frontier:
        t += 1
        next_frontier: list[int] = []
        for u in frontier:
            targets, probs, _eids = graph.out_edges(u)
            hits = np.asarray(gen.random(targets.size) < probs)
            for idx in np.flatnonzero(hits):
                v = int(targets[idx])
                if times[v] < 0:
                    times[v] = t
                    next_frontier.append(v)
        frontier = next_frontier
    return times


def generate_ic_episodes(
    graph: DiGraph,
    episodes: int,
    *,
    seeds_per_episode: int = 1,
    rng: SeedLike = None,
) -> list[np.ndarray]:
    """Sample ``episodes`` IC cascades from uniform-random seed sets.

    The training corpus for :func:`em_learn_probabilities`; each episode is
    an activation-time array.  Every episode draws from its own child
    stream spawned from ``rng`` (the RR-layer convention), so episode ``i``
    is the same regardless of how many episodes are requested.
    """
    if episodes < 0:
        raise EstimationError(f"episodes must be non-negative, got {episodes}")
    if not 1 <= seeds_per_episode <= graph.num_nodes:
        raise EstimationError(
            f"seeds_per_episode must lie in [1, {graph.num_nodes}], "
            f"got {seeds_per_episode}"
        )
    result = []
    for gen in spawn_rngs(rng, episodes):
        seeds = gen.choice(graph.num_nodes, size=seeds_per_episode, replace=False)
        result.append(simulate_ic_with_times(graph, seeds, rng=gen))
    return result


@dataclass
class EMResult:
    """Output of :func:`em_learn_probabilities`."""

    #: per-edge probability estimates, indexed by edge id.
    probabilities: np.ndarray
    iterations: int
    converged: bool
    #: per-edge observation counts (successes + failures); edges never
    #: observed keep their initial value and are flagged here with 0.
    observations: np.ndarray
    #: observed-data log-likelihood trace: entry 0 is the initial
    #: parameters, entry ``i`` the parameters after iteration ``i``.
    #: Monotone non-decreasing (EM guarantee); length ``iterations + 1``.
    log_likelihoods: tuple[float, ...] = ()

    def as_graph(self, graph: DiGraph) -> DiGraph:
        """Return ``graph`` re-weighted with the learned probabilities."""
        return graph.with_probabilities(self.probabilities)


def _log_likelihood(
    p: np.ndarray,
    success_groups: list[np.ndarray],
    failure_counts: np.ndarray,
) -> float:
    """Observed-data log-likelihood of ``p`` (clipped for p ∈ {0, 1})."""
    eps = 1e-12
    ll = 0.0
    for group in success_groups:
        hazard = 1.0 - float(np.prod(1.0 - p[group]))
        ll += float(np.log(max(hazard, eps)))
    ll += float(np.sum(failure_counts * np.log(np.maximum(1.0 - p, eps))))
    return ll


def em_learn_probabilities(
    graph: DiGraph,
    episodes: Sequence[np.ndarray],
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    initial: Optional[float] = None,
) -> EMResult:
    """Run Saito-style EM over ``episodes`` and estimate every ``p(u, v)``.

    ``initial`` seeds every probability (default 0.5); edges with no
    observations are left at their initial value and reported via
    ``EMResult.observations``.
    """
    if max_iterations < 1:
        raise EstimationError(f"max_iterations must be >= 1, got {max_iterations}")
    if tolerance < 0:
        raise EstimationError(f"tolerance must be non-negative, got {tolerance}")
    n, m = graph.num_nodes, graph.num_edges
    for e_index, episode in enumerate(episodes):
        if episode.shape != (n,):
            raise EstimationError(
                f"episode {e_index} has shape {episode.shape}; expected ({n},)"
            )

    # Precompute, per edge, its success episodes (grouped by activation of
    # the head so the E-step can renormalise over co-parents) and its
    # failure count.
    in_indptr, in_src, _in_prob, in_eid = graph.csr_in()
    # successes[j] = (v, list of (edge ids of candidate parents)) occurrences
    # flattened: for each (episode, v) success event, the edge ids of all
    # candidate parents.  Failure counts are a flat per-edge vector.
    success_groups: list[np.ndarray] = []
    success_counts = np.zeros(m, dtype=np.int64)
    failure_counts = np.zeros(m, dtype=np.int64)
    for episode in episodes:
        for v in range(n):
            t_v = int(episode[v])
            lo, hi = int(in_indptr[v]), int(in_indptr[v + 1])
            if lo == hi:
                continue
            parents = in_src[lo:hi]
            eids = in_eid[lo:hi]
            parent_times = episode[parents]
            if t_v > 0:
                # Candidate causes: parents active exactly one step before.
                cause = parent_times == t_v - 1
                if np.any(cause):
                    group = eids[cause]
                    success_groups.append(group)
                    success_counts[group] += 1
                # Parents active earlier than t_v - 1 tried and failed.
                failed = (parent_times >= 0) & (parent_times < t_v - 1)
                failure_counts[eids[failed]] += 1
            elif t_v < 0:
                # v never activated: every active parent tried and failed.
                failed = parent_times >= 0
                failure_counts[eids[failed]] += 1
            # t_v == 0: v is a seed; no parent attempt is observable.

    observations = success_counts + failure_counts
    p = np.full(m, 0.5 if initial is None else float(initial), dtype=np.float64)
    if initial is not None and not 0.0 < initial < 1.0:
        raise EstimationError(f"initial must lie in (0, 1), got {initial}")

    observed = observations > 0
    iterations = 0
    converged = False
    log_likelihoods = [_log_likelihood(p, success_groups, failure_counts)]
    for iterations in range(1, max_iterations + 1):
        credit = np.zeros(m, dtype=np.float64)
        for group in success_groups:
            probs = p[group]
            hazard = 1.0 - np.prod(1.0 - probs)
            if hazard <= 0.0:
                # All-zero parents: split the credit uniformly to escape the
                # absorbing state.
                credit[group] += 1.0 / group.size
            else:
                credit[group] += probs / hazard
        new_p = p.copy()
        new_p[observed] = credit[observed] / observations[observed]
        np.clip(new_p, 0.0, 1.0, out=new_p)
        delta = float(np.abs(new_p - p).max()) if m else 0.0
        p = new_p
        log_likelihoods.append(_log_likelihood(p, success_groups, failure_counts))
        if delta < tolerance:
            converged = True
            break
    return EMResult(
        probabilities=p,
        iterations=iterations,
        converged=converged,
        observations=observations,
        log_likelihoods=tuple(log_likelihoods),
    )
