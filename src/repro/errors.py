"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  Each subclass corresponds to one layer of the
system (graphs, models, algorithms, learning, experiments).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or out-of-range node ids."""


class EdgeProbabilityError(GraphError):
    """Raised when an edge influence probability is outside ``[0, 1]``."""


class GapError(ReproError):
    """Raised for invalid Global Adoption Probability configurations."""


class RegimeError(GapError):
    """Raised when an algorithm requires a GAP regime that does not hold.

    For example :class:`~repro.rrset.rr_sim.RRSimGenerator` requires one-way
    complementarity (``q_a_given_b >= q_a`` and ``q_b_given_a == q_b``); it
    raises :class:`RegimeError` when given other parameters.
    """


class SeedSetError(ReproError):
    """Raised for invalid seed-set arguments (overlap, size, range)."""


class ConvergenceError(ReproError):
    """Raised when an iterative procedure fails to converge."""


class ActionLogError(ReproError):
    """Raised for malformed action logs or impossible event orderings."""


class LogFormatError(ActionLogError):
    """A malformed line in a serialised action log, with its location.

    Raised by :func:`~repro.learning.log_io.load_action_log` so callers
    can report (and tooling can jump to) the offending line: ``path`` and
    ``line_no`` are carried as attributes, and the message is prefixed
    ``path:line_no:`` in the usual compiler style.  Subclasses
    :class:`ActionLogError`, so existing except clauses keep working.
    """

    def __init__(self, path: object, line_no: int, message: str) -> None:
        super().__init__(f"{path}:{line_no}: {message}")
        self.path = str(path)
        self.line_no = int(line_no)


class EstimationError(ReproError):
    """Raised when a statistical estimate cannot be formed (e.g. no data)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid configurations."""


class PipelineError(ReproError):
    """Raised by the log-to-query pipeline (:mod:`repro.pipeline`).

    Covers invalid pipeline configurations (unknown backend, malformed
    stage knobs), missing inputs (an EM backend with no episode corpus),
    and unusable working directories.
    """


class QueryError(ReproError):
    """Raised by the declarative query API (:mod:`repro.api`).

    Covers malformed queries and configs, unknown objectives / engines /
    RR-set regimes in the registry, and session misuse (e.g. a query that
    needs GAPs on a session constructed without them).
    """


class ParallelError(ReproError):
    """Raised by the multiprocess engine (:mod:`repro.parallel`).

    Covers lifecycle misuse — most importantly reusing a
    :class:`~repro.parallel.ParallelEngine` after :meth:`close` (for
    example via a stale reference to a session pool entry that was
    evicted and reloaded), which used to surface as an inscrutable
    ``BrokenProcessPool`` from the executor internals.
    """


class DeadlineExceeded(ReproError):
    """Cooperative signal that a query's wall-clock budget expired.

    Raised internally at sampling boundaries (TIM/IMM top-ups, parallel
    shard joins) when ``EngineConfig.deadline_s`` runs out.  Callers of
    the query API never see it: :class:`~repro.api.session.ComICSession`
    catches it and returns a best-effort result stamped
    ``degraded=True`` in ``InfluenceResult.diagnostics``.
    """


class DeltaError(ReproError):
    """Raised for invalid graph mutations (:class:`~repro.graph.GraphDelta`).

    Covers malformed delta payloads (bad endpoints or probabilities,
    duplicate edits of one edge) and deltas that do not apply to the
    target graph (removing or reweighting an edge that does not exist,
    adding one that already does, endpoints outside the node range).
    """


class StoreError(ReproError):
    """Raised by the persistent pool store (:mod:`repro.store`).

    Covers unusable store roots, malformed entry directories, and invalid
    save/load arguments.  :class:`StoreIntegrityError` specialises the
    data-doesn't-match-manifest case.
    """


class StoreIntegrityError(StoreError):
    """Raised when a store entry fails validation against its manifest.

    A corrupted column file (checksum or shape mismatch), an unreadable or
    tampered manifest, or a manifest whose cache key / graph fingerprint
    disagrees with what the caller asked for all raise this.  The
    forgiving :meth:`~repro.store.PoolStore.load` entry point catches it
    and reports a miss (counting an invalidation) instead.

    ``reason`` carries the typed
    :class:`~repro.invalidation.InvalidationReason` so reason accounting
    never has to parse the message; omitted (legacy raise sites), it is
    inferred from the message text by the deprecation shim.
    """

    def __init__(self, message: str, *, reason=None) -> None:
        super().__init__(message)
        if reason is None:
            import warnings

            from repro.invalidation import coerce_reason

            with warnings.catch_warnings():
                # Inference from message text is the shim's own job here,
                # not a caller mistake — keep it quiet.
                warnings.simplefilter("ignore", DeprecationWarning)
                reason = coerce_reason(message)
        else:
            from repro.invalidation import coerce_reason

            reason = coerce_reason(reason)
        self.reason = reason
