"""Workload handlers: the solver cores behind the declarative queries.

Each ``run_*`` function implements one registered objective against a
:class:`~repro.api.session.ComICSession`.  All four workloads now have an
RR-set-backed route through :meth:`ComICSession.select_seeds` (which is
what buys cross-query pool reuse): SelfInfMax and CompInfMax always take
it, while blocking and the focal multi-item path take it when their
query's ``method`` and GAP regime allow (``"rr-block"`` suppression sets,
or the focal problem's reduction to SelfInfMax with the other item's
seeds as context) and otherwise run the Monte-Carlo CELF / round-robin
greedy directly.  The legacy public functions in :mod:`repro.algorithms`
are deprecation shims that build a throwaway session and call these
handlers via the registry, so old and new entry points share one
implementation.

Every handler fills one *diagnostics envelope* so downstream reporting
can consume results of different workloads uniformly: ``regime`` (the RR
regime sampled, or ``"mc"``), ``theta`` (RR sample count; ``None`` on MC
routes), ``mc_runs`` (per-evaluation MC budget; ``None`` on RR routes)
and ``candidate_pool`` (size of the restricted seed pool; ``None`` when
unrestricted).  The session adds ``wall_s`` / ``rr_sets_sampled`` / pool
totals on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.algorithms.blocking import estimate_suppression
from repro.algorithms.greedy import celf_greedy, greedy_compinfmax, greedy_selfinfmax
from repro.algorithms.sandwich import sandwich_select
from repro.api.config import EngineConfig
from repro.api.queries import (
    BlockingQuery,
    CompInfMaxQuery,
    MultiItemQuery,
    SelfInfMaxQuery,
)
from repro.api.registry import MC_ENGINE
from repro.api.results import InfluenceResult
from repro.errors import RegimeError, SeedSetError
from repro.models.gaps import GAP
from repro.models.multi_item import estimate_multi_item_spread
from repro.models.spread import estimate_boost, estimate_spread
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import ComICSession


def run_selfinfmax(
    session: "ComICSession",
    query: SelfInfMaxQuery,
    config: EngineConfig,
    rng: np.random.Generator,
) -> InfluenceResult:
    """SelfInfMax: single submodular run or Sandwich Approximation (§6.4)."""
    from repro.algorithms.selfinfmax import SelfInfMaxResult

    gaps = session.resolve_gaps(query.gaps)
    if not gaps.is_mutually_complementary:
        raise RegimeError(
            f"SelfInfMax is defined for mutually complementary GAPs (Q+); got {gaps}"
        )
    graph = session.graph
    seeds_b = [int(s) for s in query.seeds_b]
    regime = "rr-sim+" if query.use_rr_sim_plus else "rr-sim"
    diagnostics: dict = {
        "regime": regime, "mc_runs": None, "candidate_pool": None,
    }

    if gaps.b_indifferent_to_a:
        sel = session.select_seeds(regime, gaps, seeds_b, query.k, config, rng)
        raw = SelfInfMaxResult(
            seeds=sel.seeds, method="submodular", tim_results={"sigma": sel}
        )
        diagnostics["theta"] = sel.theta
        estimate: Optional[float] = sel.estimated_objective
    else:
        diagnostics["fallback"] = (
            "GAPs are not B-indifferent (q_B|0 != q_B|A): objective may be "
            "non-submodular, using Sandwich Approximation"
        )
        nu_gaps = gaps.with_b_indifferent_high()
        mu_gaps = gaps.with_b_indifferent_low()
        sel_nu = session.select_seeds(regime, nu_gaps, seeds_b, query.k, config, rng)
        sel_mu = session.select_seeds(regime, mu_gaps, seeds_b, query.k, config, rng)
        candidates: dict[str, list[int]] = {"nu": sel_nu.seeds, "mu": sel_mu.seeds}
        if query.include_greedy_candidate:
            candidates["sigma"] = greedy_selfinfmax(
                graph, gaps, seeds_b, query.k, runs=query.greedy_runs, rng=rng
            )
        eval_seed = int(rng.integers(0, 2**31 - 1))

        def sigma(seed_list: Sequence[int]) -> float:
            return estimate_spread(
                graph, gaps, seed_list, seeds_b,
                runs=query.evaluation_runs, rng=eval_seed,
            ).mean

        chosen = sandwich_select(candidates, sigma)
        raw = SelfInfMaxResult(
            seeds=chosen.seeds,
            method="sandwich",
            tim_results={"nu": sel_nu, "mu": sel_mu},
            sandwich=chosen,
            estimated_spread=chosen.value,
        )
        diagnostics["theta"] = {"nu": sel_nu.theta, "mu": sel_mu.theta}
        estimate = chosen.value

    return InfluenceResult(
        objective=query.objective,
        seeds=list(raw.seeds),
        method=raw.method,
        engine=config.engine,
        estimate=estimate,
        diagnostics=diagnostics,
        query=query,
        raw=raw,
    )


def run_compinfmax(
    session: "ComICSession",
    query: CompInfMaxQuery,
    config: EngineConfig,
    rng: np.random.Generator,
) -> InfluenceResult:
    """CompInfMax: RR-CIM run, one-sided Sandwich when ``q_B|A < 1``."""
    from repro.algorithms.compinfmax import CompInfMaxResult

    gaps = session.resolve_gaps(query.gaps)
    if not gaps.is_mutually_complementary:
        raise RegimeError(
            f"CompInfMax is defined for mutually complementary GAPs (Q+); got {gaps}"
        )
    graph = session.graph
    seeds_a = [int(s) for s in query.seeds_a]
    diagnostics: dict = {
        "regime": "rr-cim", "mc_runs": None, "candidate_pool": None,
    }

    if gaps.q_b_given_a == 1.0:
        sel = session.select_seeds("rr-cim", gaps, seeds_a, query.k, config, rng)
        raw = CompInfMaxResult(
            seeds=sel.seeds, method="submodular", tim_results={"sigma": sel}
        )
        diagnostics["theta"] = sel.theta
        estimate: Optional[float] = sel.estimated_objective
    else:
        diagnostics["fallback"] = (
            "q_B|A < 1: boost may be non-submodular, using one-sided "
            "Sandwich Approximation"
        )
        nu_gaps = gaps.with_q_b_given_a_one()
        sel_nu = session.select_seeds("rr-cim", nu_gaps, seeds_a, query.k, config, rng)
        candidates: dict[str, list[int]] = {"nu": sel_nu.seeds}
        if query.include_greedy_candidate:
            candidates["sigma"] = greedy_compinfmax(
                graph, gaps, seeds_a, query.k, runs=query.greedy_runs, rng=rng
            )
        eval_seed = int(rng.integers(0, 2**31 - 1))

        def boost(seed_list: Sequence[int]) -> float:
            if not seed_list:
                return 0.0
            return estimate_boost(
                graph, gaps, seeds_a, seed_list,
                runs=query.evaluation_runs, rng=eval_seed,
            ).mean

        chosen = sandwich_select(candidates, boost)
        raw = CompInfMaxResult(
            seeds=chosen.seeds,
            method="sandwich",
            tim_results={"nu": sel_nu},
            sandwich=chosen,
            estimated_boost=chosen.value,
        )
        diagnostics["theta"] = {"nu": sel_nu.theta}
        estimate = chosen.value

    return InfluenceResult(
        objective=query.objective,
        seeds=list(raw.seeds),
        method=raw.method,
        engine=config.engine,
        estimate=estimate,
        diagnostics=diagnostics,
        query=query,
        raw=raw,
    )


def run_blocking(
    session: "ComICSession",
    query: BlockingQuery,
    config: EngineConfig,
    rng: np.random.Generator,
) -> InfluenceResult:
    """Influence blocking (Q-): pooled RR-Block max-coverage or MC CELF.

    The RR route (``method="rr"``, or ``"auto"`` when the GAPs show
    one-way competition) selects by greedy max-coverage over pooled
    suppression sets through the session's tim/imm engine — a heuristic
    for the greedy blocker (Appendix B.4 / Example 5), orders of
    magnitude faster than per-evaluation MC.  Candidate pools always
    exclude ``seeds_a``.
    """
    gaps = session.resolve_gaps(query.gaps)
    if not gaps.is_mutually_competitive:
        raise RegimeError(
            f"influence blocking is defined for mutual competition (Q-); got {gaps}"
        )
    graph = session.graph
    seeds_a = [int(s) for s in query.seeds_a]
    pool = _unoccupied_pool(graph.num_nodes, query.candidates, seeds_a)
    if query.k > len(pool):
        raise SeedSetError(
            f"cannot select {query.k} blockers from {len(pool)} candidates "
            "(A-seeds are excluded from the pool)"
        )
    rr_capable = gaps.b_indifferent_to_a
    if query.method == "rr" and not rr_capable:
        raise RegimeError(
            "blocking method='rr' requires one-way competition "
            f"(q_{{B|0}} = q_{{B|A}}); got {gaps} — use method='mc'"
        )
    if query.method == "rr" or (query.method == "auto" and rr_capable):
        sel = session.select_seeds(
            "rr-block", gaps, seeds_a, query.k, config, rng, candidates=pool
        )
        return InfluenceResult(
            objective=query.objective,
            seeds=sel.seeds,
            method="rr-greedy",
            engine=config.engine,
            estimate=sel.estimated_objective,
            diagnostics={
                "regime": "rr-block",
                "theta": sel.theta,
                "mc_runs": None,
                "candidate_pool": len(pool),
            },
            query=query,
            raw=sel,
        )

    diagnostics: dict = {
        "regime": MC_ENGINE,
        "theta": None,
        "mc_runs": query.runs,
        "candidate_pool": len(pool),
    }
    if query.method == "auto" and not rr_capable:
        diagnostics["fallback"] = (
            "GAPs are not B-indifferent (q_B|0 != q_B|A): RR-Block sampling "
            "unavailable, using Monte-Carlo CELF"
        )
    mc_seed = int(rng.integers(0, 2**31 - 1))

    def objective(seed_list: Sequence[int]) -> float:
        if not seed_list:
            return 0.0
        return estimate_suppression(
            graph, gaps, seeds_a, seed_list, runs=query.runs,
            rng=derive_seed(mc_seed, len(seed_list), *map(int, seed_list)),
        ).mean

    seeds, trace = celf_greedy(pool, query.k, objective, base_value=0.0)
    return InfluenceResult(
        objective=query.objective,
        seeds=seeds,
        method="celf-greedy",
        engine=MC_ENGINE,
        estimate=trace[-1] if trace else 0.0,
        diagnostics=diagnostics,
        query=query,
        raw=(seeds, trace),
    )


def _unoccupied_pool(
    num_nodes: int,
    candidates: Optional[Sequence[int]],
    occupied_seeds: Sequence[int],
) -> list[int]:
    """Candidate node pool with already-occupied seeds excluded.

    The all-nodes default stays vectorised (``setdiff1d`` over ``arange``)
    so the hot RR route never pays an O(n) Python loop per query.
    """
    occupied_arr = np.asarray(list(occupied_seeds), dtype=np.int64)
    if candidates is None:
        pool = np.setdiff1d(
            np.arange(num_nodes, dtype=np.int64), occupied_arr,
            assume_unique=False,
        )
        return pool.tolist()
    occupied = set(int(s) for s in occupied_seeds)
    return [int(v) for v in candidates if int(v) not in occupied]


def _focal_pairwise_gap(gaps, item: int) -> GAP:
    """Project a two-item model onto a pairwise GAP with ``item`` as A."""
    other = 1 - item
    return GAP(
        q_a=gaps.q(item, frozenset()),
        q_a_given_b=gaps.q(item, frozenset({other})),
        q_b=gaps.q(other, frozenset()),
        q_b_given_a=gaps.q(other, frozenset({item})),
    )


def run_multi_item(
    session: "ComICSession",
    query: MultiItemQuery,
    config: EngineConfig,
    rng: np.random.Generator,
) -> InfluenceResult:
    """k-item extension: focal-item greedy or round-robin allocation.

    The focal-item problem reduces to SelfInfMax with the other item's
    seeds as context, so two-item models in the RR-SIM regime (and an
    empty focal seed set) answer it by pooled RR-SIM+ selection
    (``method="rr"``/eligible ``"auto"``); other shapes run the
    Monte-Carlo CELF greedy.  Round-robin allocation is always MC.
    Candidate pools exclude the focal item's already-fixed seeds.
    """
    gaps = session.resolve_multi_item_gaps()
    graph = session.graph

    if query.item is not None:
        item = int(query.item)
        if not 0 <= item < gaps.num_items:
            raise SeedSetError(
                f"item must lie in [0, {gaps.num_items - 1}], got {item}"
            )
        fixed = query.fixed_seed_sets or ()
        if len(fixed) != gaps.num_items:
            raise SeedSetError(
                f"expected {gaps.num_items} seed sets, got {len(fixed)}"
            )
        base_sets = [list(s) for s in fixed]
        pool = _unoccupied_pool(
            graph.num_nodes, query.candidates, base_sets[item]
        )
        pair: Optional[GAP] = None
        if gaps.num_items == 2 and not base_sets[item]:
            pair = _focal_pairwise_gap(gaps, item)
        rr_capable = pair is not None and pair.is_one_way_complementarity_for_a
        if query.method == "rr" and not rr_capable:
            raise RegimeError(
                "focal multi-item method='rr' needs a two-item model in the "
                "RR-SIM regime (focal item one-way complemented, other item "
                "indifferent) and an empty focal seed set — use method='mc'"
            )
        if query.method == "rr" or (query.method == "auto" and rr_capable):
            seeds_ctx = base_sets[1 - item]
            sel = session.select_seeds(
                "rr-sim+", pair, seeds_ctx, query.budget, config, rng,
                candidates=pool,
            )
            return InfluenceResult(
                objective=query.objective,
                seeds=sel.seeds,
                method="rr-greedy",
                engine=config.engine,
                estimate=sel.estimated_objective,
                diagnostics={
                    "regime": "rr-sim+",
                    "theta": sel.theta,
                    "mc_runs": None,
                    "candidate_pool": len(pool),
                    "item": item,
                    "num_items": gaps.num_items,
                },
                query=query,
                raw=sel,
            )

        eval_seed = int(rng.integers(0, 2**31 - 1))

        def objective(extra: Sequence[int]) -> float:
            trial = [list(s) for s in base_sets]
            trial[item] = base_sets[item] + [int(v) for v in extra]
            spreads = estimate_multi_item_spread(
                graph, gaps, trial, runs=query.runs,
                rng=derive_seed(eval_seed, len(extra), *map(int, extra)),
            )
            return float(spreads[item])

        seeds, trace = celf_greedy(pool, query.budget, objective)
        return InfluenceResult(
            objective=query.objective,
            seeds=seeds,
            method="celf-greedy",
            engine=MC_ENGINE,
            estimate=trace[-1] if trace else None,
            diagnostics={
                "regime": MC_ENGINE,
                "theta": None,
                "mc_runs": query.runs,
                "candidate_pool": len(pool),
                "item": item,
                "num_items": gaps.num_items,
            },
            query=query,
            raw=(seeds, trace),
        )

    # Round-robin allocation across all items (host's view), optionally
    # extending an existing per-item allocation.  There is no RR-set
    # formulation of the joint allocation, so a forced RR route must
    # fail loudly rather than silently running Monte-Carlo.
    if query.method == "rr":
        raise RegimeError(
            "round-robin multi-item allocation has no RR route; "
            "method='rr' needs a focal item — use method='mc' or 'auto'"
        )
    eval_seed = int(rng.integers(0, 2**31 - 1))
    num_items = gaps.num_items
    if query.fixed_seed_sets is not None:
        if len(query.fixed_seed_sets) != num_items:
            raise SeedSetError(
                f"expected {num_items} seed sets, got {len(query.fixed_seed_sets)}"
            )
        seed_sets = [list(s) for s in query.fixed_seed_sets]
    else:
        seed_sets = [[] for _ in range(num_items)]
    pool = (
        list(query.candidates)
        if query.candidates is not None
        else list(range(graph.num_nodes))
    )
    allocation_order: list[int] = []
    for t in range(query.budget):
        # Feed the currently least-seeded item (lowest index on ties).
        # From empty sets this is exactly the classic t % num_items
        # rotation; from a fixed starting allocation it *continues* the
        # rotation instead of double-feeding low-index items.
        item = min(range(num_items), key=lambda i: (len(seed_sets[i]), i))
        taken = set(seed_sets[item])
        best_node, best_total = None, -np.inf
        for v in pool:
            if v in taken:
                continue
            trial = [list(s) for s in seed_sets]
            trial[item].append(v)
            total = float(
                estimate_multi_item_spread(
                    graph, gaps, trial, runs=query.runs,
                    rng=derive_seed(eval_seed, t, v),
                ).sum()
            )
            if total > best_total:
                best_node, best_total = v, total
        if best_node is None:
            break
        seed_sets[item].append(best_node)
        allocation_order.append(best_node)
    estimate = (
        float(
            estimate_multi_item_spread(
                graph, gaps, seed_sets, runs=query.runs,
                rng=derive_seed(eval_seed, query.budget + 1),
            ).sum()
        )
        if allocation_order
        else None
    )
    return InfluenceResult(
        objective=query.objective,
        seeds=allocation_order,
        method="round-robin",
        engine=MC_ENGINE,
        estimate=estimate,
        diagnostics={
            "regime": MC_ENGINE,
            "theta": None,
            "mc_runs": query.runs,
            "candidate_pool": len(pool),
            "num_items": num_items,
        },
        query=query,
        raw=seed_sets,
        seed_sets=seed_sets,
    )
