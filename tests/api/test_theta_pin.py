"""Stored-theta fast path: warm starts pin IMM to zero top-up sampling."""

import pytest

from repro.api import (
    BlockingQuery,
    ComICSession,
    EngineConfig,
    SelfInfMaxQuery,
)
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import GAP

GAPS = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
QUERY = SelfInfMaxQuery(seeds_b=(0, 1), k=5)
CONFIG = EngineConfig(engine="imm", max_rr_sets=1500)


@pytest.fixture(scope="module")
def graph():
    return weighted_cascade_probabilities(power_law_digraph(250, rng=9))


class TestInSessionPin:
    def test_repeat_query_pins_and_matches(self, graph):
        session = ComICSession(graph, GAPS, config=CONFIG, rng=1)
        first = session.run(QUERY)
        assert session.stats.theta_pins == 0
        repeat = session.run(QUERY)
        assert session.stats.theta_pins == 1
        assert repeat.diagnostics["rr_sets_sampled"] == 0
        assert repeat.seeds == first.seeds

    def test_different_k_does_not_pin(self, graph):
        session = ComICSession(graph, GAPS, config=CONFIG, rng=1)
        session.run(QUERY)
        session.run(SelfInfMaxQuery(seeds_b=(0, 1), k=3))
        assert session.stats.theta_pins == 0

    def test_different_epsilon_does_not_pin(self, graph):
        session = ComICSession(graph, GAPS, config=CONFIG, rng=1)
        session.run(QUERY)
        tighter = EngineConfig(engine="imm", max_rr_sets=1500, epsilon=0.3)
        result = session.run(QUERY, config=tighter)
        assert session.stats.theta_pins == 0
        assert result.diagnostics["rr_sets_sampled"] >= 0  # adaptive rerun

    def test_tim_engine_never_pins(self, graph):
        config = EngineConfig(engine="tim", max_rr_sets=1500)
        session = ComICSession(graph, GAPS, config=config, rng=1)
        session.run(QUERY)
        session.run(QUERY)
        assert session.stats.theta_pins == 0

    def test_candidate_restriction_does_not_pin(self, graph):
        # blocking is the workload that restricts pickable seeds; a
        # candidate-restricted selection must never record or reuse theta
        blocking_gaps = GAP(0.6, 0.2, 0.6, 0.6)
        session = ComICSession(graph, blocking_gaps, config=CONFIG, rng=1)
        query = BlockingQuery(
            seeds_a=(5,), k=2, method="rr", candidates=tuple(range(100))
        )
        session.run(query)
        session.run(query)
        assert session.stats.theta_pins == 0


class TestCrossSessionPin:
    def test_store_warm_start_pins_to_zero_topup(self, graph, tmp_path):
        cold = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1)
        first = cold.run(QUERY)
        assert first.diagnostics["rr_sets_sampled"] > 0

        warm = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=77)
        second = warm.run(QUERY)
        assert warm.stats.theta_pins == 1
        assert second.diagnostics["rr_sets_sampled"] == 0
        assert second.seeds == first.seeds

    def test_selection_record_rides_the_manifest(self, graph, tmp_path):
        session = ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1)
        session.run(QUERY)
        store = session.store
        (manifest,) = list(store.entries())
        record = manifest.provenance["selection"]
        assert record["engine"] == "imm"
        assert record["k"] == 5
        assert record["epsilon"] == CONFIG.epsilon
        assert record["theta"] >= 1

    def test_store_pin_requires_matching_knobs(self, graph, tmp_path):
        ComICSession(graph, GAPS, config=CONFIG, store=tmp_path, rng=1).run(QUERY)
        other = EngineConfig(engine="imm", max_rr_sets=1500, ell=2.0)
        warm = ComICSession(graph, GAPS, config=other, store=tmp_path, rng=2)
        warm.run(QUERY)
        assert warm.stats.theta_pins == 0
