"""GraphDelta: validation, JSON round-trips, and apply semantics."""

import numpy as np
import pytest

from repro.errors import DeltaError
from repro.graph import DiGraph, GraphDelta, apply_delta, path_digraph


def small_graph() -> DiGraph:
    # 0->1, 1->2, 2->3, 3->4 with unit probabilities.
    return path_digraph(5)


class TestConstruction:
    def test_empty_delta_is_falsy_noop(self):
        d = GraphDelta()
        assert not d
        assert d.num_edits == 0
        assert GraphDelta(remove=((0, 1),))

    def test_self_loop_rejected(self):
        with pytest.raises(DeltaError, match="self-loop"):
            GraphDelta(add=((2, 2, 0.5),))

    def test_duplicate_edit_rejected(self):
        with pytest.raises(DeltaError):
            GraphDelta(remove=((0, 1), (0, 1)))

    def test_cross_batch_duplicate_rejected(self):
        with pytest.raises(DeltaError):
            GraphDelta(remove=((0, 1),), reweight=((0, 1, 0.5),))

    def test_bad_probability_rejected(self):
        with pytest.raises(DeltaError):
            GraphDelta(add=((0, 1, 1.5),))
        with pytest.raises(DeltaError):
            GraphDelta(reweight=((0, 1, -0.1),))

    def test_num_edits_and_churn(self):
        d = GraphDelta(add=((0, 2, 0.5),), remove=((1, 2),))
        assert d.num_edits == 2
        assert d.churn(small_graph()) == pytest.approx(2 / 4)


class TestSerialisation:
    def test_json_round_trip(self):
        d = GraphDelta(
            add=((0, 3, 0.25),),
            remove=((1, 2),),
            reweight=((2, 3, 0.75),),
        )
        assert GraphDelta.from_json(d.to_json()) == d

    def test_dict_round_trip_preserves_kind_tag(self):
        d = GraphDelta(remove=((0, 1),))
        payload = d.to_dict()
        assert payload["kind"] == "graph_delta"
        assert GraphDelta.from_dict(payload) == d

    def test_from_dict_rejects_foreign_payload(self):
        with pytest.raises(DeltaError):
            GraphDelta.from_dict({"kind": "not_a_delta"})

    def test_list_inputs_normalise_to_tuples(self):
        a = GraphDelta(remove=[[1, 2], (0, 1)], add=[[0, 4, 0.5]])
        assert a.remove == ((1, 2), (0, 1))
        assert a.add == ((0, 4, 0.5),)
        assert GraphDelta.from_json(a.to_json()) == a


class TestApply:
    def test_add_remove_reweight(self):
        g = small_graph()
        d = GraphDelta(
            add=((0, 2, 0.5),), remove=((1, 2),), reweight=((2, 3, 0.9),)
        )
        eff = apply_delta(g, d)
        new = eff.graph
        assert new.num_edges == 4
        assert new.edge_probability(0, 2) == pytest.approx(0.5)
        assert new.edge_probability(2, 3) == pytest.approx(0.9)
        assert not new.has_edge(1, 2)
        # the original graph is untouched
        assert g.has_edge(1, 2)
        assert g.edge_probability(2, 3) == pytest.approx(1.0)

    def test_effect_changed_edges_and_mask(self):
        g = small_graph()
        d = GraphDelta(
            add=((0, 2, 0.5),), remove=((1, 2),), reweight=((2, 3, 0.9),)
        )
        eff = apply_delta(g, d)
        # old edge ids: (0,1)=0, (1,2)=1, (2,3)=2, (3,4)=3
        assert eff.changed_old_edges.tolist() == [1, 2]
        mask = eff.changed_target_mask()
        # targets of removed (1,2), reweighted (2,3) and added (0,2)
        assert mask.tolist() == [False, False, True, True, False]

    def test_old_to_new_edge_mapping(self):
        g = small_graph()
        d = GraphDelta(add=((0, 2, 0.5),), remove=((1, 2),))
        eff = apply_delta(g, d)
        old_to_new = eff.old_to_new_edge
        assert old_to_new.shape == (g.num_edges,)
        assert old_to_new[1] == -1  # removed edge maps nowhere
        src, dst = eff.graph.edge_sources, eff.graph.edge_targets
        for old_eid in (0, 2, 3):
            new_eid = old_to_new[old_eid]
            assert src[new_eid] == g.edge_sources[old_eid]
            assert dst[new_eid] == g.edge_targets[old_eid]

    def test_graph_apply_delta_method_returns_new_graph(self):
        g = small_graph()
        d = GraphDelta(reweight=((0, 1, 0.5),))
        new = g.apply_delta(d)
        assert new.edge_probability(0, 1) == pytest.approx(0.5)
        assert g.edge_probability(0, 1) == pytest.approx(1.0)
        eff = apply_delta(g, d)
        assert eff.old_graph is g
        assert eff.graph.fingerprint() == new.fingerprint()

    def test_remove_missing_edge_rejected(self):
        with pytest.raises(DeltaError, match="does not exist"):
            apply_delta(small_graph(), GraphDelta(remove=((0, 4),)))

    def test_reweight_missing_edge_rejected(self):
        with pytest.raises(DeltaError, match="does not exist"):
            apply_delta(small_graph(), GraphDelta(reweight=((0, 4, 0.5),)))

    def test_add_existing_edge_rejected(self):
        with pytest.raises(DeltaError, match="already exists"):
            apply_delta(small_graph(), GraphDelta(add=((0, 1, 0.5),)))

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(DeltaError):
            apply_delta(small_graph(), GraphDelta(add=((0, 9, 0.5),)))

    def test_fingerprint_changes_and_is_deterministic(self):
        g = small_graph()
        d = GraphDelta(reweight=((0, 1, 0.5),))
        f1 = g.apply_delta(d).fingerprint()
        f2 = small_graph().apply_delta(d).fingerprint()
        assert f1 == f2
        assert f1 != g.fingerprint()

    def test_pure_reweight_keeps_edge_ids(self):
        g = small_graph()
        eff = apply_delta(g, GraphDelta(reweight=((2, 3, 0.1),)))
        assert eff.old_to_new_edge.tolist() == [0, 1, 2, 3]
        assert eff.node_count_stable
