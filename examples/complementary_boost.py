"""CompInfMax: boosting an existing product by seeding its complement (§4).

Item A (say, a game console) already has organic early adopters that the
campaign cannot choose.  The platform owner can, however, seed the
complementary item B (a hit game title, q_{B|A} = 1: every console owner
who hears of it adopts it).  CompInfMax asks for the k B-seeds maximising
the *increase* in A adoptions — Problem 2 of the paper, solved by
GeneralTIM over RR-CIM sets.

Also demonstrates Theorem 2's special case: when q_{B|∅} = 1 and the
budget covers |S_A|, simply copying the A-seeds is provably optimal.

Run:  python examples/complementary_boost.py
"""

from repro import ComICSession, CompInfMaxQuery, EngineConfig, GAP, estimate_boost
from repro.algorithms import (
    copying_seeds,
    high_degree_seeds,
    random_seeds,
    theorem2_optimal_b_seeds,
)
from repro.datasets import load_dataset

K = 8
MC_RUNS = 400


def main() -> None:
    graph = load_dataset("douban-book", scale=0.05, rng=21)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Console adopts rarely on its own (q_a = 0.1) but almost surely once
    # the game is owned (q_{A|B} = 0.9); every console owner wants the game.
    gaps = GAP(q_a=0.1, q_a_given_b=0.9, q_b=0.4, q_b_given_a=1.0)
    print(f"GAPs: {gaps} (RR-CIM regime: {gaps.is_rr_cim_regime})")

    # Organic A adopters: a random crowd, as in real campaigns.
    seeds_a = random_seeds(graph, 25, rng=1)

    session = ComICSession(
        graph, gaps, config=EngineConfig(theta_override=5000), rng=2
    )
    result = session.run(CompInfMaxQuery(seeds_a=tuple(seeds_a), k=K))
    print(f"\nGeneralTIM ({result.method}) B-seeds: {result.seeds}")

    strategies = {
        "GeneralTIM": result.seeds,
        "Copying(A-seeds)": copying_seeds(graph, K, seeds_a),
        "HighDegree": high_degree_seeds(graph, K),
        "Random": random_seeds(graph, K, rng=3),
    }
    print(f"\nboost in A adoptions (paired MC, {MC_RUNS} runs):")
    for name, seeds in strategies.items():
        boost = estimate_boost(graph, gaps, seeds_a, seeds, runs=MC_RUNS, rng=4)
        print(f"  {name:18s} {boost.mean:8.2f} ± {boost.stderr:.2f}")

    # Theorem 2: with q_{B|∅} = 1 and budget >= |S_A|, copying is optimal.
    t2_gaps = GAP(q_a=0.1, q_a_given_b=0.9, q_b=1.0, q_b_given_a=1.0)
    seeds_a_small = random_seeds(graph, 5, rng=5)
    optimal = theorem2_optimal_b_seeds(graph, seeds_a_small, 6, rng=6)
    boost = estimate_boost(
        graph, t2_gaps, seeds_a_small, optimal, runs=MC_RUNS, rng=7
    )
    print(
        f"\nTheorem 2 regime (q_B|0=1, k=6 >= |S_A|=5): copying A-seeds "
        f"boosts A by {boost.mean:.2f} ± {boost.stderr:.2f} (provably optimal)"
    )


if __name__ == "__main__":
    main()
