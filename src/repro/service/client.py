"""A minimal stdlib client for the Com-IC query daemon.

:class:`ServiceClient` wraps ``http.client`` — JSON in, JSON out, one
persistent HTTP/1.1 connection per client — so tests, benchmarks and
scripts talk to :class:`~repro.service.server.ComICServer` without
``requests`` or any other dependency::

    client = ServiceClient(host, port)
    body = client.query("demo", SelfInfMaxQuery(seeds_b=(0,), k=5), rng=7)
    body["seeds"], body["diagnostics"]["rr_sets_sampled"]

Errors come back as :class:`ServiceClientError` carrying the HTTP status
and the server's ``{"error": ...}`` message.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping, Optional

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One connection to a running :class:`ComICServer`.

    Not thread-safe (``http.client`` connections are not); concurrent
    benchmark clients each construct their own.
    """

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 60.0
    ) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._conn.close()  # reset for reuse after a broken exchange
            raise ServiceClientError(0, f"transport failure: {exc}") from exc
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceClientError(
                response.status, f"non-JSON response: {exc}"
            ) from exc
        if response.status >= 400:
            raise ServiceClientError(
                response.status, str(decoded.get("error", decoded))
            )
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """GET /health."""
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        """GET /stats."""
        return self._request("GET", "/stats")

    def graphs(self) -> dict[str, Any]:
        """GET /graphs."""
        return self._request("GET", "/graphs")

    def catalog(self, graph: Optional[str] = None) -> dict[str, Any]:
        """GET /catalog (or /catalog/<graph>)."""
        path = "/catalog" if graph is None else f"/catalog/{graph}"
        return self._request("GET", path)

    def query(
        self,
        graph: str,
        query: Any,
        *,
        config: Optional[Mapping[str, Any]] = None,
        rng: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> dict[str, Any]:
        """POST /query/<graph>; returns the ``InfluenceResult`` envelope.

        ``query`` is a query dataclass (``to_dict`` is called) or an
        already-tagged payload dict.  ``config`` is a partial dict of
        :class:`~repro.api.config.EngineConfig` overrides; ``rng`` pins
        the request's randomness (and enables single-flight coalescing
        server-side); ``deadline_s`` bounds its wall clock.
        """
        payload: dict[str, Any] = {
            "query": query.to_dict() if hasattr(query, "to_dict") else query
        }
        if config is not None:
            payload["config"] = dict(config)
        if rng is not None:
            payload["rng"] = rng
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", f"/query/{graph}", payload)

    def apply_delta(
        self, graph: str, delta: Any, *, rng: Optional[int] = None
    ) -> dict[str, Any]:
        """POST /graph/<graph>/delta; returns the ``DeltaReport`` envelope.

        ``delta`` is a :class:`~repro.graph.delta.GraphDelta` (``to_dict``
        is called) or an already-tagged payload dict; ``rng`` pins the
        randomness of the resampling pass.
        """
        payload: dict[str, Any] = {
            "delta": delta.to_dict() if hasattr(delta, "to_dict") else delta
        }
        if rng is not None:
            payload["rng"] = rng
        return self._request("POST", f"/graph/{graph}/delta", payload)

    def run_pipeline(
        self,
        graph: str,
        config: Any,
        log_path: str,
        *,
        episodes_path: Optional[str] = None,
        truth: Optional[Mapping[str, float]] = None,
    ) -> dict[str, Any]:
        """POST /pipeline/<graph>; returns the pipeline run summary.

        ``config`` is a :class:`~repro.pipeline.PipelineConfig`
        (``to_dict`` is called) or an already-serialised payload dict;
        ``log_path`` / ``episodes_path`` are *server-side* file paths;
        ``truth`` is an optional ground-truth GAP mapping for inside-CI
        verdicts in the debug DB.
        """
        payload: dict[str, Any] = {
            "config": config.to_dict() if hasattr(config, "to_dict") else config,
            "log_path": log_path,
        }
        if episodes_path is not None:
            payload["episodes_path"] = episodes_path
        if truth is not None:
            payload["truth"] = dict(truth)
        return self._request("POST", f"/pipeline/{graph}", payload)

    def pipeline_runs(self, graph: str) -> dict[str, Any]:
        """GET /pipeline/<graph>/runs; the graph's debug-DB run rows."""
        return self._request("GET", f"/pipeline/{graph}/runs")
