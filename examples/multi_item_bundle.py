"""Three-item bundle campaign with the k-item Com-IC extension (§8).

A phone, a watch and an earbuds line complement each other additively:
every already-adopted bundle item raises the adoption probability of the
others.  The example estimates per-item spreads, picks seeds for the
watch given the phone's fixed seeding (focal-item greedy), and allocates
a shared budget across all three items round-robin.

Run:  python examples/multi_item_bundle.py
"""

from repro import ComICSession, MultiItemQuery
from repro.algorithms import high_degree_seeds
from repro.graph import power_law_digraph, weighted_cascade_probabilities
from repro.models import MultiItemGaps, estimate_multi_item_spread

ITEMS = ("phone", "watch", "earbuds")


def main() -> None:
    graph = weighted_cascade_probabilities(power_law_digraph(300, rng=12))
    # q_{i|S} = 0.25 + 0.3 |S|: adopting the full bundle almost guarantees
    # the remaining item.
    gaps = MultiItemGaps.additive(3, base=0.25, boost_per_item=0.3)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"mutually complementary: {gaps.is_mutually_complementary}")

    # 1. Phone seeded at the top hubs, others unseeded.
    phone_seeds = high_degree_seeds(graph, 3)
    spreads = estimate_multi_item_spread(
        graph, gaps, [phone_seeds, [], []], runs=300, rng=1
    )
    for item, spread in zip(ITEMS, spreads):
        print(f"sigma({item:>7}) = {spread:6.1f}   (phone-only seeding)")

    # 2. Focal-item greedy: the best 3 watch seeds given the phone seeds.
    session = ComICSession(graph, multi_item_gaps=gaps, rng=2)
    watch_seeds = session.run(MultiItemQuery(
        budget=3, item=1, fixed_seed_sets=(tuple(phone_seeds), (), ()),
        runs=60, candidates=tuple(high_degree_seeds(graph, 25)),
    )).seeds
    spreads = estimate_multi_item_spread(
        graph, gaps, [phone_seeds, watch_seeds, []], runs=300, rng=3
    )
    print(f"watch seeds {watch_seeds} ->")
    for item, spread in zip(ITEMS, spreads):
        print(f"sigma({item:>7}) = {spread:6.1f}   (phone + watch seeding)")

    # 3. Round-robin: 6 seeds shared across the whole bundle.
    bundle_sets = session.run(MultiItemQuery(
        budget=6, runs=40, candidates=tuple(high_degree_seeds(graph, 15)),
    ), rng=4).seed_sets
    spreads = estimate_multi_item_spread(graph, gaps, bundle_sets, runs=300, rng=5)
    print("round-robin allocation:",
          {item: seeds for item, seeds in zip(ITEMS, bundle_sets)})
    print(f"total expected adoptions: {spreads.sum():.1f} "
          f"({', '.join(f'{s:.1f}' for s in spreads)})")


if __name__ == "__main__":
    main()
