"""SelfInfMax solver (Problem 1): GeneralTIM + RR-SIM(+) + Sandwich.

Given a fixed B-seed set and mutually complementary GAPs, find ``k``
A-seeds maximising ``sigma_A(S_A, S_B)``:

* when B is *indifferent* to A (``q_{B|∅} = q_{B|A}``) the objective is
  monotone and submodular (Theorems 3–4) and one GeneralTIM run over
  RR-SIM/RR-SIM+ carries the ``(1 - 1/e - eps)`` guarantee (Theorem 7);
* otherwise submodularity can fail (appendix Example 3) and the solver
  applies Sandwich Approximation (§6.4): the upper bound ``nu`` raises
  ``q_{B|∅}`` to ``q_{B|A}``, the lower bound ``mu`` lowers ``q_{B|A}`` to
  ``q_{B|∅}`` (both land in the submodular regime by construction, and
  Theorem 10 orders the three objectives).  The candidate sets — plus
  optionally an MC-greedy run on the unmodified objective — are compared
  under the true ``sigma_A`` by Monte Carlo and the best wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import RegimeError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.models.spread import estimate_spread
from repro.rng import SeedLike, make_rng
from repro.rrset.engines import SelectionResult, run_seed_selection
from repro.rrset.imm import IMMOptions
from repro.rrset.rr_sim import RRSimGenerator
from repro.rrset.rr_sim_plus import RRSimPlusGenerator
from repro.rrset.tim import TIMOptions
from repro.algorithms.greedy import greedy_selfinfmax
from repro.algorithms.sandwich import SandwichResult, sandwich_select


@dataclass
class SelfInfMaxResult:
    """Solution of one SelfInfMax instance."""

    seeds: list[int]
    #: "submodular" (single TIM/IMM run) or "sandwich".
    method: str
    tim_results: dict[str, SelectionResult] = field(default_factory=dict)
    sandwich: Optional[SandwichResult] = None
    #: MC estimate of sigma_A at the returned seeds (sandwich path only).
    estimated_spread: Optional[float] = None


def _make_generator(
    graph: DiGraph, gaps: GAP, seeds_b: Sequence[int], use_plus: bool
):
    if use_plus:
        return RRSimPlusGenerator(graph, gaps, seeds_b)
    return RRSimGenerator(graph, gaps, seeds_b)


def solve_selfinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_b: Sequence[int],
    k: int,
    *,
    options: TIMOptions = TIMOptions(),
    rng: SeedLike = None,
    use_rr_sim_plus: bool = True,
    evaluation_runs: int = 200,
    include_greedy_candidate: bool = False,
    greedy_runs: int = 50,
    engine: str = "tim",
    imm_options: Optional[IMMOptions] = None,
) -> SelfInfMaxResult:
    """Solve SelfInfMax; see the module docstring for the strategy.

    ``evaluation_runs`` sets the MC precision of the sandwich comparison;
    ``include_greedy_candidate`` adds the (slow) MC-greedy ``S_sigma``
    candidate as in the paper's full SA recipe.  ``engine`` selects the
    seed-selection algorithm over RR-sets: ``"tim"`` (GeneralTIM, [24]) or
    ``"imm"`` (martingale IMM, [23]).
    """
    if not gaps.is_mutually_complementary:
        raise RegimeError(
            f"SelfInfMax is defined for mutually complementary GAPs (Q+); got {gaps}"
        )
    gen = make_rng(rng)
    seeds_b = [int(s) for s in seeds_b]

    if gaps.b_indifferent_to_a:
        generator = _make_generator(graph, gaps, seeds_b, use_rr_sim_plus)
        tim = run_seed_selection(
            generator, k, engine=engine, options=options,
            imm_options=imm_options, rng=gen,
        )
        return SelfInfMaxResult(
            seeds=tim.seeds, method="submodular", tim_results={"sigma": tim}
        )

    # Sandwich approximation around the non-submodular objective.
    nu_gaps = gaps.with_b_indifferent_high()
    mu_gaps = gaps.with_b_indifferent_low()
    tim_nu = run_seed_selection(
        _make_generator(graph, nu_gaps, seeds_b, use_rr_sim_plus),
        k, engine=engine, options=options, imm_options=imm_options, rng=gen,
    )
    tim_mu = run_seed_selection(
        _make_generator(graph, mu_gaps, seeds_b, use_rr_sim_plus),
        k, engine=engine, options=options, imm_options=imm_options, rng=gen,
    )
    candidates: dict[str, list[int]] = {"nu": tim_nu.seeds, "mu": tim_mu.seeds}
    if include_greedy_candidate:
        candidates["sigma"] = greedy_selfinfmax(
            graph, gaps, seeds_b, k, runs=greedy_runs, rng=gen
        )
    eval_seed = int(gen.integers(0, 2**31 - 1))

    def sigma(seed_list: Sequence[int]) -> float:
        return estimate_spread(
            graph, gaps, seed_list, seeds_b, runs=evaluation_runs, rng=eval_seed
        ).mean

    chosen = sandwich_select(candidates, sigma)
    return SelfInfMaxResult(
        seeds=chosen.seeds,
        method="sandwich",
        tim_results={"nu": tim_nu, "mu": tim_mu},
        sandwich=chosen,
        estimated_spread=chosen.value,
    )
