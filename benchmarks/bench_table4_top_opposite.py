"""Benchmark: Table 4 — improvement over baselines, top opposite seeds.

Shape check (paper): with the most influential nodes as the opposite set,
Copying those seeds is itself strong, so improvements shrink toward zero
(occasionally slightly negative)."""

from repro.experiments import table4_improvement_top


def bench_table4_improvement_top(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: table4_improvement_top(bench_scale), rounds=1, iterations=1
    )
    save_table(result, "table4_improvement_top")
    # The gap should be structurally smaller than Table 3's random case:
    # copying top influencers is a sane strategy.
    sim_rows = [r for r in result.rows if r["problem"] == "SelfInfMax"]
    assert all(r["impr_vs_copying_pct"] < 400 for r in sim_rows)
