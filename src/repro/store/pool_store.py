"""`PoolStore`: versioned on-disk snapshots of RR-set pools.

The pool layout (two flat CSR columns, :mod:`repro.rrset.pool`) makes
persistence almost free: an entry is a directory holding the columns as
plain ``.npy`` files plus a JSON manifest::

    <root>/<key digest>/
        manifest.json     # PoolManifest: key, fingerprint, counts, CRCs
        nodes.npy         # int32 member-node column
        indptr.npy        # CSR offset column: int64, or the uint32
                          # memory diet when every offset fits (the
                          # manifest's ``column_dtypes`` records which)

Loads memory-map the columns by default (``mmap_mode="r"``): adopting
them into an :class:`~repro.rrset.pool.RRSetPool` is zero-copy
(:meth:`RRSetPool.from_flat`) and the pool stays appendable because its
first growth reallocates into fresh writable memory.  (Checksum
verification does stream each column once at load — integrity costs one
sequential read; everything after that touches pages lazily and
copy-free.)

Every load is *validated*: the manifest must describe exactly the
requested :class:`~repro.store.keys.PoolKey` and (when given) graph
fingerprint — otherwise the entry was sampled from a different problem
and serving it would be silently wrong — and the columns must match the
manifest's shapes and CRC-32 checksums — otherwise the files were
corrupted or tampered with.  The forgiving :meth:`PoolStore.load` maps
both failure kinds to a miss and counts an **invalidation** in
:class:`StoreStats`; :meth:`PoolStore.load_strict` raises the underlying
:class:`~repro.errors.StoreIntegrityError` for callers (and tests) that
want the reason.

Writes are staged + renamed: an entry is built in a ``.staging.*``
directory, the old entry is atomically moved aside, and the staging
directory atomically renamed into place, so readers never observe a
half-written entry (at worst a momentary miss).  Concurrent writers of
the same key race on the final rename; exactly one installs, losers
discard their staging quietly — the right semantics when entries are
identical re-samplings, and documented for everything else.

**Incremental appends**: re-saving a *grown* pool whose stored entry is
a validated byte-prefix of the new columns (the session's IMM-style
top-up write-through is exactly this) appends only the delta to the
``.npy`` columns in place instead of rewriting O(N·S) bytes — CRCs
continue incrementally from the manifest's recorded values, the data
bytes land before the header's shape is patched, and the manifest is
replaced atomically last, so every crash point leaves a state the
prefix-tolerant loader still serves (columns longer than the manifest
describes are sliced down to the described — intact — prefix).  Append
writers of one entry serialise on an ``.append.lock`` file inside it;
the loser of that race defers to the winner (degrades to a hit — the
winner's entry is, or extends, the loser's prefix) rather than racing a
full rewrite against an in-flight append.  ``StoreStats`` counts
``appends`` and ``append_contentions``.

The store also **self-heals** (see ``docs/resilience.md``): an entry
:meth:`PoolStore.load` rejects is *quarantined* — moved under
``<root>/.quarantine/<digest>-<n>/`` with a ``reason.json`` record — so
a corrupted or foreign entry costs one invalidation ever, not one per
query; crash-orphaned ``.staging.*`` / ``.trash.*`` directories older
than ``stale_temp_age_s`` are garbage-collected when the store opens;
and every failed :meth:`PoolStore.save` is tallied in
:attr:`StoreStats.save_failures` so callers can degrade to
warn-and-continue without losing the signal.
"""

from __future__ import annotations

import errno
import io
import itertools
import json
import os
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

import numpy as np

from repro import faults
from repro.errors import StoreError, StoreIntegrityError
from repro.invalidation import InvalidationReason, coerce_reason
from repro.rrset.pool import RRSetPool
from repro.store.keys import PoolKey
from repro.store.manifest import FORMAT_VERSION, PoolManifest, crc32_of

MANIFEST_FILE = "manifest.json"
NODES_FILE = "nodes.npy"
INDPTR_FILE = "indptr.npy"
#: optional touch-tracking columns (dynamic-graph repair, PR 8).
ROOTS_FILE = "roots.npy"
TOUCH_EDGES_FILE = "touch_edges.npy"
TOUCH_INDPTR_FILE = "touch_indptr.npy"
#: per-entry mutex of in-place column appends (held only while appending).
APPEND_LOCK_FILE = ".append.lock"
#: subdirectory of the store root holding quarantined entries.
QUARANTINE_DIR = ".quarantine"
#: sidecar written into each quarantined entry explaining why.
REASON_FILE = "reason.json"

PathLike = Union[str, os.PathLike]

#: monotonic disambiguator for staging/trash names — two threads of one
#: process saving the same key must never share a temp directory.
_TEMP_COUNTER = itertools.count()

_UINT32_MAX = int(np.iinfo(np.uint32).max)


def _diet_column(offsets: np.ndarray) -> np.ndarray:
    """The storage form of a non-decreasing offset column.

    uint32 when every offset fits (half the disk bytes of the canonical
    int64, and — because loads adopt columns zero-copy — half the resident
    bytes of a warm-started pool too), otherwise the column unchanged.
    """
    if offsets.size == 0 or int(offsets[-1]) <= _UINT32_MAX:
        return offsets.astype(np.uint32)
    return offsets


def _npy_append(path: Path, delta: np.ndarray, new_count: int) -> bool:
    """Append ``delta`` to a 1-D ``.npy`` column file in place.

    Returns ``False`` when the file cannot be extended in place (non-1.0
    npy format, dtype/layout surprises, or a new shape whose padded
    header length differs from the old) — callers fall back to the
    staged full rewrite.  Crash-safe ordering: the delta bytes land
    *before* the header's shape is patched, so an interrupted append
    leaves the previous header describing the previous — intact — array,
    with the partial tail ignored as trailing bytes.
    """
    delta = np.ascontiguousarray(delta)
    with open(path, "r+b") as handle:
        try:
            version = np.lib.format.read_magic(handle)
        except ValueError:
            return False
        if version != (1, 0):
            return False
        try:
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        except ValueError:
            return False
        if fortran or len(shape) != 1 or dtype != delta.dtype:
            return False
        if shape[0] + int(delta.size) != int(new_count):
            return False
        data_start = handle.tell()
        preamble = io.BytesIO()
        np.lib.format.write_array_header_1_0(
            preamble,
            {
                "descr": np.lib.format.dtype_to_descr(dtype),
                "fortran_order": False,
                "shape": (int(new_count),),
            },
        )
        header = preamble.getvalue()
        if len(header) != data_start:
            return False
        handle.seek(data_start + int(shape[0]) * dtype.itemsize)
        handle.write(memoryview(delta).cast("B"))
        handle.flush()
        os.fsync(handle.fileno())
        handle.seek(0)
        handle.write(header)
        handle.flush()
        os.fsync(handle.fileno())
    return True


@dataclass
class StoreStats:
    """Cumulative accounting of one :class:`PoolStore` instance."""

    #: loads answered from a valid on-disk entry.
    hits: int = 0
    #: loads for keys with no on-disk entry at all.
    misses: int = 0
    #: loads that found an entry but rejected it (wrong key/fingerprint,
    #: wrong format version, corrupted columns).
    invalidations: int = 0
    #: entries written (new, overwritten, or appended).
    saves: int = 0
    #: saves satisfied by appending only the grown tail to an existing
    #: entry's columns (subset of ``saves``).
    appends: int = 0
    #: append attempts that found another writer's append in flight and
    #: deferred to it (the save degrades to a hit; nothing was written).
    append_contentions: int = 0
    #: rejected entries moved aside into ``.quarantine/`` by ``load``.
    quarantined: int = 0
    #: ``save`` calls that raised (disk full, permission, injected).
    save_failures: int = 0
    #: crash-orphaned staging/trash directories removed at open.
    temp_dirs_gcd: int = 0
    #: per-reason breakdown of ``invalidations``, keyed by
    #: :class:`~repro.invalidation.InvalidationReason` value strings.
    invalidations_by_reason: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return asdict(self)


class PoolStore:
    """A directory of persisted RR-set pools, addressed by :class:`PoolKey`.

    ``stale_temp_age_s`` controls the open-time sweep of crash-orphaned
    ``.staging.*`` / ``.trash.*`` directories: anything older than this
    many seconds is removed (a live writer's staging is seconds old, so
    the default hour cannot race one).  ``None`` disables the sweep.
    """

    def __init__(
        self,
        root: PathLike,
        *,
        mmap: bool = True,
        stale_temp_age_s: Optional[float] = 3600.0,
    ) -> None:
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise StoreError(f"store root {self._root} exists and is not a directory")
        self._root.mkdir(parents=True, exist_ok=True)
        self._mmap = bool(mmap)
        if stale_temp_age_s is not None and stale_temp_age_s < 0:
            raise StoreError(
                f"stale_temp_age_s must be >= 0 (or None to disable), "
                f"got {stale_temp_age_s}"
            )
        self._stale_temp_age_s = stale_temp_age_s
        self.stats = StoreStats()
        self._gc_stale_temps()

    def _gc_stale_temps(self) -> None:
        """Remove crash-orphaned staging/trash dirs older than the cutoff."""
        if self._stale_temp_age_s is None:
            return
        now = time.time()
        for child in self._root.iterdir():
            name = child.name
            if not (name.startswith(".staging.") or name.startswith(".trash.")):
                continue
            try:
                age = now - child.stat().st_mtime
            except OSError:
                continue  # already gone (concurrent open) — nothing to do
            if age >= self._stale_temp_age_s:
                shutil.rmtree(child, ignore_errors=True)
                self.stats.temp_dirs_gcd += 1

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def entry_dir(self, key: PoolKey) -> Path:
        """The directory a key's entry lives in (existing or not)."""
        if not isinstance(key, PoolKey):
            raise StoreError(f"key must be a PoolKey, got {type(key).__name__}")
        return self._root / key.digest()

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(
        self,
        key: PoolKey,
        pool: RRSetPool,
        *,
        graph_fingerprint: str,
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist ``pool`` under ``key``, replacing any previous entry.

        ``graph_fingerprint`` must be :meth:`DiGraph.fingerprint` of the
        graph the pool was sampled from — it is what load-time validation
        checks against.  ``provenance`` is recorded verbatim into the
        manifest (RNG description, creator, ...) on top of the
        automatically stamped ``created_unix``.  Returns the entry
        directory.

        The entry is staged in full, the previous entry (if any) is
        atomically moved aside, and the staging directory is atomically
        renamed into place — a reader never observes a half-written
        entry, and a crash leaves the old entry, the new entry, or (only
        within the single-rename window between the two moves) a plain
        miss, never a corrupt mix.  Concurrent same-key writers race on
        the final rename: exactly one wins, losers discard their staging
        quietly (identical re-samplings are the expected case).

        When the existing entry is a validated byte-prefix of ``pool``
        (the common grown-pool write-through), only the delta is appended
        in place instead — see the module docstring and
        :attr:`StoreStats.appends`.
        """
        entry = self.entry_dir(key)
        if not isinstance(pool, RRSetPool):
            raise StoreError(f"pool must be an RRSetPool, got {type(pool).__name__}")
        nodes = np.ascontiguousarray(pool.nodes, dtype=np.int32)
        indptr = np.ascontiguousarray(pool.indptr, dtype=np.int64)
        stamped: dict[str, Any] = {"created_unix": time.time()}
        if provenance:
            stamped.update(provenance)
        touch_columns = self._touch_columns(pool)
        try:
            fast = self._try_append(
                key, entry, pool, nodes, indptr, str(graph_fingerprint), stamped
            )
        except BaseException:
            self.stats.save_failures += 1
            raise
        if fast is not None:
            return fast
        indptr_col = _diet_column(indptr)
        column_dtypes: dict[str, str] = {}
        if indptr_col.dtype != np.int64:
            column_dtypes["indptr"] = indptr_col.dtype.name
        if "touch_indptr" in touch_columns:
            touch_columns["touch_indptr"] = _diet_column(
                touch_columns["touch_indptr"]
            )
            if touch_columns["touch_indptr"].dtype != np.int64:
                column_dtypes["touch_indptr"] = touch_columns[
                    "touch_indptr"
                ].dtype.name
        touches: Optional[dict[str, Any]] = None
        if touch_columns:
            touches = {
                f"{name}_crc32": crc32_of(column)
                for name, column in touch_columns.items()
            }
            if "touch_edges" in touch_columns:
                touches["total_touches"] = int(
                    touch_columns["touch_edges"].size
                )
        manifest = PoolManifest(
            key=key,
            graph_fingerprint=str(graph_fingerprint),
            num_nodes=pool.num_nodes,
            num_sets=len(pool),
            total_nodes=pool.total_nodes,
            nodes_crc32=crc32_of(nodes),
            indptr_crc32=crc32_of(indptr_col),
            provenance=stamped,
            touches=touches,
            column_dtypes=column_dtypes or None,
        )
        token = (
            f"{os.getpid()}.{threading.get_ident()}.{next(_TEMP_COUNTER)}"
        )
        staging = self._root / f".staging.{key.digest()}.{token}"
        retired = self._root / f".trash.{key.digest()}.{token}"
        staging.mkdir(parents=True)
        try:
            self._arm_save_columns_fault(staging)
            np.save(staging / NODES_FILE, nodes)
            np.save(staging / INDPTR_FILE, indptr_col)
            for name, column in touch_columns.items():
                np.save(staging / f"{name}.npy", column)
            (staging / MANIFEST_FILE).write_text(
                manifest.to_json(), encoding="utf-8"
            )
            self._arm_save_manifest_fault(staging, manifest)
            self._arm_save_install_fault()
            moved_aside = False
            if entry.exists():
                try:
                    os.replace(entry, retired)  # atomic move-aside
                except FileNotFoundError:
                    # Same-key race: another writer retired the entry
                    # between our check and the rename — it no longer
                    # blocks our install.
                    pass
                except OSError as exc:
                    # Any other retire failure is a genuine error
                    # (EACCES, EIO, ...) — do not mask it as success
                    # with the stale entry in place.
                    shutil.rmtree(staging, ignore_errors=True)
                    raise StoreError(
                        f"failed to retire previous entry for {key}: {exc}"
                    ) from exc
                else:
                    moved_aside = True
            try:
                os.replace(staging, entry)
            except OSError as exc:
                shutil.rmtree(staging, ignore_errors=True)
                if entry.exists() or exc.errno in (
                    errno.ENOTEMPTY,
                    errno.EEXIST,
                ):
                    # Benign same-key race: another writer installed an
                    # (equivalent) entry between our renames (ENOTEMPTY /
                    # EEXIST means their entry blocked ours even if they
                    # are mid-replace right now); theirs stands, our old
                    # copy can retire.
                    shutil.rmtree(retired, ignore_errors=True)
                    return entry
                if moved_aside:
                    # Genuine failure (EIO, EACCES, ...): put the old —
                    # still valid — entry back rather than losing it.
                    try:
                        os.replace(retired, entry)
                    except OSError:  # pragma: no cover - double fault
                        pass
                raise StoreError(
                    f"failed to install entry for {key}: {exc}"
                ) from exc
        except BaseException as exc:
            if not (
                isinstance(exc, faults.InjectedFault) and exc.kind == "crash"
            ):
                # An injected writer "crash" must leave its staging behind
                # exactly as a killed process would — that orphan is what
                # the open-time GC exists to clean.
                shutil.rmtree(staging, ignore_errors=True)
            self.stats.save_failures += 1
            raise
        shutil.rmtree(retired, ignore_errors=True)
        self.stats.saves += 1
        return entry

    @staticmethod
    def _touch_columns(pool: RRSetPool) -> dict[str, np.ndarray]:
        """The touch columns a save must persist (empty dict: untracked).

        Only *complete* columns are written — a partially-tracked pool
        (some appends lacked roots or signatures) persists as a plain
        untracked entry, which warm starts load as non-repairable, exactly
        matching its in-memory eligibility.
        """
        out: dict[str, np.ndarray] = {}
        if not (pool.track_touches and pool.roots_ok):
            return out
        out["roots"] = np.ascontiguousarray(pool.roots, dtype=np.int32)
        if pool.touch_ok:
            out["touch_edges"] = np.ascontiguousarray(
                pool.touch_edges, dtype=np.int32
            )
            out["touch_indptr"] = np.ascontiguousarray(
                pool.touch_indptr, dtype=np.int64
            )
        return out

    def _try_append(
        self,
        key: PoolKey,
        entry: Path,
        pool: RRSetPool,
        nodes: np.ndarray,
        indptr: np.ndarray,
        graph_fingerprint: str,
        stamped: dict[str, Any],
    ) -> Optional[Path]:
        """Append-only fast path of :meth:`save`; ``None`` = full rewrite.

        Applicable when the installed entry describes the same key,
        fingerprint and format, holds strictly fewer sets, and its
        recorded CRCs match the corresponding prefix of the new columns
        (i.e. the entry *is* the old pool the caller grew).  Returns the
        entry directory on success or on append-lock contention (the
        concurrent appender's result stands — see module docstring);
        any real I/O error propagates to :meth:`save`'s failure
        accounting.
        """
        manifest_path = entry / MANIFEST_FILE
        if not manifest_path.exists():
            return None
        try:
            old = self._read_manifest(manifest_path)
        except StoreIntegrityError:
            return None  # unreadable/foreign manifest: rewrite replaces it
        if pool.track_touches or old.touches is not None:
            # Touch columns have no incremental-append story (delta repair
            # rewrites them wholesale anyway): the staged full rewrite is
            # the only way to keep every column consistent with one
            # manifest state.
            return None
        if (
            old.format_version != FORMAT_VERSION
            or old.key != key
            or old.graph_fingerprint != graph_fingerprint
            or old.num_nodes != pool.num_nodes
            or not 0 <= old.num_sets < len(pool)
            or old.total_nodes > pool.total_nodes
        ):
            return None
        try:
            file_dtype = old.column_dtype("indptr")
        except StoreIntegrityError:
            return None  # illegal dtype record: rewrite replaces the entry
        if file_dtype != indptr.dtype:
            if int(indptr[-1]) > _UINT32_MAX:
                # The pool outgrew the installed entry's uint32 diet —
                # only the staged full rewrite can widen the column.
                return None
            indptr = indptr.astype(file_dtype)
        # The stored entry must be a byte-prefix of the new columns:
        # checksum the in-memory prefix against the manifest's records.
        if crc32_of(nodes[: old.total_nodes]) != old.nodes_crc32:
            return None
        if crc32_of(indptr[: old.num_sets + 1]) != old.indptr_crc32:
            return None
        lock = entry / APPEND_LOCK_FILE
        if not self._acquire_append_lock(lock):
            self.stats.append_contentions += 1
            return entry
        try:
            # Re-check under the lock: the entry may have been appended
            # to (or replaced) between the prefix check and acquisition.
            try:
                current = self._read_manifest(manifest_path)
            except (StoreIntegrityError, OSError):
                return None
            if current.to_dict() != old.to_dict():
                return None
            self._arm_save_columns_fault(entry)
            delta_nodes = nodes[old.total_nodes :]
            delta_indptr = indptr[old.num_sets + 1 :]
            if not _npy_append(entry / NODES_FILE, delta_nodes, nodes.size):
                return None
            if not _npy_append(entry / INDPTR_FILE, delta_indptr, indptr.size):
                # nodes already grew, but the old manifest still describes
                # a valid prefix — the tolerant loader serves it and the
                # full rewrite below replaces the whole entry.
                return None
            manifest = PoolManifest(
                key=key,
                graph_fingerprint=graph_fingerprint,
                num_nodes=pool.num_nodes,
                num_sets=len(pool),
                total_nodes=pool.total_nodes,
                nodes_crc32=crc32_of(delta_nodes, old.nodes_crc32),
                indptr_crc32=crc32_of(delta_indptr, old.indptr_crc32),
                provenance=stamped,
                column_dtypes=old.column_dtypes,
            )
            tmp = entry / (MANIFEST_FILE + ".tmp")
            tmp.write_text(manifest.to_json(), encoding="utf-8")
            os.replace(tmp, manifest_path)  # atomic cut-over to the new state
        finally:
            try:
                lock.unlink()
            except OSError:  # pragma: no cover - lock dir replaced under us
                pass
        self.stats.saves += 1
        self.stats.appends += 1
        return entry

    def _acquire_append_lock(self, lock: Path) -> bool:
        """Take the per-entry append mutex (non-blocking); break stale locks.

        A lock older than ``stale_temp_age_s`` (the staging-GC cutoff; an
        hour when the sweep is disabled) belongs to a crashed appender —
        its entry is still valid via prefix tolerance — and is broken.
        """
        flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
        try:
            fd = os.open(lock, flags)
        except FileExistsError:
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                return False
            cutoff = (
                self._stale_temp_age_s
                if self._stale_temp_age_s is not None
                else 3600.0
            )
            if age < cutoff:
                return False
            try:
                lock.unlink()
                fd = os.open(lock, flags)
            except OSError:
                return False
        except OSError:
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode())  # post-mortem aid
        finally:
            os.close(fd)
        return True

    # -- save-path fault-injection hooks (no-ops without an active plan) --
    @staticmethod
    def _arm_save_columns_fault(staging: Path) -> None:
        spec = faults.fire("store.save.columns")
        if spec is None:
            return
        code = {"enospc": errno.ENOSPC, "eacces": errno.EACCES}.get(spec.kind)
        if code is not None:
            raise OSError(
                code,
                f"{os.strerror(code)} (injected)",
                str(staging / NODES_FILE),
            )

    @staticmethod
    def _arm_save_manifest_fault(staging: Path, manifest: PoolManifest) -> None:
        spec = faults.fire("store.save.manifest")
        if spec is not None and spec.kind == "torn":
            payload = manifest.to_json()
            (staging / MANIFEST_FILE).write_text(
                payload[: len(payload) // 2], encoding="utf-8"
            )

    @staticmethod
    def _arm_save_install_fault() -> None:
        spec = faults.fire("store.save.install")
        if spec is not None and spec.kind == "crash":
            raise faults.InjectedFault(spec.site, spec.kind)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        key: PoolKey,
        *,
        graph_fingerprint: Optional[str] = None,
        mmap: Optional[bool] = None,
    ) -> Optional[RRSetPool]:
        """Load the pool for ``key``, or ``None`` on miss/invalid entry.

        The forgiving entry point a cache sits on: a missing entry counts
        a miss, an entry that fails validation (foreign key, different
        graph fingerprint, corrupted columns) counts an *invalidation*,
        and both return ``None`` so the caller just resamples.  ``mmap``
        overrides the store default for this load.

        A rejected entry is also **quarantined**: moved aside under
        ``.quarantine/`` with a ``reason.json`` record, so the same bad
        bytes are validated (and paid for) exactly once — every later
        load of the key is a plain miss until something valid is saved.

        Validation failures are re-read before quarantining: a concurrent
        writer's full rewrite (or a GC eviction) can tear a single read —
        manifest from the old entry, columns from the new — which is a
        race, not corruption.  Only a failure stable across re-reads
        condemns the bytes.
        """
        last_exc: Optional[StoreIntegrityError] = None
        for attempt in range(3):
            if attempt:
                time.sleep(0.005 * attempt)
            try:
                pool = self.load_strict(
                    key, graph_fingerprint=graph_fingerprint, mmap=mmap
                )
            except StoreIntegrityError as exc:
                last_exc = exc
                continue
            if pool is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return pool
        self.stats.invalidations += 1
        reason = coerce_reason(getattr(last_exc, "reason", str(last_exc)))
        self.stats.invalidations_by_reason[reason.value] = (
            self.stats.invalidations_by_reason.get(reason.value, 0) + 1
        )
        self._quarantine(key, str(last_exc), reason_code=reason)
        return None

    def load_strict(
        self,
        key: PoolKey,
        *,
        graph_fingerprint: Optional[str] = None,
        mmap: Optional[bool] = None,
    ) -> Optional[RRSetPool]:
        """Like :meth:`load` but raising
        :class:`~repro.errors.StoreIntegrityError` on an invalid entry
        (``None`` still means plain miss).  Does not touch :attr:`stats`.
        """
        entry = self.entry_dir(key)
        manifest_path = entry / MANIFEST_FILE
        if not manifest_path.exists():
            return None
        self._arm_load_fault(entry)
        manifest = self._read_manifest(manifest_path)
        manifest.validate_request(key, graph_fingerprint)
        use_mmap = self._mmap if mmap is None else bool(mmap)
        mmap_mode = "r" if use_mmap else None
        try:
            nodes = np.load(entry / NODES_FILE, mmap_mode=mmap_mode)
            indptr = np.load(entry / INDPTR_FILE, mmap_mode=mmap_mode)
        except (OSError, ValueError) as exc:
            raise StoreIntegrityError(f"unreadable column file: {exc}") from exc
        indptr_dtype = manifest.column_dtype("indptr")
        if nodes.dtype != np.int32 or indptr.dtype != indptr_dtype:
            raise StoreIntegrityError(
                f"column dtypes {nodes.dtype}/{indptr.dtype} do not match "
                f"the manifest's int32/{indptr_dtype}"
            )
        # Columns longer than the manifest describes are a concurrent (or
        # crash-interrupted) incremental append's tail: the described
        # prefix is exactly the installed entry, so serve that and ignore
        # the surplus.  Shorter-than-described stays an integrity error.
        if indptr.shape[0] > manifest.num_sets + 1:
            indptr = indptr[: manifest.num_sets + 1]
        if nodes.shape[0] > manifest.total_nodes:
            nodes = nodes[: manifest.total_nodes]
        manifest.validate_columns(nodes, indptr)
        roots = touch_edges = touch_indptr = None
        if manifest.touches is not None:
            record = manifest.touches
            try:
                if "roots_crc32" in record:
                    roots = np.load(entry / ROOTS_FILE, mmap_mode=mmap_mode)
                if "touch_edges_crc32" in record:
                    touch_edges = np.load(
                        entry / TOUCH_EDGES_FILE, mmap_mode=mmap_mode
                    )
                    touch_indptr = np.load(
                        entry / TOUCH_INDPTR_FILE, mmap_mode=mmap_mode
                    )
            except (OSError, ValueError) as exc:
                raise StoreIntegrityError(
                    f"unreadable touch column file: {exc}",
                    reason=InvalidationReason.CORRUPT_COLUMNS,
                ) from exc
            if touch_indptr is not None and (
                touch_indptr.dtype != manifest.column_dtype("touch_indptr")
            ):
                raise StoreIntegrityError(
                    f"touch_indptr column dtype {touch_indptr.dtype} does not "
                    f"match the manifest's "
                    f"{manifest.column_dtype('touch_indptr')}",
                    reason=InvalidationReason.CORRUPT_COLUMNS,
                )
            manifest.validate_touch_columns(roots, touch_edges, touch_indptr)
        # The CRC pass just proved the columns byte-identical to what
        # save() wrote from a validated pool, so from_flat's CSR re-scan
        # (two more full passes over possibly mmap'd data) is redundant.
        return RRSetPool.from_flat(
            manifest.num_nodes,
            nodes,
            indptr,
            validate=False,
            roots=roots,
            touch_edges=touch_edges,
            touch_indptr=touch_indptr,
        )

    def manifest(self, key: PoolKey) -> Optional[PoolManifest]:
        """The manifest of a key's entry (validated parse), or ``None``."""
        path = self.entry_dir(key) / MANIFEST_FILE
        if not path.exists():
            return None
        return self._read_manifest(path)

    @staticmethod
    def _read_manifest(path: Path) -> PoolManifest:
        try:
            payload = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StoreIntegrityError(f"unreadable manifest: {exc}") from exc
        return PoolManifest.from_json(payload)

    @staticmethod
    def _arm_load_fault(entry: Path) -> None:
        """Fault hook fired once per load of an existing entry (test-only).

        ``corrupt`` deterministically flips bytes of the entry's nodes
        column (payload positions drawn from the plan's per-site stream),
        so the subsequent CRC validation — and the quarantine it triggers
        — exercises exactly the real bit-rot path.
        """
        spec = faults.fire("store.load")
        if spec is None or spec.kind != "corrupt":
            return
        plan = faults.active_plan()
        rng = plan.rng_for("store.load")
        path = entry / NODES_FILE
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return
        start = min(128, max(len(data) - 1, 0))  # spare the .npy header
        if len(data) <= start:
            return
        positions = np.unique(
            rng.integers(start, len(data), size=min(8, len(data) - start))
        )
        for pos in positions:
            data[int(pos)] ^= 0xA5
        path.write_bytes(bytes(data))

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(
        self,
        key: PoolKey,
        reason: str,
        *,
        reason_code: Optional[InvalidationReason] = None,
    ) -> Optional[Path]:
        """Move ``key``'s rejected entry under ``.quarantine/``; its new home.

        Preserves the bad bytes for post-mortem instead of deleting them,
        and clears the key's slot so later loads miss cleanly.  Best
        effort: a concurrent writer replacing the entry mid-move simply
        wins (``None`` is returned).  ``reason`` stays the human-readable
        message; the typed code rides alongside as ``reason_code`` in
        ``reason.json`` (inferred from the message when not given — the
        deprecation shim for pre-enum callers).
        """
        if reason_code is None:
            reason_code = coerce_reason(reason)
        entry = self.entry_dir(key)
        if not entry.exists():
            return None
        qroot = self._root / QUARANTINE_DIR
        qroot.mkdir(exist_ok=True)
        n = 0
        while (dest := qroot / f"{entry.name}-{n}").exists():
            n += 1
        try:
            os.replace(entry, dest)
        except OSError:
            return None
        record = {
            "key": key.to_dict(),
            "reason": reason,
            "reason_code": reason_code.value,
            "quarantined_unix": time.time(),
        }
        try:
            (dest / REASON_FILE).write_text(
                json.dumps(record, sort_keys=True, indent=1), encoding="utf-8"
            )
        except OSError:  # pragma: no cover - reason is advisory
            pass
        self.stats.quarantined += 1
        return dest

    def quarantined_entries(self) -> list[dict[str, Any]]:
        """The quarantine inventory, oldest suffix first.

        Each record holds ``path`` (the quarantined directory) plus the
        parsed ``reason.json`` fields (``key`` dict, ``reason`` string,
        ``quarantined_unix``) when the sidecar is readable.
        """
        qroot = self._root / QUARANTINE_DIR
        if not qroot.is_dir():
            return []
        records: list[dict[str, Any]] = []
        for child in sorted(qroot.iterdir()):
            if not child.is_dir():
                continue
            record: dict[str, Any] = {"path": child}
            try:
                record.update(
                    json.loads((child / REASON_FILE).read_text(encoding="utf-8"))
                )
            except (OSError, ValueError):
                record["reason"] = None
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def contains(
        self, key: PoolKey, *, graph_fingerprint: Optional[str] = None
    ) -> bool:
        """Whether a *valid* entry for ``key`` (and fingerprint) exists."""
        try:
            pool = self.load_strict(key, graph_fingerprint=graph_fingerprint)
        except StoreIntegrityError:
            return False
        return pool is not None

    def entries(self) -> Iterator[PoolManifest]:
        """Iterate the manifests of every readable entry (sorted by dir).

        In-flight staging and crash-orphaned ``.staging.*`` / ``.trash.*``
        directories are skipped — only installed entries are inventory.
        """
        for child in sorted(self._root.iterdir()):
            if child.name.startswith("."):
                continue
            manifest_path = child / MANIFEST_FILE
            if not manifest_path.exists():
                continue
            try:
                yield self._read_manifest(manifest_path)
            except StoreIntegrityError:
                continue

    def delete(self, key: PoolKey) -> bool:
        """Remove a key's entry; returns whether one existed."""
        entry = self.entry_dir(key)
        if not entry.exists():
            return False
        shutil.rmtree(entry)
        return True

    def clear(self) -> None:
        """Remove every entry (the root directory itself survives)."""
        for child in self._root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        count = sum(1 for _ in self.entries())
        return f"PoolStore(root={str(self._root)!r}, entries={count})"
