"""Tests for joint-state census and cascade-depth analytics."""

import numpy as np
import pytest

from repro.analysis import (
    cascade_depth,
    joint_state_census,
    unreachable_state_violations,
)
from repro.graph import path_digraph, star_digraph
from repro.models import GAP, ItemState, simulate


class TestJointStateCensus:
    def test_counts_sum_to_n(self):
        graph = star_digraph(20, probability=0.5)
        gaps = GAP(q_a=0.5, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.8)
        outcome = simulate(graph, gaps, [0], [1], rng=1)
        census = joint_state_census(outcome)
        assert sum(census.values()) == 20
        assert len(census) == 16  # all combinations keyed

    def test_deterministic_chain_census(self):
        graph = path_digraph(3, probability=1.0)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=2)
        census = joint_state_census(outcome)
        assert census[(ItemState.ADOPTED, ItemState.IDLE)] == 3

    def test_isolated_nodes_stay_idle(self):
        graph = path_digraph(2, probability=0.0)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=3)
        census = joint_state_census(outcome)
        assert census[(ItemState.IDLE, ItemState.IDLE)] == 1
        assert census[(ItemState.ADOPTED, ItemState.IDLE)] == 1


class TestUnreachableStates:
    @pytest.mark.parametrize("seed", range(12))
    def test_no_violations_across_gap_regimes(self, seed):
        graph = star_digraph(15, probability=0.6)
        regimes = [
            GAP(q_a=0.3, q_a_given_b=0.9, q_b=0.4, q_b_given_a=0.8),  # Q+
            GAP(q_a=0.9, q_a_given_b=0.2, q_b=0.8, q_b_given_a=0.1),  # Q-
            GAP(q_a=0.5, q_a_given_b=0.5, q_b=0.5, q_b_given_a=0.5),  # indiff
        ]
        gaps = regimes[seed % len(regimes)]
        outcome = simulate(graph, gaps, [0, 1], [0, 2], rng=seed)
        assert unreachable_state_violations(outcome) == {}


class TestCascadeDepth:
    def test_chain_depth(self):
        graph = path_digraph(5, probability=1.0)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=4)
        assert cascade_depth(outcome) == 4

    def test_no_adoption_is_minus_one(self):
        graph = path_digraph(3, probability=1.0)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=5)
        assert cascade_depth(outcome, item="b") == -1

    def test_seed_only_depth_zero(self):
        graph = path_digraph(2, probability=0.0)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=6)
        assert cascade_depth(outcome) == 0

    def test_item_validated(self):
        graph = path_digraph(2)
        outcome = simulate(graph, GAP.classic_ic(), [0], [], rng=7)
        with pytest.raises(ValueError):
            cascade_depth(outcome, item="z")
