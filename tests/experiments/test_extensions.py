"""Tests for the extension experiment runners and the ASCII series renderer."""

import pytest

from repro.experiments import (
    ExperimentScale,
    extension_engine_comparison,
    extension_gap_sensitivity,
    extension_heuristic_comparison,
    render_series,
)
from repro.experiments.__main__ import RUNNERS
from repro.rrset import TIMOptions


@pytest.fixture(scope="module")
def tiny() -> ExperimentScale:
    return ExperimentScale(
        scale=0.012,
        k=2,
        opposite_size=4,
        mid_rank_start=3,
        mc_runs=40,
        tim_options=TIMOptions(theta_override=400),
        datasets=("flixster",),
        seed=11,
    )


class TestEngineComparison:
    def test_structure_and_quality_parity(self, tiny):
        result = extension_engine_comparison(tiny)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["dataset"] == "flixster"
        assert row["tim_rr_sets"] >= 1 and row["imm_rr_sets"] >= 1
        # Equal-quality shape: the engines' spreads are within 25%.
        assert row["imm_spread"] >= 0.75 * row["tim_spread"]

    def test_deterministic(self, tiny):
        first = extension_engine_comparison(tiny)
        second = extension_engine_comparison(tiny)

        def strip_times(rows):
            return [
                {k: v for k, v in row.items() if not k.endswith("_time_s")}
                for row in rows
            ]

        assert strip_times(first.rows) == strip_times(second.rows)


class TestHeuristicComparison:
    def test_structure(self, tiny):
        result = extension_heuristic_comparison(tiny)
        row = result.rows[0]
        for col in ("degree_discount", "single_discount", "high_degree"):
            assert row[col] >= 0.0


class TestGapSensitivityRunner:
    def test_structure_and_q_plus(self, tiny):
        result = extension_gap_sensitivity(tiny)
        assert len(result.rows) == 4  # one row per GAP parameter
        for row in result.rows:
            assert row["in_q_plus"], row["parameter"]
            assert row["range"] >= 0.0
            # Theorem 10 within MC noise: allow a small dip.
            assert row["spread_plus"] >= row["spread_minus"] - 2.0


class TestCLIRegistration:
    def test_extension_runners_registered(self):
        assert "engines" in RUNNERS
        assert "heuristics" in RUNNERS
        assert "sensitivity" in RUNNERS


class TestRenderSeries:
    def test_contains_title_legend_and_bounds(self):
        art = render_series(
            [1, 2, 3], {"tim": [10, 20, 30], "imm": [12, 18, 33]},
            title="engines", x_label="k",
        )
        assert "engines" in art
        assert "* tim" in art and "o imm" in art
        assert "33" in art  # y max annotated

    def test_marker_positions_monotone_series(self):
        art = render_series([0, 1], {"s": [0.0, 1.0]}, width=10, height=4)
        rows = [line for line in art.splitlines() if line.startswith(" " * 11 + "|")]
        assert rows[0].rstrip().endswith("*")   # max at top right
        assert rows[-1][12] == "*"              # min at bottom left

    def test_constant_series_handled(self):
        art = render_series([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series([], {"s": []})
        with pytest.raises(ValueError):
            render_series([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            render_series([1], {"s": [1.0]}, width=4)
