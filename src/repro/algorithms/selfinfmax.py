"""SelfInfMax solver (Problem 1): GeneralTIM + RR-SIM(+) + Sandwich.

Given a fixed B-seed set and mutually complementary GAPs, find ``k``
A-seeds maximising ``sigma_A(S_A, S_B)``:

* when B is *indifferent* to A (``q_{B|∅} = q_{B|A}``) the objective is
  monotone and submodular (Theorems 3–4) and one GeneralTIM run over
  RR-SIM/RR-SIM+ carries the ``(1 - 1/e - eps)`` guarantee (Theorem 7);
* otherwise submodularity can fail (appendix Example 3) and the solver
  applies Sandwich Approximation (§6.4): the upper bound ``nu`` raises
  ``q_{B|∅}`` to ``q_{B|A}``, the lower bound ``mu`` lowers ``q_{B|A}`` to
  ``q_{B|∅}`` (both land in the submodular regime by construction, and
  Theorem 10 orders the three objectives).  The candidate sets — plus
  optionally an MC-greedy run on the unmodified objective — are compared
  under the true ``sigma_A`` by Monte Carlo and the best wins.

.. deprecated::
    :func:`solve_selfinfmax` is a thin shim over the declarative query
    API — construct a :class:`~repro.api.session.ComICSession` and run a
    :class:`~repro.api.queries.SelfInfMaxQuery` instead; sessions reuse
    RR-set pools across queries, which this one-shot entry point cannot.
    The solver core lives in :mod:`repro.api.solvers`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph
from repro.models.gaps import GAP
from repro.rng import SeedLike
from repro.rrset.engines import ENGINES, SelectionResult
from repro.rrset.imm import IMMOptions
from repro.rrset.tim import TIMOptions
from repro.algorithms.sandwich import SandwichResult


@dataclass
class SelfInfMaxResult:
    """Solution of one SelfInfMax instance."""

    seeds: list[int]
    #: "submodular" (single TIM/IMM run) or "sandwich".
    method: str
    tim_results: dict[str, SelectionResult] = field(default_factory=dict)
    sandwich: Optional[SandwichResult] = None
    #: MC estimate of sigma_A at the returned seeds (sandwich path only).
    estimated_spread: Optional[float] = None


def solve_selfinfmax(
    graph: DiGraph,
    gaps: GAP,
    seeds_b: Sequence[int],
    k: int,
    *,
    options: Optional[TIMOptions] = None,
    rng: SeedLike = None,
    use_rr_sim_plus: bool = True,
    evaluation_runs: int = 200,
    include_greedy_candidate: bool = False,
    greedy_runs: int = 50,
    engine: str = "tim",
    imm_options: Optional[IMMOptions] = None,
) -> SelfInfMaxResult:
    """Solve one SelfInfMax instance (deprecated one-shot entry point).

    Delegates to a throwaway :class:`~repro.api.session.ComICSession`;
    prefer the session API directly when issuing more than one query over
    the same network.
    """
    warnings.warn(
        "solve_selfinfmax() is deprecated; use "
        "ComICSession.run(SelfInfMaxQuery(...)) from repro.api instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # Legacy error contract: invalid k / engine raised SeedSetError /
    # ValueError, not the query API's QueryError.
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    from repro.api import ComICSession, EngineConfig, SelfInfMaxQuery

    session = ComICSession(
        graph,
        gaps,
        config=EngineConfig.from_tim_options(
            options, engine=engine, imm_options=imm_options
        ),
        rng=rng,
    )
    # The submodular path (B indifferent to A) never touches the MC knobs;
    # legacy accepted degenerate values there, so clamp only in that case.
    # On the sandwich path a degenerate value always errored and still does.
    mc_unused = gaps.b_indifferent_to_a
    query = SelfInfMaxQuery(
        seeds_b=tuple(int(s) for s in seeds_b),
        k=k,
        use_rr_sim_plus=use_rr_sim_plus,
        evaluation_runs=(
            max(evaluation_runs, 1) if mc_unused else evaluation_runs
        ),
        include_greedy_candidate=include_greedy_candidate,
        # greedy_runs is consumed only when the greedy candidate actually
        # runs (sandwich path AND include_greedy_candidate).
        greedy_runs=(
            greedy_runs
            if not mc_unused and include_greedy_candidate
            else max(greedy_runs, 1)
        ),
    )
    return session.run(query).raw
