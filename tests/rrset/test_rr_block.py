"""RR-Block suppression-set sampling: oracle semantics and batch parity.

Mirrors the evidence layers of ``test_batch_equivalence.py`` for the
blocking regime: fixed-world equality between ``generate_batch`` and the
per-root oracle, deterministic gadgets with hand-computed suppression
sets, and aggregate frequency agreement between the two lazy sampling
paths.  The MC-vs-RR *objective* parity check lives with the query layer
(``tests/api/test_session.py``), where the estimate is actually consumed.
"""

import numpy as np
import pytest

from repro.errors import RegimeError
from repro.graph import DiGraph, path_digraph
from repro.graph.generators import power_law_digraph
from repro.models import GAP
from repro.models.possible_world import (
    FrozenWorldSource,
    PossibleWorld,
    sample_possible_world,
)
from repro.rrset import RRBlockGenerator
from repro.rrset.rr_block import check_rr_block_regime

#: One-way competition: B fully blocks A, B's diffusion indifferent to A.
GAPS_BLOCK = GAP(q_a=0.6, q_a_given_b=0.1, q_b=0.7, q_b_given_a=0.7)


def _as_sorted_sets(pool_or_list):
    return [sorted(np.asarray(rr).tolist()) for rr in pool_or_list]


@pytest.fixture(scope="module")
def random_graph() -> DiGraph:
    return power_law_digraph(120, average_degree=4.0, probability=0.4, rng=5)


class TestRegimeCheck:
    def test_accepts_one_way_competition(self):
        check_rr_block_regime(GAPS_BLOCK)
        # Boundary: q_{A|B} = q_{A|0} (A indifferent too) is still Q-.
        check_rr_block_regime(GAP(0.5, 0.5, 0.7, 0.7))

    def test_rejects_complementary_gaps(self):
        with pytest.raises(RegimeError, match="one-way competition"):
            check_rr_block_regime(GAP(0.3, 0.8, 0.5, 0.5))

    def test_rejects_b_sensitive_competition(self):
        # Mutually competitive but B not indifferent to A: B's cascade
        # depends on A's, so it cannot be resolved independently.
        with pytest.raises(RegimeError, match="one-way competition"):
            check_rr_block_regime(GAP(0.8, 0.1, 0.8, 0.1))

    def test_generator_validates_seeds(self, random_graph):
        with pytest.raises(RegimeError, match="out of range"):
            RRBlockGenerator(random_graph, GAPS_BLOCK, [10_000])


class TestFixedWorldEquality:
    @pytest.mark.parametrize("world_seed", [3, 9, 21])
    def test_batch_matches_oracle_all_roots(self, random_graph, world_seed):
        world = sample_possible_world(random_graph, rng=world_seed)
        generator = RRBlockGenerator(random_graph, GAPS_BLOCK, [0, 3, 7])
        roots = np.arange(random_graph.num_nodes)
        pool = generator.generate_batch(0, roots=roots, world=world, rng=0)
        oracle = [
            generator.generate(rng=0, root=int(r), world=FrozenWorldSource(world))
            for r in roots
        ]
        assert _as_sorted_sets(pool) == _as_sorted_sets(oracle)

    def test_every_root_appends_a_set(self, random_graph):
        # Dropped roots must still contribute (empty) sets: the
        # n * coverage / theta estimate is normalised over uniform roots.
        generator = RRBlockGenerator(random_graph, GAPS_BLOCK, [0])
        pool = generator.generate_batch(500, rng=4)
        assert len(pool) == 500


class TestDeterministicGadgets:
    """Pure one-way competition on a path: sets are computable by hand."""

    #: q_A = 1 spreads A everywhere reachable; q_{A|B} = 0 makes every
    #: interception decisive; q_B = 1 lets B relay through any node.
    GAPS_PURE = GAP(q_a=1.0, q_a_given_b=0.0, q_b=1.0, q_b_given_a=1.0)

    def _pinned_world(self, graph):
        n, m = graph.num_nodes, graph.num_edges
        return PossibleWorld(
            live=np.ones(m, dtype=bool),
            priority=np.linspace(0.05, 0.95, max(m, 1))[:m],
            alpha_a=np.full(n, 0.5),
            alpha_b=np.full(n, 0.5),
            tau_a_first=np.ones(n, dtype=bool),
        )

    def test_path_graph_interception_sets(self):
        # 0 -> 1 -> 2 -> 3 with S_A = {0}: root r adopts at step r, and
        # exactly the nodes within r hops upstream of r (A-seed excluded)
        # can deliver B no later than A.
        graph = path_digraph(4, probability=1.0)
        generator = RRBlockGenerator(graph, self.GAPS_PURE, [0])
        world = self._pinned_world(graph)
        expected = {0: [], 1: [1], 2: [1, 2], 3: [1, 2, 3]}
        for root, members in expected.items():
            batch = generator.generate_batch(
                0, roots=np.array([root]), world=world, rng=0
            )
            oracle = generator.generate(
                rng=0, root=root, world=FrozenWorldSource(world)
            )
            assert sorted(batch[0].tolist()) == members
            assert sorted(oracle.tolist()) == members

    def test_unflippable_root_yields_empty_set(self):
        # alpha_A(root) below q_{A|B}: the root adopts A even when
        # B-adopted, so no single interception can flip it.
        graph = path_digraph(3, probability=1.0)
        gaps = GAP(q_a=1.0, q_a_given_b=0.5, q_b=1.0, q_b_given_a=1.0)
        generator = RRBlockGenerator(graph, gaps, [0])
        world = self._pinned_world(graph).with_alpha(2, alpha_a=0.2)
        batch = generator.generate_batch(
            0, roots=np.array([2, 1]), world=world, rng=0
        )
        assert batch[0].size == 0  # alpha_A = 0.2 < q_{A|B} = 0.5
        assert sorted(batch[1].tolist()) == [1]  # alpha_A = 0.5 >= 0.5

    def test_failed_relay_bounds_the_set(self):
        # alpha_B(1) >= q_B: node 1 cannot relay B onward, so from root 2
        # only {2, 1} remain (1 still joins: seeding B *at* 1 blocks 2's
        # informer... no — seeding at 1 makes 1 a B-seed, which relays
        # unconditionally; the gate only stops *diffused* adoption at 1).
        graph = path_digraph(3, probability=1.0)
        gaps = GAP(q_a=1.0, q_a_given_b=0.0, q_b=0.6, q_b_given_a=0.6)
        generator = RRBlockGenerator(graph, gaps, [0])
        world = self._pinned_world(graph).with_alpha(1, alpha_b=0.9)
        batch = generator.generate_batch(
            0, roots=np.array([2]), world=world, rng=0
        )
        oracle = generator.generate(
            rng=0, root=2, world=FrozenWorldSource(world)
        )
        # 1's failed alpha_B stops the reverse relay: 0 (the A-seed) is
        # unreachable anyway, and no node upstream of 1 could join.
        assert sorted(batch[0].tolist()) == [1, 2]
        assert sorted(oracle.tolist()) == [1, 2]

    def test_tie_depth_resolved_by_tau(self):
        # 0 -> 1 -> 2 and 3 -> 1: from root 2 (d_A = 2), node 3 is found
        # at depth exactly 2 — a simultaneous arrival, resolved by 3's
        # fair world coin tau.
        import dataclasses

        graph = DiGraph.from_arrays(
            4,
            np.array([0, 1, 3]),
            np.array([1, 2, 1]),
            np.array([1.0, 1.0, 1.0]),
        )
        generator = RRBlockGenerator(graph, self.GAPS_PURE, [0])
        world = self._pinned_world(graph)  # tau all True: A wins ties
        batch = generator.generate_batch(
            0, roots=np.array([2]), world=world, rng=0
        )
        oracle = generator.generate(
            rng=0, root=2, world=FrozenWorldSource(world)
        )
        assert sorted(batch[0].tolist()) == [1, 2]
        assert sorted(oracle.tolist()) == [1, 2]
        world_b = dataclasses.replace(
            world, tau_a_first=np.zeros(4, dtype=bool)
        )
        batch_b = generator.generate_batch(
            0, roots=np.array([2]), world=world_b, rng=0
        )
        oracle_b = generator.generate(
            rng=0, root=2, world=FrozenWorldSource(world_b)
        )
        assert sorted(batch_b[0].tolist()) == [1, 2, 3]
        assert sorted(oracle_b.tolist()) == [1, 2, 3]

    def test_a_seeds_never_recorded(self, random_graph=None):
        graph = power_law_digraph(80, average_degree=5.0, probability=0.5, rng=2)
        seeds_a = [0, 1, 2, 3]
        generator = RRBlockGenerator(graph, GAPS_BLOCK, seeds_a)
        pool = generator.generate_batch(800, rng=6)
        members = set(pool.nodes.tolist())
        assert members.isdisjoint(seeds_a)
        for _ in range(200):
            assert set(generator.generate(rng=7).tolist()).isdisjoint(seeds_a)


class TestFrequencies:
    def test_batch_and_oracle_distributions_agree(self):
        graph = power_law_digraph(150, average_degree=6.0, probability=0.35, rng=7)
        gaps = GAP(q_a=0.7, q_a_given_b=0.1, q_b=0.8, q_b_given_a=0.8)
        generator = RRBlockGenerator(graph, gaps, list(range(8)))
        count = 6000
        pool = generator.generate_batch(count, rng=11)
        oracle = generator.generate_many(count, rng=12)
        size_batch = pool.lengths
        size_oracle = np.array([s.size for s in oracle])
        se = size_oracle.std() / np.sqrt(count)
        assert abs(size_batch.mean() - size_oracle.mean()) < 5 * se + 0.05
        nonempty_b = float((size_batch > 0).mean())
        nonempty_o = float((size_oracle > 0).mean())
        assert abs(nonempty_b - nonempty_o) < 0.03
        freq_b = np.bincount(pool.nodes, minlength=graph.num_nodes) / count
        flat = np.concatenate(
            [s for s in oracle if s.size] or [np.empty(0, dtype=np.int64)]
        )
        freq_o = np.bincount(
            flat.astype(np.int64), minlength=graph.num_nodes
        ) / count
        assert np.abs(freq_b - freq_o).max() < 0.03
