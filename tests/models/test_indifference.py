"""Lemma 3: when B is indifferent to A (q_{B|∅} = q_{B|A}), B's adoption
distribution is independent of the A-seed set (and symmetrically)."""

import numpy as np
import pytest

from repro.graph import DiGraph
from repro.models import GAP, exact_adoption_probabilities


def fixture_graph() -> DiGraph:
    return DiGraph.from_edges(
        5,
        [(0, 2, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.6), (1, 3, 0.5)],
    )


A_SEED_CHOICES = [[], [0], [0, 3], [4]]


@pytest.mark.parametrize(
    "gaps",
    [
        GAP(0.3, 0.9, 0.6, 0.6),  # B indifferent, B complements A
        GAP(0.9, 0.3, 0.6, 0.6),  # B indifferent, B competes with A
        GAP.independent(0.5, 0.7),
    ],
)
def test_b_distribution_independent_of_a_seeds(gaps):
    graph = fixture_graph()
    assert gaps.b_indifferent_to_a
    reference = None
    for seeds_a in A_SEED_CHOICES:
        _, pb = exact_adoption_probabilities(graph, gaps, seeds_a, [1])
        if reference is None:
            reference = pb
        else:
            np.testing.assert_allclose(pb, reference, atol=1e-12)


def test_a_distribution_independent_of_b_seeds_when_a_indifferent():
    graph = fixture_graph()
    gaps = GAP(0.5, 0.5, 0.3, 0.9)  # A indifferent to B
    assert gaps.a_indifferent_to_b
    reference = None
    for seeds_b in A_SEED_CHOICES:
        pa, _ = exact_adoption_probabilities(graph, gaps, [1], seeds_b)
        if reference is None:
            reference = pa
        else:
            np.testing.assert_allclose(pa, reference, atol=1e-12)


def test_dependence_without_indifference():
    """Sanity contrast: with genuine complementarity the B distribution does
    depend on A-seeds."""
    graph = fixture_graph()
    gaps = GAP(0.3, 0.9, 0.4, 0.95)
    _, pb_empty = exact_adoption_probabilities(graph, gaps, [], [1])
    _, pb_seeded = exact_adoption_probabilities(graph, gaps, [0], [1])
    assert not np.allclose(pb_empty, pb_seeded)
