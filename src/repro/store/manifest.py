"""`PoolManifest`: the validation record of one persisted pool entry.

A store entry is three files — two ``.npy`` columns and this manifest as
``manifest.json``.  The manifest carries everything needed to decide
whether a candidate entry may serve a load request *without* touching the
columns (the full :class:`~repro.store.keys.PoolKey`, the graph
fingerprint, the format version) plus everything needed to prove the
columns are the ones that were written (shape counts and CRC-32
checksums), plus free-form provenance (RNG description, creation time,
creator) that is recorded but never validated.

Validation is deliberately split in two:

* :meth:`PoolManifest.validate_request` — is this entry *for* the pool
  the caller wants?  Key or fingerprint mismatch means the entry belongs
  to a different network/regime: an **invalidation**.
* :meth:`PoolManifest.validate_columns` — are the column files the ones
  the manifest describes?  A mismatch means on-disk **corruption**.

Both raise :class:`~repro.errors.StoreIntegrityError`; the store's
forgiving ``load`` maps either to a miss while counting it.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import StoreIntegrityError
from repro.store.keys import PoolKey

#: on-disk format identifier; bump :data:`FORMAT_VERSION` on layout changes.
FORMAT_NAME = "repro-pool-store"
FORMAT_VERSION = 1


def crc32_of(array: np.ndarray, value: int = 0) -> int:
    """CRC-32 of an array's raw bytes (cheap corruption tripwire).

    Streams the buffer directly through the buffer protocol — no
    ``tobytes()`` copy, so checksumming a memory-mapped multi-GB column
    costs one sequential read and zero extra allocation.  ``value``
    continues a running checksum: ``crc32_of(tail, crc32_of(head))``
    equals ``crc32_of(concat(head, tail))``, which is what lets the
    store's incremental append checksum only the delta it writes.
    """
    return (
        zlib.crc32(memoryview(np.ascontiguousarray(array)).cast("B"), value)
        & 0xFFFFFFFF
    )


@dataclass(frozen=True)
class PoolManifest:
    """The JSON sidecar of one persisted :class:`~repro.rrset.pool.RRSetPool`."""

    key: PoolKey
    graph_fingerprint: str
    num_nodes: int
    num_sets: int
    total_nodes: int
    nodes_crc32: int
    indptr_crc32: int
    format_version: int = FORMAT_VERSION
    #: free-form, unvalidated: rng description, unix timestamp, creator.
    provenance: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types view; inverse of :meth:`from_dict`."""
        return {
            "format": FORMAT_NAME,
            "format_version": self.format_version,
            "key": self.key.to_dict(),
            "graph_fingerprint": self.graph_fingerprint,
            "num_nodes": self.num_nodes,
            "num_sets": self.num_sets,
            "total_nodes": self.total_nodes,
            "nodes_crc32": self.nodes_crc32,
            "indptr_crc32": self.indptr_crc32,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolManifest":
        """Rebuild from :meth:`to_dict` output; rejects foreign payloads."""
        if data.get("format") != FORMAT_NAME:
            raise StoreIntegrityError(
                f"not a {FORMAT_NAME} manifest (format={data.get('format')!r})"
            )
        try:
            return cls(
                key=PoolKey.from_dict(data["key"]),
                graph_fingerprint=str(data["graph_fingerprint"]),
                num_nodes=int(data["num_nodes"]),
                num_sets=int(data["num_sets"]),
                total_nodes=int(data["total_nodes"]),
                nodes_crc32=int(data["nodes_crc32"]),
                indptr_crc32=int(data["indptr_crc32"]),
                format_version=int(data["format_version"]),
                provenance=dict(data.get("provenance", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreIntegrityError(f"malformed manifest: {exc}") from exc

    def to_json(self) -> str:
        """Serialise for ``manifest.json``."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, payload: str) -> "PoolManifest":
        """Parse ``manifest.json`` content; any malformation is integrity."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(f"unreadable manifest: {exc}") from exc
        if not isinstance(data, dict):
            raise StoreIntegrityError("manifest must be a JSON object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_request(
        self, key: PoolKey, graph_fingerprint: Optional[str]
    ) -> None:
        """Check this entry answers the caller's request (else invalidation).

        ``graph_fingerprint=None`` skips the fingerprint comparison
        (callers that index by key only).
        """
        if self.format_version != FORMAT_VERSION:
            raise StoreIntegrityError(
                f"entry has format_version {self.format_version}, "
                f"this build reads {FORMAT_VERSION}"
            )
        if self.key != key:
            raise StoreIntegrityError(
                f"entry key {self.key} does not match requested {key}"
            )
        if graph_fingerprint is not None and (
            self.graph_fingerprint != graph_fingerprint
        ):
            raise StoreIntegrityError(
                "entry was sampled from a different graph "
                f"(fingerprint {self.graph_fingerprint[:12]}... != "
                f"{graph_fingerprint[:12]}...)"
            )

    def validate_columns(self, nodes: np.ndarray, indptr: np.ndarray) -> None:
        """Check the loaded columns are the ones written (else corruption)."""
        if indptr.shape != (self.num_sets + 1,):
            raise StoreIntegrityError(
                f"indptr column has shape {indptr.shape}, manifest says "
                f"({self.num_sets + 1},)"
            )
        if nodes.shape != (self.total_nodes,):
            raise StoreIntegrityError(
                f"nodes column has shape {nodes.shape}, manifest says "
                f"({self.total_nodes},)"
            )
        if crc32_of(nodes) != self.nodes_crc32:
            raise StoreIntegrityError("nodes column fails its CRC-32 check")
        if crc32_of(indptr) != self.indptr_crc32:
            raise StoreIntegrityError("indptr column fails its CRC-32 check")
