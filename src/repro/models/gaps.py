"""Global Adoption Probabilities (GAPs) — the NLA parameters of Com-IC (§3).

A GAP quadruple ``Q = (q_{A|∅}, q_{A|B}, q_{B|∅}, q_{B|A})`` fixes the
node-level automaton of every node:

* ``q_{A|∅}``  — probability of adopting A when informed of A and not
  B-adopted (attribute :attr:`GAP.q_a`);
* ``q_{A|B}``  — probability of adopting A when already B-adopted
  (attribute :attr:`GAP.q_a_given_b`);
* ``q_{B|∅}``, ``q_{B|A}`` — symmetric for B.

The relationship between the two items is read off the GAPs: A *complements*
B iff ``q_{B|A} >= q_{B|∅}`` and *competes* with it iff ``q_{B|A} <=
q_{B|∅}`` (equality meaning indifference, Lemma 3).  ``Q+`` denotes mutual
complementarity and ``Q-`` mutual competition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import GapError


class Relationship(enum.Enum):
    """Directional relationship of one item toward the other."""

    COMPETES = "competes"
    COMPLEMENTS = "complements"
    INDIFFERENT = "indifferent"


def _check_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise GapError(f"{name} must lie in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class GAP:
    """The four Global Adoption Probabilities of the Com-IC model.

    Attributes map to the paper's notation as::

        q_a         = q_{A|∅}      q_a_given_b = q_{A|B}
        q_b         = q_{B|∅}      q_b_given_a = q_{B|A}
    """

    q_a: float
    q_a_given_b: float
    q_b: float
    q_b_given_a: float

    def __post_init__(self) -> None:
        _check_probability("q_a", self.q_a)
        _check_probability("q_a_given_b", self.q_a_given_b)
        _check_probability("q_b", self.q_b)
        _check_probability("q_b_given_a", self.q_b_given_a)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "GAP":
        """Build from a dict with keys ``q_a, q_a_given_b, q_b, q_b_given_a``."""
        try:
            return cls(
                q_a=float(mapping["q_a"]),
                q_a_given_b=float(mapping["q_a_given_b"]),
                q_b=float(mapping["q_b"]),
                q_b_given_a=float(mapping["q_b_given_a"]),
            )
        except KeyError as exc:
            raise GapError(f"missing GAP key: {exc}") from exc

    @classmethod
    def classic_ic(cls) -> "GAP":
        """GAPs under which Com-IC degenerates to single-item classic IC.

        ``q_{A|∅} = 1`` and B never adopts (§3, "Design Considerations").
        """
        return cls(q_a=1.0, q_a_given_b=0.0, q_b=0.0, q_b_given_a=0.0)

    @classmethod
    def pure_competition(cls) -> "GAP":
        """GAPs of the (purely) Competitive IC model: first adoption wins."""
        return cls(q_a=1.0, q_a_given_b=0.0, q_b=1.0, q_b_given_a=0.0)

    @classmethod
    def independent(cls, q_a: float = 1.0, q_b: float = 1.0) -> "GAP":
        """Two fully independent propagations (both items indifferent)."""
        return cls(q_a=q_a, q_a_given_b=q_a, q_b=q_b, q_b_given_a=q_b)

    @classmethod
    def perfect_cross_sell(cls, q_b: float = 1.0) -> "GAP":
        """Perfect one-way complementarity: A is adoptable *only* after B.

        This is the regime of Narayanam & Nanavati [19] (§2 of the paper):
        ``q_{A|∅} = 0`` suspends every A-inform, and ``q_{A|B} = 1`` makes
        reconsideration certain once B is adopted.  B itself diffuses
        independently with probability ``q_b``.
        """
        return cls(q_a=0.0, q_a_given_b=1.0, q_b=q_b, q_b_given_a=q_b)

    # ------------------------------------------------------------------
    # Relationship predicates
    # ------------------------------------------------------------------
    def relationship_of_a_toward_b(self) -> Relationship:
        """How A's presence affects B's adoption (A competes with /
        complements / is indifferent to B)."""
        if self.q_b_given_a > self.q_b:
            return Relationship.COMPLEMENTS
        if self.q_b_given_a < self.q_b:
            return Relationship.COMPETES
        return Relationship.INDIFFERENT

    def relationship_of_b_toward_a(self) -> Relationship:
        """How B's presence affects A's adoption."""
        if self.q_a_given_b > self.q_a:
            return Relationship.COMPLEMENTS
        if self.q_a_given_b < self.q_a:
            return Relationship.COMPETES
        return Relationship.INDIFFERENT

    @property
    def is_mutually_complementary(self) -> bool:
        """Whether ``Q ∈ Q+``: ``q_{A|∅} <= q_{A|B}`` and ``q_{B|∅} <= q_{B|A}``."""
        return self.q_a <= self.q_a_given_b and self.q_b <= self.q_b_given_a

    @property
    def is_mutually_competitive(self) -> bool:
        """Whether ``Q ∈ Q-``: ``q_{A|∅} >= q_{A|B}`` and ``q_{B|∅} >= q_{B|A}``."""
        return self.q_a >= self.q_a_given_b and self.q_b >= self.q_b_given_a

    @property
    def b_indifferent_to_a(self) -> bool:
        """Whether B's diffusion ignores A (``q_{B|∅} = q_{B|A}``, Lemma 3)."""
        return self.q_b == self.q_b_given_a

    @property
    def a_indifferent_to_b(self) -> bool:
        """Whether A's diffusion ignores B (``q_{A|∅} = q_{A|B}``)."""
        return self.q_a == self.q_a_given_b

    @property
    def is_one_way_complementarity_for_a(self) -> bool:
        """The RR-SIM regime of Theorem 4: B complements A, A indifferent to B."""
        return self.q_a <= self.q_a_given_b and self.b_indifferent_to_a

    @property
    def is_rr_cim_regime(self) -> bool:
        """The RR-CIM regime of Theorem 5/8: ``Q+`` with ``q_{B|A} = 1``."""
        return self.is_mutually_complementary and self.q_b_given_a == 1.0

    # ------------------------------------------------------------------
    # Reconsideration probabilities (Fig. 2, rule 4)
    # ------------------------------------------------------------------
    @property
    def rho_a(self) -> float:
        """Reconsideration probability for A: ``max(q_{A|B} - q_{A|∅}, 0) / (1 - q_{A|∅})``.

        Defined to be 0 when ``q_{A|∅} = 1`` (a node can then never be
        A-suspended, so the value is immaterial).
        """
        if self.q_a >= 1.0:
            return 0.0
        return max(self.q_a_given_b - self.q_a, 0.0) / (1.0 - self.q_a)

    @property
    def rho_b(self) -> float:
        """Reconsideration probability for B (symmetric to :attr:`rho_a`)."""
        if self.q_b >= 1.0:
            return 0.0
        return max(self.q_b_given_a - self.q_b, 0.0) / (1.0 - self.q_b)

    # ------------------------------------------------------------------
    # Modified copies (used by Sandwich Approximation, §6.4)
    # ------------------------------------------------------------------
    def with_b_indifferent_high(self) -> "GAP":
        """Raise ``q_{B|∅}`` to ``q_{B|A}`` — SA upper bound for SelfInfMax."""
        return replace(self, q_b=self.q_b_given_a)

    def with_b_indifferent_low(self) -> "GAP":
        """Lower ``q_{B|A}`` to ``q_{B|∅}`` — SA lower bound for SelfInfMax."""
        return replace(self, q_b_given_a=self.q_b)

    def with_q_b_given_a_one(self) -> "GAP":
        """Raise ``q_{B|A}`` to 1 — SA upper bound for CompInfMax."""
        return replace(self, q_b_given_a=1.0)

    def swapped(self) -> "GAP":
        """Exchange the roles of A and B."""
        return GAP(
            q_a=self.q_b,
            q_a_given_b=self.q_b_given_a,
            q_b=self.q_a,
            q_b_given_a=self.q_a_given_b,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(q_{A|∅}, q_{A|B}, q_{B|∅}, q_{B|A})`` in the paper's order."""
        return (self.q_a, self.q_a_given_b, self.q_b, self.q_b_given_a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GAP(q_A|0={self.q_a}, q_A|B={self.q_a_given_b}, "
            f"q_B|0={self.q_b}, q_B|A={self.q_b_given_a})"
        )
