"""`PoolStore`: versioned on-disk snapshots of RR-set pools.

The pool layout (two flat CSR columns, :mod:`repro.rrset.pool`) makes
persistence almost free: an entry is a directory holding the columns as
plain ``.npy`` files plus a JSON manifest::

    <root>/<key digest>/
        manifest.json     # PoolManifest: key, fingerprint, counts, CRCs
        nodes.npy         # int32 member-node column
        indptr.npy        # int64 CSR offset column

Loads memory-map the columns by default (``mmap_mode="r"``): adopting
them into an :class:`~repro.rrset.pool.RRSetPool` is zero-copy
(:meth:`RRSetPool.from_flat`) and the pool stays appendable because its
first growth reallocates into fresh writable memory.  (Checksum
verification does stream each column once at load — integrity costs one
sequential read; everything after that touches pages lazily and
copy-free.)

Every load is *validated*: the manifest must describe exactly the
requested :class:`~repro.store.keys.PoolKey` and (when given) graph
fingerprint — otherwise the entry was sampled from a different problem
and serving it would be silently wrong — and the columns must match the
manifest's shapes and CRC-32 checksums — otherwise the files were
corrupted or tampered with.  The forgiving :meth:`PoolStore.load` maps
both failure kinds to a miss and counts an **invalidation** in
:class:`StoreStats`; :meth:`PoolStore.load_strict` raises the underlying
:class:`~repro.errors.StoreIntegrityError` for callers (and tests) that
want the reason.

Writes are staged + renamed: an entry is built in a ``.staging.*``
directory, the old entry is atomically moved aside, and the staging
directory atomically renamed into place, so readers never observe a
half-written entry (at worst a momentary miss).  Concurrent writers of
the same key race on the final rename; exactly one installs, losers
discard their staging quietly — the right semantics when entries are
identical re-samplings, and documented for everything else.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

import numpy as np

from repro.errors import StoreError, StoreIntegrityError
from repro.rrset.pool import RRSetPool
from repro.store.keys import PoolKey
from repro.store.manifest import PoolManifest, crc32_of

MANIFEST_FILE = "manifest.json"
NODES_FILE = "nodes.npy"
INDPTR_FILE = "indptr.npy"

PathLike = Union[str, os.PathLike]


@dataclass
class StoreStats:
    """Cumulative accounting of one :class:`PoolStore` instance."""

    #: loads answered from a valid on-disk entry.
    hits: int = 0
    #: loads for keys with no on-disk entry at all.
    misses: int = 0
    #: loads that found an entry but rejected it (wrong key/fingerprint,
    #: wrong format version, corrupted columns).
    invalidations: int = 0
    #: entries written (new or overwritten).
    saves: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return asdict(self)


class PoolStore:
    """A directory of persisted RR-set pools, addressed by :class:`PoolKey`."""

    def __init__(self, root: PathLike, *, mmap: bool = True) -> None:
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise StoreError(f"store root {self._root} exists and is not a directory")
        self._root.mkdir(parents=True, exist_ok=True)
        self._mmap = bool(mmap)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def entry_dir(self, key: PoolKey) -> Path:
        """The directory a key's entry lives in (existing or not)."""
        if not isinstance(key, PoolKey):
            raise StoreError(f"key must be a PoolKey, got {type(key).__name__}")
        return self._root / key.digest()

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(
        self,
        key: PoolKey,
        pool: RRSetPool,
        *,
        graph_fingerprint: str,
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist ``pool`` under ``key``, replacing any previous entry.

        ``graph_fingerprint`` must be :meth:`DiGraph.fingerprint` of the
        graph the pool was sampled from — it is what load-time validation
        checks against.  ``provenance`` is recorded verbatim into the
        manifest (RNG description, creator, ...) on top of the
        automatically stamped ``created_unix``.  Returns the entry
        directory.

        The entry is staged in full, the previous entry (if any) is
        atomically moved aside, and the staging directory is atomically
        renamed into place — a reader never observes a half-written
        entry, and a crash leaves the old entry, the new entry, or (only
        within the single-rename window between the two moves) a plain
        miss, never a corrupt mix.  Concurrent same-key writers race on
        the final rename: exactly one wins, losers discard their staging
        quietly (identical re-samplings are the expected case).
        """
        entry = self.entry_dir(key)
        if not isinstance(pool, RRSetPool):
            raise StoreError(f"pool must be an RRSetPool, got {type(pool).__name__}")
        nodes = np.ascontiguousarray(pool.nodes, dtype=np.int32)
        indptr = np.ascontiguousarray(pool.indptr, dtype=np.int64)
        stamped: dict[str, Any] = {"created_unix": time.time()}
        if provenance:
            stamped.update(provenance)
        manifest = PoolManifest(
            key=key,
            graph_fingerprint=str(graph_fingerprint),
            num_nodes=pool.num_nodes,
            num_sets=len(pool),
            total_nodes=pool.total_nodes,
            nodes_crc32=crc32_of(nodes),
            indptr_crc32=crc32_of(indptr),
            provenance=stamped,
        )
        staging = self._root / f".staging.{key.digest()}.{os.getpid()}"
        retired = self._root / f".trash.{key.digest()}.{os.getpid()}"
        shutil.rmtree(staging, ignore_errors=True)
        shutil.rmtree(retired, ignore_errors=True)
        staging.mkdir(parents=True)
        try:
            np.save(staging / NODES_FILE, nodes)
            np.save(staging / INDPTR_FILE, indptr)
            (staging / MANIFEST_FILE).write_text(
                manifest.to_json(), encoding="utf-8"
            )
            moved_aside = False
            if entry.exists():
                try:
                    os.replace(entry, retired)  # atomic move-aside
                except OSError as exc:
                    # Failing to retire the old entry is a genuine error
                    # (EACCES, EIO, ...), never the install race — do not
                    # mask it as success with the stale entry in place.
                    shutil.rmtree(staging, ignore_errors=True)
                    raise StoreError(
                        f"failed to retire previous entry for {key}: {exc}"
                    ) from exc
                moved_aside = True
            try:
                os.replace(staging, entry)
            except OSError as exc:
                shutil.rmtree(staging, ignore_errors=True)
                if entry.exists():
                    # Benign same-key race: another writer installed an
                    # (equivalent) entry between our renames; theirs
                    # stands, our old copy can retire.
                    shutil.rmtree(retired, ignore_errors=True)
                    return entry
                if moved_aside:
                    # Genuine failure (EIO, EACCES, ...): put the old —
                    # still valid — entry back rather than losing it.
                    try:
                        os.replace(retired, entry)
                    except OSError:  # pragma: no cover - double fault
                        pass
                raise StoreError(
                    f"failed to install entry for {key}: {exc}"
                ) from exc
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        shutil.rmtree(retired, ignore_errors=True)
        self.stats.saves += 1
        return entry

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        key: PoolKey,
        *,
        graph_fingerprint: Optional[str] = None,
        mmap: Optional[bool] = None,
    ) -> Optional[RRSetPool]:
        """Load the pool for ``key``, or ``None`` on miss/invalid entry.

        The forgiving entry point a cache sits on: a missing entry counts
        a miss, an entry that fails validation (foreign key, different
        graph fingerprint, corrupted columns) counts an *invalidation*,
        and both return ``None`` so the caller just resamples.  ``mmap``
        overrides the store default for this load.
        """
        try:
            pool = self.load_strict(
                key, graph_fingerprint=graph_fingerprint, mmap=mmap
            )
        except StoreIntegrityError:
            self.stats.invalidations += 1
            return None
        if pool is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return pool

    def load_strict(
        self,
        key: PoolKey,
        *,
        graph_fingerprint: Optional[str] = None,
        mmap: Optional[bool] = None,
    ) -> Optional[RRSetPool]:
        """Like :meth:`load` but raising
        :class:`~repro.errors.StoreIntegrityError` on an invalid entry
        (``None`` still means plain miss).  Does not touch :attr:`stats`.
        """
        entry = self.entry_dir(key)
        manifest_path = entry / MANIFEST_FILE
        if not manifest_path.exists():
            return None
        manifest = self._read_manifest(manifest_path)
        manifest.validate_request(key, graph_fingerprint)
        use_mmap = self._mmap if mmap is None else bool(mmap)
        mmap_mode = "r" if use_mmap else None
        try:
            nodes = np.load(entry / NODES_FILE, mmap_mode=mmap_mode)
            indptr = np.load(entry / INDPTR_FILE, mmap_mode=mmap_mode)
        except (OSError, ValueError) as exc:
            raise StoreIntegrityError(f"unreadable column file: {exc}") from exc
        if nodes.dtype != np.int32 or indptr.dtype != np.int64:
            raise StoreIntegrityError(
                f"column dtypes {nodes.dtype}/{indptr.dtype} are not int32/int64"
            )
        manifest.validate_columns(nodes, indptr)
        # The CRC pass just proved the columns byte-identical to what
        # save() wrote from a validated pool, so from_flat's CSR re-scan
        # (two more full passes over possibly mmap'd data) is redundant.
        return RRSetPool.from_flat(
            manifest.num_nodes, nodes, indptr, validate=False
        )

    def manifest(self, key: PoolKey) -> Optional[PoolManifest]:
        """The manifest of a key's entry (validated parse), or ``None``."""
        path = self.entry_dir(key) / MANIFEST_FILE
        if not path.exists():
            return None
        return self._read_manifest(path)

    @staticmethod
    def _read_manifest(path: Path) -> PoolManifest:
        try:
            payload = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StoreIntegrityError(f"unreadable manifest: {exc}") from exc
        return PoolManifest.from_json(payload)

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def contains(
        self, key: PoolKey, *, graph_fingerprint: Optional[str] = None
    ) -> bool:
        """Whether a *valid* entry for ``key`` (and fingerprint) exists."""
        try:
            pool = self.load_strict(key, graph_fingerprint=graph_fingerprint)
        except StoreIntegrityError:
            return False
        return pool is not None

    def entries(self) -> Iterator[PoolManifest]:
        """Iterate the manifests of every readable entry (sorted by dir).

        In-flight staging and crash-orphaned ``.staging.*`` / ``.trash.*``
        directories are skipped — only installed entries are inventory.
        """
        for child in sorted(self._root.iterdir()):
            if child.name.startswith("."):
                continue
            manifest_path = child / MANIFEST_FILE
            if not manifest_path.exists():
                continue
            try:
                yield self._read_manifest(manifest_path)
            except StoreIntegrityError:
                continue

    def delete(self, key: PoolKey) -> bool:
        """Remove a key's entry; returns whether one existed."""
        entry = self.entry_dir(key)
        if not entry.exists():
            return False
        shutil.rmtree(entry)
        return True

    def clear(self) -> None:
        """Remove every entry (the root directory itself survives)."""
        for child in self._root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        count = sum(1 for _ in self.entries())
        return f"PoolStore(root={str(self._root)!r}, entries={count})"
