"""Benchmark: Figure 4 — effect of epsilon on RR-set algorithms.

Shape check (paper): as epsilon grows from 0.1 to 1, theta (and hence
runtime) falls by orders of magnitude while seed quality stays flat
(the paper's largest quality drop across the sweep is 0.45%).
"""

from repro.experiments import figure4_epsilon_effect


def bench_fig4_epsilon(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: figure4_epsilon_effect(
            bench_scale, epsilons=(0.25, 0.5, 1.0), max_rr_sets=12_000
        ),
        rounds=1, iterations=1,
    )
    save_table(result, "figure4_epsilon_effect")
    thetas = result.column("theta")
    assert thetas == sorted(thetas, reverse=True)
    spreads = [row["sim_spread"] for row in result.rows]
    assert max(spreads) - min(spreads) <= 0.25 * max(spreads) + 1.0
