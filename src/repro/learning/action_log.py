"""Timestamped user action logs (paper §7.2).

Each entry is a quadruple ``(user, item, action, time)``.  Two action types
matter for GAP learning:

* ``RATE``   — the user adopted (rated) the item;
* ``INFORM`` — the user was exposed to the item without (necessarily)
  adopting it.  The paper mines these from Flixster's "want to see" /
  "not interested" flags and Douban's wish lists.

As in the paper, every rating is *also* counted as an informing event ("if
someone rated an item, she must have been informed of it first"): queries
below apply that closure automatically, using the rating's timestamp when
no earlier explicit inform exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional

from repro.errors import ActionLogError

#: Action kinds.
INFORM = "inform"
RATE = "rate"

_VALID_ACTIONS = frozenset({INFORM, RATE})


@dataclass(frozen=True, order=True)
class ActionEvent:
    """One log entry: ``user`` performed ``action`` on ``item`` at ``time``."""

    time: float
    user: Hashable
    item: Hashable
    action: str

    def __post_init__(self) -> None:
        if self.action not in _VALID_ACTIONS:
            raise ActionLogError(
                f"unknown action {self.action!r}; expected one of {sorted(_VALID_ACTIONS)}"
            )
        if not math.isfinite(self.time):
            raise ActionLogError(f"non-finite timestamp {self.time!r}")


class ActionLog:
    """An append-only collection of :class:`ActionEvent` with fast queries.

    Only the *earliest* rate and the *earliest* inform per (user, item)
    matter to the estimator; later duplicates are absorbed.
    """

    def __init__(self, events: Iterable[ActionEvent] = ()) -> None:
        self._first_rate: dict[tuple[Hashable, Hashable], float] = {}
        self._first_inform: dict[tuple[Hashable, Hashable], float] = {}
        self._users: set[Hashable] = set()
        self._items: set[Hashable] = set()
        self._size = 0
        for event in events:
            self.add(event)

    def add(self, event: ActionEvent) -> None:
        """Append one event."""
        key = (event.user, event.item)
        self._users.add(event.user)
        self._items.add(event.item)
        self._size += 1
        if event.action == RATE:
            current = self._first_rate.get(key)
            if current is None or event.time < current:
                self._first_rate[key] = event.time
        # Every action (inform or rate) witnesses exposure.
        current = self._first_inform.get(key)
        if current is None or event.time < current:
            self._first_inform[key] = event.time

    def record(self, user: Hashable, item: Hashable, action: str, time: float) -> None:
        """Convenience wrapper building the :class:`ActionEvent`."""
        self.add(ActionEvent(time=float(time), user=user, item=item, action=action))

    # ------------------------------------------------------------------
    # Queries used by the §7.2 estimator
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Number of raw events appended (before deduplication)."""
        return self._size

    @property
    def users(self) -> set[Hashable]:
        """All users appearing in the log."""
        return set(self._users)

    @property
    def items(self) -> set[Hashable]:
        """All items appearing in the log."""
        return set(self._items)

    def canonical_events(self) -> Iterator[ActionEvent]:
        """Yield the deduplicated event set this log is equivalent to.

        One RATE per first rating and one INFORM per first exposure that
        strictly precedes the rating (an exposure at the rating time is
        implied by the rating itself).  Feeding these events to a fresh
        :class:`ActionLog` reproduces every query result — the contract
        :mod:`repro.learning.log_io` round-trips on.
        """
        for (user, item), time in sorted(
            self._first_inform.items(), key=lambda kv: (kv[1], str(kv[0]))
        ):
            rate = self._first_rate.get((user, item))
            if rate is None or time < rate:
                yield ActionEvent(time=time, user=user, item=item, action=INFORM)
        for (user, item), time in sorted(
            self._first_rate.items(), key=lambda kv: (kv[1], str(kv[0]))
        ):
            yield ActionEvent(time=time, user=user, item=item, action=RATE)

    def rate_time(self, user: Hashable, item: Hashable) -> Optional[float]:
        """Earliest time ``user`` rated ``item`` (None if never)."""
        return self._first_rate.get((user, item))

    def inform_time(self, user: Hashable, item: Hashable) -> Optional[float]:
        """Earliest time ``user`` was informed of ``item`` (None if never).

        Ratings count as informs, so this is never later than
        :meth:`rate_time`.
        """
        return self._first_inform.get((user, item))

    def raters(self, item: Hashable) -> set[Hashable]:
        """``R_item``: users who rated ``item``."""
        return {user for (user, it) in self._first_rate if it == item}

    def informed(self, item: Hashable) -> set[Hashable]:
        """``I_item``: users informed of ``item`` (superset of raters)."""
        return {user for (user, it) in self._first_inform if it == item}

    def rated_before_rating(self, first: Hashable, second: Hashable) -> set[Hashable]:
        """``R_{first ≺ rate second}``: users who rated both items with
        ``first`` strictly earlier."""
        result = set()
        for user in self.raters(first) & self.raters(second):
            if self.rate_time(user, first) < self.rate_time(user, second):  # type: ignore[operator]
                result.add(user)
        return result

    def rated_before_informed(self, first: Hashable, second: Hashable) -> set[Hashable]:
        """``R_{first ≺ inform second}``: users who rated ``first`` before
        being informed of ``second``."""
        result = set()
        for user in self.raters(first) & self.informed(second):
            if self.rate_time(user, first) < self.inform_time(user, second):  # type: ignore[operator]
                result.add(user)
        return result

    def events_of_user(self, user: Hashable) -> Iterator[tuple[Hashable, str, float]]:
        """Yield ``(item, action, time)`` firsts for ``user`` (rate/inform)."""
        for (u, item), t in self._first_inform.items():
            if u == user:
                yield item, INFORM, t
        for (u, item), t in self._first_rate.items():
            if u == user:
                yield item, RATE, t

    def __len__(self) -> int:
        return self._size
