"""Degree-discount seed-selection heuristics (Chen, Wang & Wang, KDD 2010).

The paper's baseline comparison ([9] in its references) popularised two
near-linear-time heuristics that refine HighDegree by accounting for seeds
already chosen among a node's neighbours:

* **SingleDiscount** — each selected seed discounts the degree of its
  in-neighbours by one (a neighbour edge pointing *into* a seed can no
  longer contribute new activations);
* **DegreeDiscount** — the IC-specific refinement: for a node ``v`` with
  ``t_v`` selected out-neighbours... (the original derivation assumes a
  uniform propagation probability ``p``), the discounted degree is::

      dd_v = d_v - 2 t_v - (d_v - t_v) * t_v * p

Both are structural baselines in the spirit of the paper's HighDegree and
PageRank rows; they ignore the NLA entirely, which is exactly what makes
them useful comparison points for GeneralTIM on Com-IC instances.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

import numpy as np

from repro.errors import SeedSetError
from repro.graph.digraph import DiGraph


def _validated_k(graph: DiGraph, k: int, excluded: set[int]) -> int:
    if k < 0:
        raise SeedSetError(f"k must be non-negative, got {k}")
    available = graph.num_nodes - len(excluded)
    if k > available:
        raise SeedSetError(f"cannot select {k} seeds from {available} eligible nodes")
    return k


def single_discount_seeds(
    graph: DiGraph, k: int, *, exclude: Iterable[int] = ()
) -> list[int]:
    """SingleDiscount: greedy out-degree with a unit discount per chosen
    neighbour seed.

    Ties break toward the smaller node id so results are deterministic.
    """
    excluded = {int(v) for v in exclude}
    k = _validated_k(graph, k, excluded)
    degree = graph.out_degrees.astype(np.int64).copy()
    # Max-heap with lazy invalidation: entries are (-degree, node).
    heap = [(-int(degree[v]), v) for v in range(graph.num_nodes) if v not in excluded]
    heapq.heapify(heap)
    chosen: list[int] = []
    chosen_set: set[int] = set()
    while heap and len(chosen) < k:
        neg_d, v = heapq.heappop(heap)
        if v in chosen_set:
            continue
        if -neg_d != int(degree[v]):
            heapq.heappush(heap, (-int(degree[v]), v))
            continue
        chosen.append(v)
        chosen_set.add(v)
        # Each in-neighbour loses the edge into the new seed.
        for u in graph.in_neighbors(v):
            u = int(u)
            if u not in chosen_set:
                degree[u] -= 1
    return chosen


def degree_discount_seeds(
    graph: DiGraph,
    k: int,
    *,
    propagation_probability: Optional[float] = None,
    exclude: Iterable[int] = (),
) -> list[int]:
    """DegreeDiscount: the IC-aware discounted-degree heuristic of [9].

    ``propagation_probability`` is the uniform ``p`` of the heuristic's
    derivation; when ``None`` it defaults to the mean edge probability of
    the graph (our graphs carry per-edge probabilities).
    """
    excluded = {int(v) for v in exclude}
    k = _validated_k(graph, k, excluded)
    if propagation_probability is None:
        probs = graph.edge_probabilities
        p = float(probs.mean()) if probs.size else 0.0
    else:
        p = float(propagation_probability)
        if not 0.0 <= p <= 1.0:
            raise SeedSetError(
                f"propagation probability must lie in [0, 1], got {p}"
            )

    degree = graph.out_degrees.astype(np.float64)
    t = np.zeros(graph.num_nodes, dtype=np.int64)  # selected out-neighbours
    dd = degree.copy()
    heap = [(-dd[v], v) for v in range(graph.num_nodes) if v not in excluded]
    heapq.heapify(heap)
    chosen: list[int] = []
    chosen_set: set[int] = set()
    while heap and len(chosen) < k:
        neg_dd, v = heapq.heappop(heap)
        if v in chosen_set:
            continue
        if -neg_dd != dd[v]:
            heapq.heappush(heap, (-float(dd[v]), v))
            continue
        chosen.append(v)
        chosen_set.add(v)
        # A new seed updates the discount of every in-neighbour u: u now has
        # one more selected out-neighbour.
        for u in graph.in_neighbors(v):
            u = int(u)
            if u in chosen_set:
                continue
            t[u] += 1
            dd[u] = degree[u] - 2.0 * t[u] - (degree[u] - t[u]) * t[u] * p
    return chosen
