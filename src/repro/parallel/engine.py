"""`ParallelEngine`: multiprocess sharded RR-set generation.

RR-set sampling is embarrassingly parallel — every set draws an
independent possible world — yet the batched kernels are single-core
(numpy releases the GIL but one process drives one sweep at a time).
This engine shards a ``generate_batch`` request across worker
*processes*: each worker holds a pickled copy of the wrapped
:class:`~repro.rrset.base.RRSetGenerator` (shipped once, at pool
start-up), runs the regime's existing vectorized kernel on its shard
with its own :class:`numpy.random.SeedSequence` child stream, and
returns the shard's flat CSR columns; the parent folds shards back into
one :class:`~repro.rrset.pool.RRSetPool` with the O(total-size) merge
kernel (:meth:`RRSetPool.extend_pool`).

Design points:

* **It is itself an** :class:`RRSetGenerator` wrapping another one, so
  TIM, IMM and :class:`~repro.api.session.ComICSession` scale across
  cores with zero changes — IMM's incremental top-ups simply arrive as
  sharded batches.  The per-root oracle :meth:`generate` delegates to
  the wrapped generator in-process.
* **Spawn-safe**: workers use the ``spawn`` start method (no fork-time
  state smuggling, works identically on macOS/Windows), receive the
  generator via a pool initializer, and stay resident across calls, so
  interpreter start-up is paid once per worker, not per batch.
* **Deterministic given the seed**: shard ``i`` of a call always draws
  from child stream ``i`` of a sequence derived from the caller's rng,
  and shards are merged in shard order — the output pool is a pure
  function of (generator, workers, rng state), independent of worker
  scheduling, *and of any crash/hang recovery*: a retried shard replays
  the same child stream, so a batch that survives worker deaths is
  byte-identical to an undisturbed one.  It is *not* the same stream
  layout as a serial ``generate_batch`` call, so parallel and serial
  pools are equal in distribution, not element-wise — except on full
  serial fallback, where the caller's rng state is restored first and
  the result is exactly the serial run's.
* **Fault tolerance**: a dead worker pool (``BrokenProcessPool``) or a
  shard that blows through ``shard_deadline_s`` (a hung worker, which is
  killed) triggers a bounded per-shard retry loop on a restarted
  executor with exponential backoff; completed shards are never redone.
  Only after ``max_shard_attempts`` per shard does the call fall back to
  serial in-process generation — with the rng rewound, so even the
  degraded result is deterministic.  ``ParallelStats`` surfaces
  ``retries`` / ``restarts`` / ``hung_kills`` / ``serial_fallbacks``,
  and the session folds them into ``SessionStats`` and each result's
  diagnostics.  Requests smaller than ``min_batch_per_worker * 2`` run
  serially in-process (IPC would beat the savings).
* **Deterministic failure testing**: the shard dispatch consults the
  active :class:`~repro.faults.FaultPlan` (site ``"parallel.shard"``),
  so worker crashes, hangs and slow shards are injected deterministically
  from ordinary tests instead of by racing real process kills.

A query deadline (:func:`repro.deadline.current_deadline`) is honoured
at shard joins: when it expires mid-batch the call raises
:class:`~repro.errors.DeadlineExceeded` without merging partial shards
(the engines catch it and degrade to the samples they already pooled).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from multiprocessing import get_context
from typing import Optional

import numpy as np

from repro import faults
from repro.deadline import current_deadline
from repro.errors import DeadlineExceeded, ParallelError
from repro.rng import SeedLike, make_rng
from repro.rrset.base import RRSetGenerator
from repro.rrset.pool import RRSetPool

#: per-process generator replica, installed by :func:`_initialize_worker`.
_WORKER_GENERATOR: Optional[RRSetGenerator] = None

#: per-process generator cache of *shared*-pool workers, keyed by payload
#: digest: each (worker, generator) pair unpickles once, however many
#: engines time-share the pool.
_WORKER_GENERATORS: dict[str, RRSetGenerator] = {}

#: bound on the shared-worker generator cache (a long-lived service can
#: rotate through many cached pools; dict order is the eviction order).
_WORKER_GENERATOR_CACHE_MAX = 8

#: exit code of a fault-injected worker crash (visible in core dumps/logs).
_CRASH_EXIT_CODE = 13


def _initialize_worker(payload: bytes) -> None:
    """Worker-pool initializer: unpickle the generator replica once."""
    global _WORKER_GENERATOR
    _WORKER_GENERATOR = pickle.loads(payload)


def _resolve_generator(
    payload: Optional[tuple[str, bytes]],
) -> RRSetGenerator:
    """The generator replica a shard should run (worker side).

    ``payload is None`` means a private engine shipped its generator via
    the pool initializer.  Shared-pool engines attach ``(digest, blob)``
    to every task instead (a respawned executor has no initializer
    state); the blob is unpickled once per (worker, digest) and cached.
    """
    if payload is None:
        if _WORKER_GENERATOR is None:  # pragma: no cover - misdispatch guard
            raise RuntimeError("worker has no initialized generator replica")
        return _WORKER_GENERATOR
    digest, blob = payload
    generator = _WORKER_GENERATORS.get(digest)
    if generator is None:
        generator = pickle.loads(blob)
        while len(_WORKER_GENERATORS) >= _WORKER_GENERATOR_CACHE_MAX:
            _WORKER_GENERATORS.pop(next(iter(_WORKER_GENERATORS)))
        _WORKER_GENERATORS[digest] = generator
    return generator


def _generate_shard(
    task: tuple[
        int,
        Optional[np.ndarray],
        np.random.SeedSequence,
        Optional[tuple[str, float]],
        Optional[tuple[str, bytes]],
    ],
) -> tuple[np.ndarray, np.ndarray]:
    """Run one shard in a worker; returns the shard pool's flat columns.

    ``directive`` is the fault-injection instruction the parent attached
    at dispatch (``None`` outside fault tests): ``crash`` kills this
    worker process exactly as a segfault/OOM-kill would, ``hang`` sleeps
    past the parent's shard deadline, ``slow`` sleeps then computes
    normally.  ``payload`` selects the generator replica (see
    :func:`_resolve_generator`).
    """
    count, roots, seed_seq, directive, payload = task
    if directive is not None:
        kind, delay_s = directive
        if kind == "crash":
            os._exit(_CRASH_EXIT_CODE)
        elif kind == "hang":
            time.sleep(delay_s if delay_s > 0 else 3600.0)
        elif kind == "slow":
            time.sleep(delay_s)
    rng = np.random.default_rng(seed_seq)
    generator = _resolve_generator(payload)
    pool = generator.generate_batch(count, rng=rng, roots=roots)
    indptr = np.asarray(pool.indptr)
    if indptr.size and int(indptr[-1]) <= np.iinfo(np.uint32).max:
        # Halve the offset column's IPC bytes: the parent's from_flat
        # adopts uint32 indptr directly and widens lazily on growth.
        indptr = indptr.astype(np.uint32)
    return np.asarray(pool.nodes), indptr


def _worker_ready(deadline: float) -> int:
    """Warm-up task: hold the worker until ``deadline`` (wall clock)."""
    time.sleep(max(0.0, deadline - time.time()))
    return os.getpid()


@dataclass
class ParallelStats:
    """Cumulative fault-recovery accounting of one :class:`ParallelEngine`."""

    #: parallel batches dispatched (serial pass-throughs not counted).
    batches: int = 0
    #: shard re-dispatches after a failed attempt.
    retries: int = 0
    #: worker-pool teardowns forced by a failure (the pool respawns on
    #: the next dispatch).
    restarts: int = 0
    #: shards killed for exceeding ``shard_deadline_s``.
    hung_kills: int = 0
    #: batches completed serially after retries were exhausted.
    serial_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (snapshot/delta arithmetic in the session)."""
        return asdict(self)


class WorkerPool:
    """One spawn-safe process pool time-shared by many :class:`ParallelEngine`\\ s.

    A private engine ships its generator through the pool *initializer*,
    which welds the executor to that one generator — so a session caching
    P pools at ``workers=K`` used to hold P·K resident processes.  A
    ``WorkerPool`` breaks the weld: it owns a bare executor (no
    initializer), and engines sharing it attach their pickled generator
    to each task instead; workers unpickle each distinct generator once
    and cache it (:data:`_WORKER_GENERATORS`), so the per-task cost after
    the first touch is one small digest lookup plus the (unavoidable)
    pickled-blob transfer on the task message.

    Thread-safe: engines may dispatch from different threads (the service
    does).  Failure recovery kills the executor and bumps
    :attr:`generation`; :meth:`kill` accepts the generation the caller
    observed so a slow engine cannot tear down the *replacement* pool
    another engine already respawned.  :meth:`close` is terminal.
    """

    def __init__(self, workers: int) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._closed = False

    @property
    def workers(self) -> int:
        """Worker-process count of the pool."""
        return self._workers

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (terminal)."""
        return self._closed

    @property
    def generation(self) -> int:
        """Bumped on every kill; identifies the current executor epoch."""
        return self._generation

    def executor(self) -> tuple[ProcessPoolExecutor, int]:
        """The live executor and its generation (spawning it if needed)."""
        with self._lock:
            if self._closed:
                raise ParallelError(
                    "WorkerPool is closed; build a new pool instead of "
                    "reusing one whose workers were shut down"
                )
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=get_context("spawn"),
                )
            return self._executor, self._generation

    def kill(self, generation: Optional[int] = None, *, wait: bool = False) -> None:
        """Tear the executor down (workers terminated, not joined on task).

        ``generation`` (when given) makes the kill conditional: it only
        applies to the epoch the caller actually observed failing, so
        concurrent engines reporting the same broken pool tear it down
        once, and never a fresh replacement.
        """
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            executor, self._executor = self._executor, None
            self._generation += 1
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - platform-dependent
                pass
        executor.shutdown(wait=wait, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down for good (idempotent, terminal)."""
        self._closed = True
        self.kill(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "live" if self._executor is not None else "cold"
        )
        return f"WorkerPool(workers={self._workers}, {state})"


class ParallelEngine(RRSetGenerator):
    """Wrap an :class:`RRSetGenerator` with a persistent worker pool.

    ``workers`` is the number of worker processes; ``workers <= 1`` makes
    the engine a transparent serial pass-through.  Workers are spawned
    lazily on the first parallel batch (or eagerly via :meth:`warm_up`).

    ``max_shard_attempts`` bounds how many times one shard is dispatched
    before the whole batch falls back to serial; ``backoff_s`` seeds the
    exponential pause between retry rounds; ``shard_deadline_s`` (when
    set) is the per-round time budget after which outstanding shards are
    presumed hung and their workers killed.

    ``shared_pool`` attaches the engine to a session-wide
    :class:`WorkerPool` instead of private workers: the generator then
    rides on each task (cached worker-side after the first touch) and
    :meth:`close` detaches without killing the shared processes — it is
    how ``workers=K`` stays K processes per session rather than K per
    cached pool.  ``workers`` must match the pool's count.

    :meth:`close` is **terminal**: a closed engine raises
    :class:`~repro.errors.ParallelError` on any further generation call
    instead of resurrecting its pool (stale references to evicted session
    entries used to surface as ``BrokenProcessPool`` here).  Use the
    engine as a context manager when its lifetime is scoped.  Not
    picklable (it owns OS processes).
    """

    def __init__(
        self,
        generator: RRSetGenerator,
        workers: int,
        *,
        min_batch_per_worker: int = 256,
        max_shard_attempts: int = 3,
        backoff_s: float = 0.05,
        shard_deadline_s: Optional[float] = None,
        shared_pool: Optional[WorkerPool] = None,
    ) -> None:
        if isinstance(generator, ParallelEngine):
            raise ValueError("refusing to nest ParallelEngine in ParallelEngine")
        super().__init__(generator.graph)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shared_pool is not None and shared_pool.workers != workers:
            raise ValueError(
                f"workers={workers} does not match the shared pool's "
                f"{shared_pool.workers} worker processes"
            )
        if min_batch_per_worker < 1:
            raise ValueError(
                f"min_batch_per_worker must be >= 1, got {min_batch_per_worker}"
            )
        if max_shard_attempts < 1:
            raise ValueError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if shard_deadline_s is not None and shard_deadline_s <= 0:
            raise ValueError(
                f"shard_deadline_s must be positive (or None), got {shard_deadline_s}"
            )
        self._inner = generator
        self._workers = workers
        self._min_batch = int(min_batch_per_worker)
        self._max_attempts = int(max_shard_attempts)
        self._backoff_s = float(backoff_s)
        self._shard_deadline_s = shard_deadline_s
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shared = shared_pool
        #: shared-pool generation last obtained (scopes conditional kills).
        self._shared_gen = -1
        #: lazily-pickled ``(digest, blob)`` task payload in shared mode.
        self._payload: Optional[tuple[str, bytes]] = None
        self._closed = False
        self.stats = ParallelStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inner(self) -> RRSetGenerator:
        """The wrapped serial generator."""
        return self._inner

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (terminal)."""
        return self._closed

    @property
    def shared_pool(self) -> Optional[WorkerPool]:
        """The attached shared :class:`WorkerPool`, if any."""
        return self._shared

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ParallelError(
                "ParallelEngine is closed; build a new engine instead of "
                "reusing one whose workers were shut down (e.g. via a stale "
                "reference to an evicted session pool entry)"
            )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        self._check_open()
        if self._shared is not None:
            executor, self._shared_gen = self._shared.executor()
            return executor
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=get_context("spawn"),
                initializer=_initialize_worker,
                initargs=(pickle.dumps(self._inner),),
            )
        return self._executor

    def _task_payload(self) -> Optional[tuple[str, bytes]]:
        """Per-task generator payload: ``None`` for private engines
        (initializer delivered the replica), ``(digest, blob)`` over a
        shared pool.  Content-addressed, so identical generators across
        engines collapse to one worker-side cache slot."""
        if self._shared is None:
            return None
        if self._payload is None:
            blob = pickle.dumps(self._inner)
            self._payload = (hashlib.sha256(blob).hexdigest()[:16], blob)
        return self._payload

    def _kill_executor(self, *, wait: bool = False) -> None:
        """Tear the worker pool down, terminating resident processes.

        Workers are always terminated rather than joined on their current
        task — a hung worker (or one still sleeping off an abandoned
        shard after a deadline expiry) would otherwise block shutdown
        indefinitely.  ``wait=True`` additionally joins the (now dying)
        pool before returning, for deterministic resource release on
        :meth:`close`; recovery paths use ``wait=False`` and respawn.
        On a shared pool the kill is scoped to the generation this
        engine observed failing (a replacement pool survives).
        """
        if self._shared is not None:
            self._shared.kill(self._shared_gen, wait=wait)
            return
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - platform-dependent
                pass
        executor.shutdown(wait=wait, cancel_futures=True)

    def warm_up(self, *, settle_s: float = 1.0) -> None:
        """Spawn the workers now (best effort) instead of on first use.

        Each queued task holds its worker until a common deadline, which
        coaxes the executor into starting every process up front —
        benchmarks call this so the first timed batch does not pay
        interpreter start-up.
        """
        self._check_open()
        if self._workers <= 1:
            return
        executor = self._ensure_executor()
        deadline = time.time() + max(settle_s, 0.0)
        try:
            list(executor.map(_worker_ready, [deadline] * self._workers))
        except BrokenProcessPool:
            self._kill_executor()
            self.stats.restarts += 1

    def close(self) -> None:
        """Shut the worker pool down for good (idempotent, terminal).

        Over a shared pool this only *detaches* — the pool's processes
        belong to its owner (the session) and keep serving other engines.
        """
        self._closed = True
        if self._shared is not None:
            return
        self._kill_executor(wait=True)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # RRSetGenerator interface
    # ------------------------------------------------------------------
    def generate(
        self, *, rng: SeedLike = None, root: Optional[int] = None
    ) -> np.ndarray:
        """Per-root oracle: delegates to the wrapped generator in-process."""
        self._check_open()
        return self._inner.generate(rng=rng, root=root)

    def generate_batch(
        self,
        count: int,
        *,
        rng: SeedLike = None,
        roots: Optional[np.ndarray] = None,
        out: Optional[RRSetPool] = None,
    ) -> RRSetPool:
        """Generate ``count`` RR-sets, sharded across the worker pool.

        Same contract as the serial engines: ``roots`` pins roots
        (sharded alongside the counts), ``out`` receives a top-up.
        Small batches and a 1-worker engine run serially in-process.
        Worker failures are retried per shard (see class docstring);
        raises :class:`~repro.errors.DeadlineExceeded` when the active
        query deadline expires at a shard join, leaving ``out``
        untouched.
        """
        self._check_open()
        gen = make_rng(rng)
        if roots is not None:
            roots = np.asarray(roots, dtype=np.int64)
            count = int(roots.size)
        count = int(count)
        shards = min(self._workers, max(count // self._min_batch, 1))
        if shards <= 1:
            return self._inner.generate_batch(count, rng=gen, roots=roots, out=out)
        # Remember the caller's stream so an exhausted-retries fallback can
        # rewind and reproduce the *serial* run exactly.
        rng_state = gen.bit_generator.state
        # Child streams are derived from the caller's rng (consuming it, so
        # successive calls differ) and assigned to shards positionally:
        # the merged pool is scheduling-independent, and a retried shard
        # replays the same stream.
        entropy = [int(v) for v in gen.integers(0, 2**32, size=4)]
        children = np.random.SeedSequence(entropy).spawn(shards)
        base, rem = divmod(count, shards)
        counts = [base + 1] * rem + [base] * (shards - rem)
        root_parts: list[Optional[np.ndarray]] = (
            list(np.split(roots, np.cumsum(counts)[:-1]))
            if roots is not None
            else [None] * shards
        )
        results = self._run_shards(counts, root_parts, children)
        if results is None:
            # Retries exhausted: rewind the stream and run the whole batch
            # serially — deterministic, and identical to a serial call.
            gen.bit_generator.state = rng_state
            self.stats.serial_fallbacks += 1
            warnings.warn(
                "parallel RR-set workers kept failing after "
                f"{self._max_attempts} attempts per shard; "
                "this batch ran serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._inner.generate_batch(count, rng=gen, roots=roots, out=out)
        pool = out if out is not None else RRSetPool(self._graph.num_nodes)
        for shard_nodes, shard_indptr in results:
            pool.extend_pool(
                RRSetPool.from_flat(
                    self._graph.num_nodes, shard_nodes, shard_indptr,
                    validate=False,
                )
            )
        return pool

    # ------------------------------------------------------------------
    # Shard dispatch with bounded retry
    # ------------------------------------------------------------------
    def _run_shards(
        self,
        counts: list[int],
        root_parts: list[Optional[np.ndarray]],
        children: list[np.random.SeedSequence],
    ) -> Optional[list[tuple[np.ndarray, np.ndarray]]]:
        """Dispatch every shard, retrying failures; ``None`` = give up.

        Completed shards are kept across retry rounds (their seed streams
        are fixed, so re-running the others cannot change them).  Each
        failure event — a broken pool or a shard-deadline expiry — kills
        the executor; the next round lazily respawns it after an
        exponential backoff.
        """
        shards = len(counts)
        results: list[Optional[tuple[np.ndarray, np.ndarray]]] = [None] * shards
        attempts = [0] * shards
        self.stats.batches += 1
        retry_round = 0
        while True:
            pending = [i for i in range(shards) if results[i] is None]
            if not pending:
                return [r for r in results if r is not None]
            if any(attempts[i] >= self._max_attempts for i in pending):
                self._kill_executor()
                return None
            if retry_round > 0:
                time.sleep(min(self._backoff_s * 2 ** (retry_round - 1), 2.0))
            executor = self._ensure_executor()
            futures = {}
            for i in pending:
                if attempts[i] > 0:
                    self.stats.retries += 1
                attempts[i] += 1
                spec = faults.fire("parallel.shard")
                directive = (spec.kind, spec.delay_s) if spec is not None else None
                futures[i] = executor.submit(
                    _generate_shard,
                    (
                        counts[i],
                        root_parts[i],
                        children[i],
                        directive,
                        self._task_payload(),
                    ),
                )
            if self._collect(futures, results):
                retry_round += 1  # a failure round: back off, then retry

    def _collect(
        self,
        futures: dict[int, Future],
        results: list[Optional[tuple[np.ndarray, np.ndarray]]],
    ) -> bool:
        """Harvest one dispatch round into ``results``.

        Returns ``True`` when a failure was detected (and the executor
        killed), ``False`` on a clean round.  Raises
        :class:`~repro.errors.DeadlineExceeded` if the query deadline
        expires while waiting — hung-shard detection is the *shard*
        deadline's job and triggers a retry instead.
        """
        round_start = time.monotonic()
        deadline = current_deadline()
        failed = False
        hung = False
        for i, fut in futures.items():
            if failed:
                break
            timeout: Optional[float] = None
            if self._shard_deadline_s is not None:
                timeout = round_start + self._shard_deadline_s - time.monotonic()
            if deadline is not None:
                remaining = deadline.remaining()
                timeout = remaining if timeout is None else min(timeout, remaining)
            try:
                results[i] = fut.result(
                    timeout=None if timeout is None else max(timeout, 0.0)
                )
            except BrokenProcessPool:
                failed = True
            except FutureTimeoutError:
                if deadline is not None and deadline.expired():
                    # Query budget gone: the engines degrade to what they
                    # already have; workers finish their shards and idle.
                    raise DeadlineExceeded(
                        "query deadline expired waiting for parallel "
                        "RR-set shards"
                    )
                failed = True
                hung = True
        if failed:
            # Keep any shards that did finish before tearing down.
            for i, fut in futures.items():
                if results[i] is None and fut.done():
                    try:
                        results[i] = fut.result(timeout=0)
                    except Exception:
                        pass
            if hung:
                self.stats.hung_kills += sum(
                    1 for i in futures if results[i] is None
                )
            self._kill_executor()
            self.stats.restarts += 1
        return failed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "live" if self._executor is not None else "cold"
        )
        return (
            f"ParallelEngine({type(self._inner).__name__}, "
            f"workers={self._workers}, {state})"
        )
