"""Tests for the python -m repro.experiments command-line interface."""

import pytest

from repro.experiments.__main__ import RUNNERS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 0.04
        assert args.experiments == []

    def test_experiment_selection(self):
        args = build_parser().parse_args(["table1", "figure5"])
        assert args.experiments == ["table1", "figure5"]

    def test_all_runners_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "tables5to7", "table8",
            "figure4", "figure5", "figure6", "figure7a", "figure7b", "figure8",
            "engines", "heuristics", "sensitivity",
        }
        assert set(RUNNERS) == expected


class TestMain:
    def test_unknown_experiment_rejected(self, capsys):
        code = main(["tableX"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_invalid_configuration_rejected(self, capsys):
        code = main(["table1", "--k", "0"])
        assert code == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_table1_end_to_end(self, capsys, tmp_path):
        out = tmp_path / "results.md"
        code = main([
            "table1",
            "--scale", "0.01",
            "--datasets", "flixster",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert out.exists()
        assert "Table 1" in out.read_text()
