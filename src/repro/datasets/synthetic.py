"""Scaled synthetic versions of the paper's evaluation graphs.

Paper Table 1 statistics:

============  =======  =======  ================  ===============
dataset       nodes    edges    avg out-degree    max out-degree
============  =======  =======  ================  ===============
Douban-Book   23.3K    141K     6.5               1690
Douban-Movie  34.9K    274K     7.9               545
Flixster      12.9K    192K     14.8              189
Last.fm       61K      584K     9.6               1073
============  =======  =======  ================  ===============

``load_dataset(name, scale=s)`` builds a power-law digraph with
``round(s * nodes)`` nodes and the same average out-degree, weighted by
the requested scheme.  The default scale keeps pure-Python Monte Carlo
tractable while preserving degree heterogeneity (heavy-tailed out-degrees,
weighted-cascade probabilities), which is what the algorithms' relative
behaviour depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_digraph
from repro.graph.weights import (
    constant_probabilities,
    trivalency_probabilities,
    weighted_cascade_probabilities,
)
from repro.rng import SeedLike, derive_seed, stable_hash


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one paper dataset."""

    name: str
    paper_nodes: int
    paper_edges: int
    avg_out_degree: float
    #: power-law exponent for the synthetic degree sequence (the paper's
    #: scalability workload uses 2.16 [9]; we reuse it for all datasets).
    exponent: float = 2.16


PAPER_DATASETS: dict[str, DatasetSpec] = {
    "douban-book": DatasetSpec("douban-book", 23_300, 141_000, 6.5),
    "douban-movie": DatasetSpec("douban-movie", 34_900, 274_000, 7.9),
    "flixster": DatasetSpec("flixster", 12_900, 192_000, 14.8),
    "lastfm": DatasetSpec("lastfm", 61_000, 584_000, 9.6),
}

DATASET_NAMES: tuple[str, ...] = tuple(PAPER_DATASETS)

_WEIGHTINGS = ("weighted-cascade", "trivalency", "constant")


def load_dataset(
    name: str,
    *,
    scale: float = 0.05,
    weighting: str = "weighted-cascade",
    constant: float = 0.1,
    rng: SeedLike = None,
) -> DiGraph:
    """Build the scaled synthetic version of dataset ``name``.

    ``scale`` multiplies the paper's node count (0.05 -> Flixster-like has
    645 nodes).  ``weighting`` selects the edge-probability scheme.  The
    construction is deterministic given ``rng`` (an int seed is derived per
    dataset name so different datasets never share a stream).
    """
    spec = PAPER_DATASETS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(PAPER_DATASETS)}"
        )
    if not 0.0 < scale <= 1.0:
        raise ExperimentError(f"scale must lie in (0, 1], got {scale}")
    if weighting not in _WEIGHTINGS:
        raise ExperimentError(
            f"unknown weighting {weighting!r}; available: {_WEIGHTINGS}"
        )
    n = max(int(round(spec.paper_nodes * scale)), 10)
    if isinstance(rng, int) or rng is None:
        seed = derive_seed(rng if rng is not None else 2016, stable_hash(name))
    else:
        seed = rng
    graph = power_law_digraph(
        n,
        exponent=spec.exponent,
        average_degree=spec.avg_out_degree,
        rng=seed,
    )
    if weighting == "weighted-cascade":
        return weighted_cascade_probabilities(graph)
    if weighting == "trivalency":
        return trivalency_probabilities(graph, rng=seed)
    return constant_probabilities(graph, constant)
