"""Property: PoolStore round-trips arbitrary pools and rejects tampering.

The nightly ``ci-deep`` profile scales these budgets 10x (see
``_profiles.ci_settings``), exercising the store round-trip over far more
pool shapes than the PR gate.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.rrset.pool import RRSetPool
from repro.store import PoolKey, PoolStore

from tests.properties._profiles import ci_settings

FP = "f" * 64


def pools(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=40))
    sets = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=num_nodes - 1),
                max_size=6,
            ),
            max_size=12,
        )
    )
    pool = RRSetPool(num_nodes)
    for members in sets:
        pool.append(np.asarray(members, dtype=np.int64))
    return pool


pool_strategy = st.composite(pools)()


@given(
    pool=pool_strategy,
    mmap=st.booleans(),
    seeds=st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)
@ci_settings(max_examples=25)
def test_round_trip_equality(tmp_path_factory, pool, mmap, seeds):
    store = PoolStore(tmp_path_factory.mktemp("pools"))
    key = PoolKey.make("rr-sim", (0.3, 0.8, 0.5, 0.5), seeds)
    store.save(key, pool, graph_fingerprint=FP)
    loaded = store.load(key, graph_fingerprint=FP, mmap=mmap)
    assert loaded is not None
    assert len(loaded) == len(pool)
    assert np.array_equal(loaded.nodes, pool.nodes)
    assert np.array_equal(loaded.indptr, pool.indptr)
    # and the loaded pool still grows (store pools feed IMM top-ups)
    loaded.append(np.arange(min(3, pool.num_nodes), dtype=np.int64))
    assert len(loaded) == len(pool) + 1


@given(
    pool=pool_strategy,
    flip=st.integers(min_value=1, max_value=8),
)
@ci_settings(max_examples=25)
def test_any_flipped_column_byte_invalidates(tmp_path_factory, pool, flip):
    from repro.store.pool_store import INDPTR_FILE

    store = PoolStore(tmp_path_factory.mktemp("pools"))
    key = PoolKey.make("rr-cim", (0.3, 0.8, 0.5, 1.0), [0])
    store.save(key, pool, graph_fingerprint=FP)
    path = store.entry_dir(key) / INDPTR_FILE
    blob = bytearray(path.read_bytes())
    blob[-flip] ^= 0x5A  # corrupt payload bytes from the tail
    path.write_bytes(bytes(blob))
    assert store.load(key, graph_fingerprint=FP) is None
    assert store.stats.invalidations == 1
