"""Tests for per-node adoption probabilities and adoption timelines."""

import numpy as np
import pytest

from repro.analysis import (
    adoption_probabilities,
    adoption_timeline,
)
from repro.graph import DiGraph, path_digraph, star_digraph
from repro.models import GAP


@pytest.fixture(scope="module")
def line() -> DiGraph:
    return path_digraph(4, probability=1.0)


class TestAdoptionProbabilities:
    def test_seeds_always_adopt(self, line):
        result = adoption_probabilities(
            line, GAP.classic_ic(), [0], [], runs=50, rng=1
        )
        assert result.prob_a[0] == 1.0

    def test_deterministic_chain_all_adopt(self, line):
        result = adoption_probabilities(
            line, GAP.classic_ic(), [0], [], runs=50, rng=2
        )
        assert np.allclose(result.prob_a, 1.0)
        assert np.allclose(result.prob_b, 0.0)

    def test_probability_matches_edge_probability(self):
        graph = path_digraph(2, probability=0.3)
        result = adoption_probabilities(
            graph, GAP.classic_ic(), [0], [], runs=4000, rng=3
        )
        assert result.prob_a[1] == pytest.approx(0.3, abs=0.03)

    def test_complementary_boost_visible_per_node(self):
        graph = path_digraph(2, probability=1.0)
        gaps = GAP(q_a=0.2, q_a_given_b=0.9, q_b=1.0, q_b_given_a=1.0)
        alone = adoption_probabilities(graph, gaps, [0], [], runs=2500, rng=4)
        helped = adoption_probabilities(graph, gaps, [0], [0], runs=2500, rng=4)
        assert alone.prob_a[1] == pytest.approx(0.2, abs=0.04)
        assert helped.prob_a[1] == pytest.approx(0.9, abs=0.04)

    def test_stderr_zero_for_certain_events(self, line):
        result = adoption_probabilities(
            line, GAP.classic_ic(), [0], [], runs=20, rng=5
        )
        assert np.allclose(result.stderr_a(), 0.0)

    def test_top_adopters_ranks_seeds_first(self):
        graph = star_digraph(6, probability=0.4)
        result = adoption_probabilities(
            graph, GAP.classic_ic(), [0], [], runs=300, rng=6
        )
        assert result.top_adopters(1) == [0]
        with pytest.raises(ValueError):
            result.top_adopters(2, item="x")

    def test_runs_validated(self, line):
        with pytest.raises(ValueError):
            adoption_probabilities(line, GAP.classic_ic(), [0], [], runs=0)


class TestAdoptionTimeline:
    def test_deterministic_chain_profile(self, line):
        timeline = adoption_timeline(
            line, GAP.classic_ic(), [0], [], runs=20, rng=7
        )
        assert timeline.horizon == 4
        assert np.allclose(timeline.new_a, [1.0, 1.0, 1.0, 1.0])
        assert np.allclose(timeline.cumulative_a(), [1.0, 2.0, 3.0, 4.0])

    def test_star_peaks_at_step_one(self):
        graph = star_digraph(30, probability=1.0)
        timeline = adoption_timeline(
            graph, GAP.classic_ic(), [0], [], runs=10, rng=8
        )
        assert timeline.peak_step() == 1
        assert timeline.new_a[1] == pytest.approx(29.0)

    def test_b_timeline_tracks_b_seeds(self, line):
        gaps = GAP.independent(q_a=1.0, q_b=1.0)
        timeline = adoption_timeline(line, gaps, [], [0], runs=20, rng=9)
        assert np.allclose(timeline.new_b, [1.0, 1.0, 1.0, 1.0])
        assert np.allclose(timeline.new_a, 0.0)

    def test_no_adoptions_single_step_horizon(self):
        graph = DiGraph.from_edges(3, [])
        timeline = adoption_timeline(
            graph, GAP.classic_ic(), [], [], runs=5, rng=10
        )
        assert timeline.horizon == 1
        assert timeline.peak_step() == 0

    def test_item_validated(self, line):
        timeline = adoption_timeline(line, GAP.classic_ic(), [0], [], runs=5, rng=11)
        with pytest.raises(ValueError):
            timeline.peak_step(item="q")
