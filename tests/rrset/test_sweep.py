"""The shared sweep engine: config policy, backend ops, kernel parity.

Three layers of evidence that the sparse chunk-state backend is a pure
memory-layout change:

* **Backend operations** — randomized op sequences against
  ``DenseFlags``/``SparseFlags`` and ``DenseValues``/``SparseValues``
  must agree call-for-call.
* **Fixed-world kernel parity** — all six batched RR kernels, pinned to
  one chunk schedule via ``max_chunk_members`` (the schedule fixes the
  coin-draw order), must emit *bit-identical* pools under either
  backend.
* **State-byte regression** — at million-node scale the sparse backend
  sustains the chunk sizes the dense layout cannot (the ISSUE's
  ``>= 256`` vs ``<= 16`` acceptance bound), and its held bytes scale
  with touched keys, not ``chunk * num_nodes``.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.api import EngineConfig
from repro.errors import QueryError
from repro.graph.generators import power_law_digraph
from repro.models import GAP
from repro.models.lt import normalize_lt_weights
from repro.rng import make_rng
from repro.rrset import (
    RRBlockGenerator,
    RRCimGenerator,
    RRICGenerator,
    RRLTGenerator,
    RRSimGenerator,
    RRSimPlusGenerator,
)
from repro.rrset.sweep import (
    DEFAULT_CHUNK_STATE_BYTES,
    DEFAULT_SPARSE_NODES_THRESHOLD,
    DEGENERATE_DENSE_CHUNK,
    DenseFlags,
    DenseValues,
    SparseFlags,
    SparseValues,
    SweepConfig,
    make_flags,
    make_values,
)

GAPS_ONE_WAY = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=0.5)
GAPS_CIM = GAP(q_a=0.3, q_a_given_b=0.8, q_b=0.5, q_b_given_a=1.0)
GAPS_BLOCK = GAP(q_a=0.6, q_a_given_b=0.1, q_b=0.7, q_b_given_a=0.7)

MILLION = 1_000_000


@pytest.fixture(scope="module")
def random_graph():
    return power_law_digraph(120, average_degree=4.0, probability=0.4, rng=5)


class TestSweepConfig:
    def test_defaults(self):
        cfg = SweepConfig()
        assert cfg.chunk_state_bytes == DEFAULT_CHUNK_STATE_BYTES
        assert cfg.state_backend == "auto"
        assert cfg.max_chunk_members is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_state_bytes": 0},
            {"chunk_state_bytes": 2.5},
            {"state_backend": "mmap"},
            {"sparse_nodes_threshold": 0},
            {"max_chunk_members": 0},
            {"max_chunk_members": "many"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs)

    def test_auto_switches_at_threshold(self):
        cfg = SweepConfig()
        assert cfg.resolve_backend(DEFAULT_SPARSE_NODES_THRESHOLD - 1) == "dense"
        assert cfg.resolve_backend(DEFAULT_SPARSE_NODES_THRESHOLD) == "sparse"
        assert cfg.resolve_backend(MILLION) == "sparse"

    def test_explicit_backend_ignores_node_count(self):
        assert SweepConfig(state_backend="dense").resolve_backend(MILLION) == "dense"
        assert SweepConfig(state_backend="sparse").resolve_backend(10) == "sparse"

    def test_million_node_chunks_meet_acceptance_bounds(self):
        """The ISSUE's scale criterion: within the default budget a
        sparse chunk sustains >= 256 members where dense affords <= 16."""
        cfg = SweepConfig()
        dense = cfg.chunk_size(
            MILLION, "dense", state_bytes_per_node=1, warn=False
        )
        sparse = cfg.chunk_size(MILLION, "sparse", state_bytes_per_node=1)
        assert dense <= 16
        assert sparse >= 256
        # dense chunk state honours the budget; the sparse chunk's dense
        # equivalent would blow through it ~256x over
        assert dense * MILLION <= cfg.chunk_state_bytes
        assert sparse * MILLION > cfg.chunk_state_bytes

    def test_dense_chunk_scales_with_state_bytes(self):
        cfg = SweepConfig(chunk_state_bytes=1 << 20)
        one = cfg.chunk_size(1 << 10, "dense", state_bytes_per_node=1)
        two = cfg.chunk_size(1 << 10, "dense", state_bytes_per_node=2)
        assert one == 1024 and two == 512

    def test_max_chunk_members_pins_both_backends(self):
        cfg = SweepConfig(max_chunk_members=8)
        assert cfg.chunk_size(100, "dense") == 8
        assert cfg.chunk_size(100, "sparse") == 8
        assert cfg.chunk_size(MILLION, "sparse") == 8

    def test_degenerate_dense_chunk_warns_and_names_the_fix(self):
        # 4M nodes push the dense chunk to 4 members — under the
        # degeneracy bar (a 1M-node graph sits exactly at 16).
        cfg = SweepConfig()
        with pytest.warns(RuntimeWarning, match="sparse"):
            chunk = cfg.chunk_size(4 * MILLION, "dense", state_bytes_per_node=1)
        assert chunk < DEGENERATE_DENSE_CHUNK

    def test_no_warning_when_suppressed_or_healthy(self):
        cfg = SweepConfig()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg.chunk_size(MILLION, "dense", warn=False)
            cfg.chunk_size(MILLION, "sparse")  # sparse never degenerates
            cfg.chunk_size(1 << 10, "dense")  # comfortable dense chunk


class TestBackendOperationEquivalence:
    """Randomized op sequences must agree between the two layouts."""

    LANES, NODES = 7, 211

    def _random_keys(self, gen, size):
        return gen.integers(0, self.LANES * self.NODES, size=size)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flags_agree(self, seed):
        gen = make_rng(seed)
        dense = make_flags(self.LANES, self.NODES, "dense")
        sparse = make_flags(self.LANES, self.NODES, "sparse")
        assert isinstance(dense, DenseFlags) and isinstance(sparse, SparseFlags)
        for _ in range(40):
            op = gen.integers(0, 3)
            keys = self._random_keys(gen, int(gen.integers(0, 50)))
            if op == 0:
                assert np.array_equal(dense.get(keys), sparse.get(keys))
            elif op == 1:
                dense.mark(keys)
                sparse.mark(keys)
            else:
                fresh_d = dense.mark_new(keys)
                fresh_s = sparse.mark_new(keys)
                assert np.array_equal(fresh_d, fresh_s)
        probe = np.arange(self.LANES * self.NODES)
        assert np.array_equal(dense.get(probe), sparse.get(probe))

    @pytest.mark.parametrize("dtype", [np.int8, np.uint8])
    def test_values_agree(self, dtype):
        gen = make_rng(13)
        dense = make_values(self.LANES, self.NODES, dtype, "dense")
        sparse = make_values(self.LANES, self.NODES, dtype, "sparse")
        assert isinstance(dense, DenseValues) and isinstance(sparse, SparseValues)
        for _ in range(40):
            op = gen.integers(0, 3)
            keys = np.unique(self._random_keys(gen, int(gen.integers(0, 50))))
            vals = gen.integers(0, 8, size=keys.size).astype(dtype)
            if op == 0:
                probe = self._random_keys(gen, 64)  # repeats allowed on get
                assert np.array_equal(dense.get(probe), sparse.get(probe))
            elif op == 1:
                dense.put(keys, vals)
                sparse.put(keys, vals)
            else:
                dense.or_(keys, vals)
                sparse.or_(keys, vals)
        probe = np.arange(self.LANES * self.NODES)
        assert np.array_equal(dense.get(probe), sparse.get(probe))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            make_flags(1, 10, "auto")  # must be resolved first
        with pytest.raises(ValueError, match="backend"):
            make_values(1, 10, np.int8, "mmap")


class TestPeakStateBytes:
    """Sparse state scales with touched keys, dense with chunk * n."""

    def test_dense_flags_bytes_are_chunk_times_nodes(self):
        flags = DenseFlags(16, MILLION)
        assert flags.nbytes == 16 * MILLION
        assert flags.nbytes <= DEFAULT_CHUNK_STATE_BYTES

    def test_sparse_chunk_4096_fits_default_budget(self):
        # A 4096-member chunk — 256x the dense ceiling — holds well under
        # the default budget even after touching 100k (member, node) keys,
        # where the dense layout would need 4 GB.
        flags = SparseFlags(4096, MILLION)
        gen = make_rng(0)
        flags.mark(gen.integers(0, 4096 * MILLION, size=100_000))
        assert flags.nbytes <= 8 * 100_000
        assert flags.nbytes < DEFAULT_CHUNK_STATE_BYTES

    def test_sparse_values_bytes_track_touched_keys(self):
        vals = SparseValues(4096, MILLION, np.uint8)
        assert vals.nbytes == 0
        keys = np.arange(0, 9_000, 3, dtype=np.int64)
        vals.put(keys, np.ones(keys.size, dtype=np.uint8))
        assert vals.nbytes == keys.size * (8 + 1)


#: (regime id, generator factory) for all six batched kernels.
REGIMES = [
    ("rr_ic", lambda g: RRICGenerator(g)),
    ("rr_lt", lambda g: RRLTGenerator(normalize_lt_weights(g))),
    ("rr_sim", lambda g: RRSimGenerator(g, GAPS_ONE_WAY, [0, 3, 7])),
    ("rr_sim_plus", lambda g: RRSimPlusGenerator(g, GAPS_ONE_WAY, [0, 3, 7])),
    ("rr_cim", lambda g: RRCimGenerator(g, GAPS_CIM, [0, 3, 7])),
    ("rr_block", lambda g: RRBlockGenerator(g, GAPS_BLOCK, [0, 3, 7])),
]


class TestBackendKernelParity:
    """Dense and sparse sweeps emit bit-identical pools in every regime.

    Backends consume no randomness, but the chunk schedule fixes the
    order bulk coins are drawn in — so both runs pin
    ``max_chunk_members`` to the same small value (also forcing many
    chunks per batch, exercising cross-chunk state resets).
    """

    COUNT = 300

    @pytest.mark.parametrize("regime,factory", REGIMES, ids=[r for r, _ in REGIMES])
    def test_pools_bit_identical(self, random_graph, regime, factory):
        pools = {}
        for backend in ("dense", "sparse"):
            generator = factory(random_graph)
            generator.sweep = SweepConfig(
                state_backend=backend, max_chunk_members=8
            )
            pools[backend] = generator.generate_batch(self.COUNT, rng=17)
        dense, sparse = pools["dense"], pools["sparse"]
        assert len(dense) == len(sparse) == self.COUNT
        assert np.array_equal(np.asarray(dense.nodes), np.asarray(sparse.nodes))
        assert np.array_equal(np.asarray(dense.indptr), np.asarray(sparse.indptr))

    @pytest.mark.parametrize("regime,factory", REGIMES, ids=[r for r, _ in REGIMES])
    def test_auto_matches_explicit_dense_on_small_graph(
        self, random_graph, regime, factory
    ):
        # Below the threshold "auto" must be byte-for-byte the dense path.
        pools = {}
        for backend in ("dense", "auto"):
            generator = factory(random_graph)
            generator.sweep = SweepConfig(state_backend=backend)
            pools[backend] = generator.generate_batch(self.COUNT, rng=29)
        assert np.array_equal(
            np.asarray(pools["dense"].nodes), np.asarray(pools["auto"].nodes)
        )
        assert np.array_equal(
            np.asarray(pools["dense"].indptr), np.asarray(pools["auto"].indptr)
        )


class TestEngineConfigIntegration:
    def test_round_trip_of_sweep_fields(self):
        cfg = EngineConfig(chunk_state_bytes=1 << 22, sweep_backend="sparse")
        restored = EngineConfig.from_dict(cfg.to_dict())
        assert restored.chunk_state_bytes == 1 << 22
        assert restored.sweep_backend == "sparse"

    def test_sweep_config_projection(self):
        cfg = EngineConfig(chunk_state_bytes=1 << 22, sweep_backend="sparse")
        sweep = cfg.sweep_config()
        assert isinstance(sweep, SweepConfig)
        assert sweep.chunk_state_bytes == 1 << 22
        assert sweep.state_backend == "sparse"

    def test_bad_sweep_fields_raise_query_error(self):
        with pytest.raises(QueryError):
            EngineConfig(sweep_backend="mmap")
        with pytest.raises(QueryError):
            EngineConfig(chunk_state_bytes=0)

    def test_sweep_config_is_frozen_and_picklable(self):
        import pickle

        cfg = SweepConfig(state_backend="sparse", max_chunk_members=64)
        assert pickle.loads(pickle.dumps(cfg)) == cfg
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.state_backend = "dense"
