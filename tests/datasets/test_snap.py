"""SNAP edge-list loading: parsing, relabelling, cleaning, synthesis."""

import numpy as np
import pytest

from repro.datasets.snap import (
    SNAP_WEIGHTINGS,
    clean_edges,
    load_snap_graph,
    read_snap_edges,
    relabel_edges,
    synthesize_power_law_edges,
    write_snap_edge_list,
    _main,
)
from repro.errors import ExperimentError


def write_lines(path, text):
    path.write_text(text, encoding="utf-8")
    return path


class TestReadSnapEdges:
    def test_comments_blanks_and_extra_columns(self, tmp_path):
        path = write_lines(
            tmp_path / "g.txt",
            "# a SNAP header\n"
            "0 5\n"
            "\n"
            "5 7 1469000000\n"  # trailing timestamp column ignored
            "# trailing comment\n"
            "7 0\n",
        )
        src, dst = read_snap_edges(path)
        assert src.tolist() == [0, 5, 7]
        assert dst.tolist() == [5, 7, 0]

    def test_empty_file(self, tmp_path):
        src, dst = read_snap_edges(write_lines(tmp_path / "e.txt", "# only\n"))
        assert src.size == 0 and dst.size == 0

    def test_malformed_rejected(self, tmp_path):
        path = write_lines(tmp_path / "bad.txt", "0 not-a-node\n")
        with pytest.raises(ExperimentError, match="malformed"):
            read_snap_edges(path)

    def test_single_column_rejected(self, tmp_path):
        path = write_lines(tmp_path / "one.txt", "0\n1\n")
        with pytest.raises(ExperimentError, match="malformed"):
            read_snap_edges(path)


class TestRelabelAndClean:
    def test_relabel_compacts_sparse_ids(self):
        src = np.array([1000, 7, 1000])
        dst = np.array([7, 99, 99])
        new_src, new_dst, ids = relabel_edges(src, dst)
        assert ids.tolist() == [7, 99, 1000]
        assert new_src.tolist() == [2, 0, 2]
        assert new_dst.tolist() == [0, 1, 1]
        # ids[new] recovers the original labels
        assert ids[new_src].tolist() == src.tolist()

    def test_negative_ids_rejected(self):
        with pytest.raises(ExperimentError, match="negative"):
            relabel_edges(np.array([-1, 0]), np.array([0, 1]))

    def test_clean_drops_self_loops_and_duplicates(self):
        src = np.array([0, 0, 1, 2, 0])
        dst = np.array([1, 1, 1, 2, 2])
        out_src, out_dst = clean_edges(src, dst, 3)
        assert list(zip(out_src.tolist(), out_dst.tolist())) == [(0, 1), (0, 2)]


class TestLoadSnapGraph:
    def _triangle(self, tmp_path):
        return write_lines(
            tmp_path / "tri.txt", "10 20\n20 30\n30 10\n20 10\n"
        )

    def test_weighted_cascade(self, tmp_path):
        graph = load_snap_graph(self._triangle(tmp_path))
        assert graph.num_nodes == 3 and graph.num_edges == 4
        # weighted cascade: every edge into v carries 1/indeg(v)
        dst = graph.edge_targets
        indeg = np.bincount(dst, minlength=3)
        assert np.allclose(graph.edge_probabilities, 1.0 / indeg[dst])

    def test_constant_weighting(self, tmp_path):
        graph = load_snap_graph(
            self._triangle(tmp_path), weighting="constant", constant=0.25
        )
        assert np.allclose(graph.edge_probabilities, 0.25)

    def test_trivalency_is_deterministic_under_rng(self, tmp_path):
        path = self._triangle(tmp_path)
        a = load_snap_graph(path, weighting="trivalency", rng=3)
        b = load_snap_graph(path, weighting="trivalency", rng=3)
        assert np.array_equal(a.edge_probabilities, b.edge_probabilities)
        assert set(np.unique(a.edge_probabilities)) <= {0.1, 0.01, 0.001}

    def test_unknown_weighting_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="weighting"):
            load_snap_graph(self._triangle(tmp_path), weighting="nope")
        assert "weighted-cascade" in SNAP_WEIGHTINGS

    def test_empty_edge_list_rejected(self, tmp_path):
        path = write_lines(tmp_path / "e.txt", "# nothing\n")
        with pytest.raises(ExperimentError, match="no edges"):
            load_snap_graph(path)


class TestSynthesizeAndRoundTrip:
    def test_synthesis_is_deterministic_and_clean(self):
        a = synthesize_power_law_edges(500, rng=7)
        b = synthesize_power_law_edges(500, rng=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        src, dst = a
        assert (src != dst).all()  # no self-loops
        keys = src * np.int64(500) + dst
        assert np.unique(keys).size == keys.size  # no duplicates
        realised = src.size / 500
        assert 2.0 < realised <= 5.0  # dedup shaves the requested mean of 5

    def test_validation(self):
        with pytest.raises(ExperimentError, match="num_nodes"):
            synthesize_power_law_edges(1)
        with pytest.raises(ExperimentError, match="exponent"):
            synthesize_power_law_edges(10, exponent=1.0)
        with pytest.raises(ExperimentError, match="average_degree"):
            synthesize_power_law_edges(10, average_degree=0)

    def test_write_then_load_round_trips(self, tmp_path):
        src, dst = synthesize_power_law_edges(300, rng=11)
        path = tmp_path / "synth.txt"
        write_snap_edge_list(path, src, dst, comment="synthetic\ntwo lines")
        assert path.read_text().startswith("# synthetic\n# two lines\n")
        graph = load_snap_graph(path)
        # every node 0..299 with an edge survives relabelling untouched
        back_src, back_dst = read_snap_edges(path)
        assert np.array_equal(back_src, src) and np.array_equal(back_dst, dst)
        assert graph.num_edges == src.size
        assert graph.num_nodes == np.unique(np.concatenate((src, dst))).size


class TestCLI:
    def test_synthesize_then_info(self, tmp_path, capsys):
        out = tmp_path / "cli.txt"
        assert _main(["--synthesize", "200", "--seed", "3", "--out", str(out)]) == 0
        assert _main(["--info", str(out)]) == 0
        info = capsys.readouterr().out.strip().splitlines()[-1]
        nodes, edges = map(int, info.split())
        src, dst = read_snap_edges(out)
        assert edges == src.size
        assert nodes == np.unique(np.concatenate((src, dst))).size

    def test_synthesize_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            _main(["--synthesize", "100"])
