"""Unit tests for randomness sources."""

import pytest

from repro.models.sources import (
    ITEM_A,
    ITEM_B,
    CoinSource,
    DecisionNeeded,
    ReplaySource,
    WorldSource,
)


class TestCoinSource:
    def test_edge_memoised(self):
        src = CoinSource(0)
        first = src.edge_live(7, 0.5)
        for _ in range(20):
            assert src.edge_live(7, 0.5) == first

    def test_adoption_extremes(self):
        src = CoinSource(0)
        assert src.adopt_on_inform(0, ITEM_A, 1.0, 0.0, other_adopted=False)
        assert not src.adopt_on_inform(0, ITEM_A, 0.0, 1.0, other_adopted=False)
        assert src.adopt_on_inform(0, ITEM_A, 0.0, 1.0, other_adopted=True)

    def test_reconsider_competitive_never(self):
        src = CoinSource(0)
        for _ in range(50):
            assert not src.reconsider(0, ITEM_A, q_uncond=0.9, q_cond=0.1)

    def test_reconsider_certain(self):
        src = CoinSource(0)
        assert src.reconsider(0, ITEM_A, q_uncond=0.0, q_cond=1.0)

    def test_reconsider_guard_at_q_one(self):
        src = CoinSource(0)
        assert not src.reconsider(0, ITEM_A, q_uncond=1.0, q_cond=1.0)

    def test_informer_order_is_permutation(self):
        src = CoinSource(0)
        order = src.informer_order(0, [(1, 10), (2, 11), (3, 12)])
        assert sorted(order) == [0, 1, 2]

    def test_seed_coin_is_boolean(self):
        src = CoinSource(0)
        assert src.seed_a_first(0) in (True, False)


class TestWorldSource:
    def test_alpha_memoised(self):
        src = WorldSource(1)
        assert src.alpha(3, ITEM_A) == src.alpha(3, ITEM_A)
        assert src.alpha(3, ITEM_A) != src.alpha(3, ITEM_B) or True  # distinct draws

    def test_edge_memoised(self):
        src = WorldSource(1)
        assert src.edge_live(5, 0.5) == src.edge_live(5, 0.5)

    def test_adopt_consistent_with_alpha(self):
        src = WorldSource(2)
        alpha = src.alpha(0, ITEM_A)
        assert src.adopt_on_inform(0, ITEM_A, alpha + 1e-9, 0.0, False)
        assert not src.adopt_on_inform(0, ITEM_A, alpha - 1e-9, 0.0, False)

    def test_reconsider_uses_conditional_threshold(self):
        src = WorldSource(3)
        alpha = src.alpha(0, ITEM_B)
        assert src.reconsider(0, ITEM_B, 0.0, alpha + 1e-9)
        assert not src.reconsider(0, ITEM_B, 0.0, alpha - 1e-9)

    def test_informer_order_deterministic(self):
        src = WorldSource(4)
        informers = [(1, 10), (2, 11), (3, 12)]
        assert src.informer_order(0, informers) == src.informer_order(0, informers)

    def test_tau_memoised(self):
        src = WorldSource(5)
        assert src.seed_a_first(9) == src.seed_a_first(9)


class TestReplaySource:
    def test_degenerate_decisions_consume_nothing(self):
        src = ReplaySource([])
        assert src.adopt_on_inform(0, ITEM_A, 1.0, 0.0, False)
        assert not src.adopt_on_inform(0, ITEM_A, 0.0, 0.0, False)
        assert src.consumed == 0
        assert src.trace == []

    def test_tape_consumption_and_trace(self):
        src = ReplaySource([0, 1])
        assert src.adopt_on_inform(0, ITEM_A, 0.3, 0.0, False)  # choice 0 = yes
        assert not src.adopt_on_inform(1, ITEM_A, 0.3, 0.0, False)  # choice 1 = no
        assert src.consumed == 2
        assert src.trace == [pytest.approx(0.3), pytest.approx(0.7)]

    def test_exhausted_tape_raises(self):
        src = ReplaySource([])
        with pytest.raises(DecisionNeeded) as excinfo:
            src.adopt_on_inform(0, ITEM_A, 0.5, 0.0, False)
        assert excinfo.value.options == 2
        assert excinfo.value.probabilities == [0.5, 0.5]

    def test_edge_memoised_across_tape(self):
        src = ReplaySource([0])
        assert src.edge_live(3, 0.5)
        assert src.edge_live(3, 0.5)  # no new decision
        assert src.consumed == 1

    def test_permutation_decision(self):
        src = ReplaySource([1])
        order = src.informer_order(0, [(1, 10), (2, 11)])
        assert order == [1, 0]
        assert src.trace == [pytest.approx(0.5)]

    def test_permutation_singleton_is_free(self):
        src = ReplaySource([])
        assert src.informer_order(0, [(1, 10)]) == [0]
        assert src.consumed == 0

    def test_reconsider_rho(self):
        # rho = (0.8 - 0.2) / 0.8 = 0.75
        src = ReplaySource([0])
        assert src.reconsider(0, ITEM_A, 0.2, 0.8)
        assert src.trace == [pytest.approx(0.75)]
